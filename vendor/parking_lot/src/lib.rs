//! A std-based stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Same call surface as the real crate for the operations this workspace
//! uses: `lock()` / `read()` / `write()` return guards directly (no
//! `Result`). Poisoning — which parking_lot does not have — is ignored by
//! recovering the inner guard.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock with a poison-free `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with poison-free `read()` / `write()`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || *l2.read());
        assert_eq!(*l.read(), 7);
        assert_eq!(h.join().unwrap(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
