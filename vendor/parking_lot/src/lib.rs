//! A std-based stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Same call surface as the real crate for the operations this workspace
//! uses: `lock()` / `read()` / `write()` return guards directly (no
//! `Result`). Poisoning — which parking_lot does not have — is ignored by
//! recovering the inner guard.
//!
//! On top of the stand-in API this vendor copy carries the workspace's
//! **runtime lock-order rail** ([`lock_order`]): locks constructed with
//! [`Mutex::named`] / [`RwLock::named`] participate, in debug builds, in a
//! per-thread held-lock tracker that panics on an acquisition violating the
//! declared order — *before* blocking, so a protocol inversion fails loudly
//! at the offending call site instead of deadlocking two threads. The same
//! order is enforced statically by `eagr-lint` rule R1, which re-exports
//! [`lock_order::LOCK_ORDER`] as its policy table so the two rails cannot
//! drift apart.

use std::sync::{self, TryLockError};

pub mod lock_order;

use lock_order::Held;

/// Mutual exclusion lock with a poison-free `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]. Wraps the std guard so that, in
/// debug builds, dropping it also pops the lock from the thread's
/// [`lock_order`] held set.
pub struct MutexGuard<'a, T: ?Sized> {
    // Field order is load-bearing: the inner guard must release the lock
    // before the held-set entry pops.
    inner: sync::MutexGuard<'a, T>,
    _held: Held,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            name: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// Create a mutex registered with the [`lock_order`] rail under `name`
    /// (a name listed in [`lock_order::LOCK_ORDER`]). Debug builds assert
    /// the declared acquisition order on every `lock()`.
    pub const fn named(value: T, name: &'static str) -> Self {
        Self {
            name: Some(name),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = lock_order::acquire(self.name, false);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            _held: held,
        }
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        // A try-acquisition can never deadlock, but a successful one still
        // enters the held set so later blocking acquisitions see it.
        Some(MutexGuard {
            inner: g,
            _held: lock_order::acquire(self.name, false),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with poison-free `read()` / `write()`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _held: Held,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _held: Held,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            name: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Create a lock registered with the [`lock_order`] rail under `name`
    /// (a name listed in [`lock_order::LOCK_ORDER`]). Debug builds assert
    /// the declared acquisition order on every `read()` / `write()`.
    pub const fn named(value: T, name: &'static str) -> Self {
        Self {
            name: Some(name),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = lock_order::acquire(self.name, true);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            _held: held,
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = lock_order::acquire(self.name, false);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            _held: held,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || *l2.read());
        assert_eq!(*l.read(), 7);
        assert_eq!(h.join().unwrap(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
