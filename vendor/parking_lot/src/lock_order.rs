//! The workspace's **runtime lock-order rail**.
//!
//! The sharded engine's concurrency protocol pins a global acquisition
//! order over its named locks (see [`LOCK_ORDER`]). Locks constructed with
//! [`Mutex::named`](crate::Mutex::named) /
//! [`RwLock::named`](crate::RwLock::named) register here: in debug builds
//! every acquisition checks the caller's per-thread held set against the
//! declared order and **panics before blocking** when the order is
//! violated — an inversion that would deadlock two threads instead fails
//! loudly at the offending call site, with both lock names in the message.
//! Release builds compile the whole tracker away to a no-op.
//!
//! The same table is the policy behind `eagr-lint` rule **R1** (the static
//! half of the rail): the lint crate re-exports [`LOCK_ORDER`], so the
//! static analyzer and the runtime tracker can never disagree about the
//! protocol.

/// The declared acquisition order, least-first: a thread holding a lock at
/// rank *i* may only acquire locks at rank *> i*. The chain is a total
/// order (the simplest DAG), covering every named lock in the workspace:
///
/// | name        | guards                                                   |
/// |-------------|----------------------------------------------------------|
/// | `registry`  | the facade's query registry (`EagrSystem`)               |
/// | `graph`     | the facade's data graph                                  |
/// | `history`   | the write-history backfill ring                          |
/// | `epoch_gate`| sharded-engine epoch gate (shared=submit, excl=flip)     |
/// | `core`      | the sharded engine's live core handle                    |
/// | `partition` | the sharded engine's live node→shard map handle          |
/// | `cached`    | `LivePartition`'s published map snapshot                 |
/// | `slab`      | one shard's PAO slab (`ShardedStore`)                    |
///
/// Transport-internal locks rank after every engine lock — they are leaf
/// acquisitions taken with engine locks (gate/core/partition) possibly
/// held, and never the other way around:
///
/// | name                | guards                                              |
/// |---------------------|-----------------------------------------------------|
/// | `inproc_handles`    | in-process transport's worker join handles          |
/// | `proc_dead_reason`  | process transport's first-fatal-error cell          |
/// | `proc_read_replies` | in-flight read-reply channels by `req_id`           |
/// | `proc_replies`      | in-flight state-plane reply channels by `req_id`    |
/// | `proc_child`        | one shard host's `Child` process handle             |
/// | `proc_writer`       | one shard host's writer-thread join handle          |
/// | `proc_pump`         | one shard host's pump-thread join handle            |
pub const LOCK_ORDER: &[&str] = &[
    "registry",
    "graph",
    "history",
    "epoch_gate",
    "core",
    "partition",
    "cached",
    "slab",
    "inproc_handles",
    "proc_dead_reason",
    "proc_read_replies",
    "proc_replies",
    "proc_child",
    "proc_writer",
    "proc_pump",
];

/// Names whose **shared** (read) acquisitions may nest at the same rank:
/// a shard worker serving a read batch holds its own slab's read snapshot
/// while resolving cross-shard pull inputs through foreign slabs' read
/// locks. Exclusive acquisitions never nest at equal rank.
pub const SHARED_REENTRANT: &[&str] = &["slab"];

/// Rank of `name` in [`LOCK_ORDER`].
///
/// # Panics
/// Panics when `name` is not a declared lock name — constructing a named
/// lock outside the protocol table is a configuration bug.
pub fn rank_of(name: &str) -> usize {
    LOCK_ORDER
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("lock name `{name}` is not in lock_order::LOCK_ORDER"))
}

#[cfg(debug_assertions)]
mod tracker {
    use super::{rank_of, LOCK_ORDER, SHARED_REENTRANT};
    use std::cell::RefCell;

    thread_local! {
        /// `(rank, name, shared)` for every named lock this thread holds,
        /// in acquisition order.
        static HELD: RefCell<Vec<(usize, &'static str, bool)>> = const { RefCell::new(Vec::new()) };
    }

    /// Entry in the held set, popped when the owning guard drops.
    pub struct Held {
        entry: Option<(&'static str, bool)>,
    }

    pub fn acquire(name: Option<&'static str>, shared: bool) -> Held {
        let Some(name) = name else {
            return Held { entry: None };
        };
        let rank = rank_of(name);
        // `try_with` so guards dropped during thread teardown (after TLS
        // destruction) stay silent instead of aborting.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            for &(r, n, s) in held.iter() {
                let same_rank_shared_ok =
                    r == rank && shared && s && n == name && SHARED_REENTRANT.contains(&name);
                if r > rank || (r == rank && !same_rank_shared_ok) {
                    panic!(
                        "lock-order violation: acquiring `{name}` (rank {rank}, {}) while \
                         holding `{n}` (rank {r}, {}); declared order: {}",
                        if shared { "shared" } else { "exclusive" },
                        if s { "shared" } else { "exclusive" },
                        LOCK_ORDER.join(" → ")
                    );
                }
            }
            held.push((rank, name, shared));
        });
        Held {
            entry: Some((name, shared)),
        }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            if let Some((name, shared)) = self.entry.take() {
                let _ = HELD.try_with(|held| {
                    let mut held = held.borrow_mut();
                    if let Some(i) = held.iter().rposition(|&(_, n, s)| n == name && s == shared) {
                        held.remove(i);
                    }
                });
            }
        }
    }

    /// Names of the named locks the current thread holds, in acquisition
    /// order (test observability).
    pub fn held_names() -> Vec<&'static str> {
        HELD.try_with(|held| held.borrow().iter().map(|&(_, n, _)| n).collect())
            .unwrap_or_default()
    }
}

#[cfg(not(debug_assertions))]
mod tracker {
    /// Release builds: zero-sized, no tracking.
    pub struct Held;

    #[inline(always)]
    pub fn acquire(_name: Option<&'static str>, _shared: bool) -> Held {
        Held
    }

    /// Names of the named locks the current thread holds (always empty in
    /// release builds — the tracker is compiled out).
    pub fn held_names() -> Vec<&'static str> {
        Vec::new()
    }
}

pub use tracker::{acquire, held_names, Held};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mutex, RwLock};

    #[test]
    fn order_table_is_duplicate_free() {
        for (i, a) in LOCK_ORDER.iter().enumerate() {
            assert_eq!(rank_of(a), i);
        }
        for name in SHARED_REENTRANT {
            // Every reentrancy exception must name a declared lock.
            rank_of(name);
        }
    }

    #[test]
    fn in_order_acquisition_is_clean() {
        let a = Mutex::named(0, "registry");
        let b = RwLock::named(0, "graph");
        let g1 = a.lock();
        let g2 = b.read();
        if cfg!(debug_assertions) {
            assert_eq!(held_names(), vec!["registry", "graph"]);
        }
        drop(g2);
        drop(g1);
        assert!(held_names().is_empty());
    }

    #[test]
    fn unnamed_locks_are_exempt() {
        let a = Mutex::named(0, "slab");
        let b = Mutex::new(0);
        let _g1 = a.lock();
        let _g2 = b.lock(); // no rank, no check
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracker compiled out in release")]
    fn inversion_panics_instead_of_deadlocking() {
        let res = std::thread::spawn(|| {
            let graph = RwLock::named(0, "graph");
            let registry = RwLock::named(0, "registry");
            let _g = graph.write();
            // lint: allow(lock-order, deliberate inversion — this test asserts the runtime tracker panics on it)
            let _r = registry.read(); // rank 0 after rank 1: inversion
        })
        .join();
        let err = res.expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(
            msg.contains("`registry`") && msg.contains("`graph`"),
            "got: {msg}"
        );
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracker compiled out in release")]
    fn shared_slab_reentrancy_is_allowed_but_exclusive_is_not() {
        let a = RwLock::named(0, "slab");
        let b = RwLock::named(0, "slab");
        {
            let _r1 = a.read();
            let _r2 = b.read(); // shared + shared on `slab`: allowed
        }
        let res = std::thread::spawn(|| {
            let a = RwLock::named(0, "slab");
            let b = RwLock::named(0, "slab");
            let _w = a.write();
            let _r = b.read(); // exclusive already held: not reentrant
        })
        .join();
        assert!(res.is_err(), "exclusive same-rank nesting must panic");
    }
}
