//! Multi-producer **multi-consumer** channels with the `crossbeam::channel`
//! API: both [`Sender`] and [`Receiver`] are `Clone`, `recv` blocks until a
//! message arrives or every sender is gone, and `bounded` applies
//! backpressure at a fixed capacity.
//!
//! Implementation: a `Mutex<VecDeque>` with two condvars (not-empty /
//! not-full) and endpoint reference counts for disconnect detection.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message back to the caller.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`]. Carries the unsent message back
/// to the caller in both cases.
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
        }
    }

    /// Whether the failure was a full channel (as opposed to disconnect).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// The sending half of a channel. Cloning produces another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning produces another consumer
/// competing for the same messages (MPMC semantics).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Deliver `msg`, blocking while a bounded channel is at capacity.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel mutex");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.shared.not_full.wait(state).expect("channel mutex");
                }
                _ => break,
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Deliver `msg` only if the channel has room right now; never blocks.
    /// Returns the message inside the error when the channel is full or
    /// every receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel mutex");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel mutex").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking until one arrives. Returns
    /// `Err(RecvError)` once the channel is empty and sender-less.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel mutex");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel mutex");
        }
    }

    /// Take the next message if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel mutex");
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel mutex").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel mutex").senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel mutex").receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().expect("channel mutex");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().expect("channel mutex");
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Create a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a channel holding at most `cap` queued messages; `send` blocks
/// while full. `cap` of zero is treated as one (std has no rendezvous
/// primitive to build on).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded::<u8>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        match tx.try_send(3) {
            Err(e) if e.is_full() => assert_eq!(e.into_inner(), 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(4)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn fifo_order_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn mpmc_consumers_partition_messages() {
        let (tx, rx) = unbounded::<u64>();
        let n_workers = 4;
        let n_msgs = 1000u64;
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 1..=n_msgs {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n_msgs * (n_msgs + 1) / 2);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).is_ok())
        };
        // The spawned send must complete once we drain a slot.
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }
}
