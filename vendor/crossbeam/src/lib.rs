//! A std-based stand-in for the `crossbeam` channels (see
//! `vendor/README.md`). Only [`channel`] is provided.

pub mod channel;
