//! Minimal stand-in for the `criterion` benchmark harness (see
//! `vendor/README.md`).
//!
//! Provides the calibration-free subset this workspace uses: a [`Criterion`]
//! configuration builder, [`Criterion::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], the [`criterion_group!`] /
//! [`criterion_main!`] macros, and wall-clock mean-time-per-iteration
//! reporting. There is no statistical analysis, outlier rejection, or HTML
//! report — each benchmark warms up for `warm_up_time`, then runs
//! `sample_size` samples whose batch size is auto-scaled so a sample lasts
//! roughly `measurement_time / sample_size`, and the mean is printed.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// displayable parameter, rendered `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean_secs: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Measure `routine`, called repeatedly in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, tracking the
        // rough per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so sample_size samples fill measurement_time.
        let sample_budget =
            self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size.max(1) as f64;
        let batch = ((sample_budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            total_iters += batch;
        }
        self.mean_secs = total.as_secs_f64() / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            cfg: self,
            mean_secs: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{id:<48} time: {:>12}/iter  ({} iterations)",
            format_time(b.mean_secs),
            b.iters
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, |b| f(b));
        self
    }

    /// Finish the group (reporting is immediate; this is a no-op that
    /// matches criterion's API).
    pub fn finish(self) {}
}

/// Define a benchmark group function, optionally with a custom
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
