//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max: len + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy (see
/// [`vec()`](fn@vec)).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
