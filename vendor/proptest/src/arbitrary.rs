//! The [`any`] entry point: a strategy over a type's whole value domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy generating any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
