//! Deterministic stand-in for the `proptest` property-testing framework
//! (see `vendor/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, `ident in strategy` argument
//! binding, range / tuple / `collection::vec` / [`any`] strategies, and the
//! `prop_assert*` macros. Differences from the real crate:
//!
//! * generation is **deterministic** — the RNG is seeded from the test's
//!   module path and name, so every run explores the same cases (good for
//!   CI reproducibility, bad for discovering brand-new counterexamples);
//! * there is **no shrinking** — a failing case panics with the iteration
//!   number; re-running reproduces it exactly;
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..) {..}`
/// becomes a `#[test]` that generates `cases` inputs and runs the body on
/// each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __proptest_rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let case_fn = || $body;
                    case_fn();
                    let _ = __proptest_case;
                }
            }
        )*
    };
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 1usize..8, z in 0.25f64..0.75) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..8).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_of_tuples_sizes(v in crate::collection::vec((any::<bool>(), 0i64..10), 0..20)) {
            prop_assert!(v.len() < 20);
            for (_, x) in v {
                prop_assert!((0..10).contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::TestRng;
        let s = crate::collection::vec(0i64..1000, 5..50);
        let mut a = TestRng::from_name("det");
        let mut b = TestRng::from_name("det");
        for _ in 0..10 {
            prop_assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
