//! The [`Strategy`] trait and implementations for ranges and tuples.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree / shrinking: a strategy maps RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` — the real proptest's
    /// `prop_map` (minus shrinking, like everything else here).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
