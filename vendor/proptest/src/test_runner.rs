//! Per-test configuration and the deterministic RNG driving generation.

/// How many generated cases each property test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate and check.
    pub cases: u32,
}

/// The `PROPTEST_CASES` environment override: when set to a positive
/// integer it replaces every test's case count — how nightly soak CI
/// multiplies fuzz time without touching the code.
///
/// Deliberate divergence from upstream proptest: there the env var only
/// feeds `Default` and an explicit `with_cases(n)` wins over it; here the
/// env wins over *both*, because the soak job relies on overriding the
/// in-code `with_cases(64)` budgets. Do not "fix" this to upstream
/// precedence without also changing how `bench-nightly.yml` scales the
/// case count.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&c| c > 0)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: env_cases().unwrap_or(256),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test (`PROPTEST_CASES` in the
    /// environment overrides it, exactly like upstream proptest).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// SplitMix64 generator, seeded from the test's name so each test explores
/// a stable, independent stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` of zero yields zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
