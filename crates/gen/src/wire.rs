//! [`Wire`] codec for workload [`Event`]s — the codec-friendly event shape
//! used when an event stream crosses a process boundary (e.g. driving a
//! shard host fleet from a generator process, or replaying a captured
//! stream against the socket transport in the differential tests).

use crate::workload::Event;
use eagr_graph::NodeId;
use eagr_util::wire::{Wire, WireError};

impl Wire for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Event::Write { node, value } => {
                out.push(0);
                node.encode(out);
                value.encode(out);
            }
            Event::Read { node } => {
                out.push(1);
                node.encode(out);
            }
            Event::AddEdge { from, to } => {
                out.push(2);
                from.encode(out);
                to.encode(out);
            }
            Event::RemoveEdge { from, to } => {
                out.push(3);
                from.encode(out);
                to.encode(out);
            }
            Event::AddNode { node } => {
                out.push(4);
                node.encode(out);
            }
            Event::RemoveNode { node } => {
                out.push(5);
                node.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Event::Write {
                node: NodeId::decode(buf)?,
                value: i64::decode(buf)?,
            }),
            1 => Ok(Event::Read {
                node: NodeId::decode(buf)?,
            }),
            2 => Ok(Event::AddEdge {
                from: NodeId::decode(buf)?,
                to: NodeId::decode(buf)?,
            }),
            3 => Ok(Event::RemoveEdge {
                from: NodeId::decode(buf)?,
                to: NodeId::decode(buf)?,
            }),
            4 => Ok(Event::AddNode {
                node: NodeId::decode(buf)?,
            }),
            5 => Ok(Event::RemoveNode {
                node: NodeId::decode(buf)?,
            }),
            tag => Err(WireError::BadTag { what: "Event", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Write {
                node: NodeId(3),
                value: -9,
            },
            Event::Read { node: NodeId(0) },
            Event::AddEdge {
                from: NodeId(1),
                to: NodeId(2),
            },
            Event::RemoveEdge {
                from: NodeId(2),
                to: NodeId(1),
            },
            Event::AddNode { node: NodeId(7) },
            Event::RemoveNode { node: NodeId(7) },
        ];
        let stream: Vec<Event> = events.to_vec();
        assert_eq!(Vec::<Event>::from_wire(&stream.to_wire()).unwrap(), stream);
    }
}
