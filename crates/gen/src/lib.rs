//! Synthetic datasets, workloads, and traces for EAGr experiments (§5.1).
//!
//! * [`graphs`] — preferential-attachment "social" graphs, copying-model
//!   "web" graphs, Erdős–Rényi controls, and named scaled stand-ins for the
//!   paper's datasets ([`Dataset`]).
//! * [`workload`] — Zipfian read/write rate assignment and mixed event
//!   streams with a configurable write:read ratio.
//! * [`batch`] — [`EventBatch`]: timestamped runs of the event stream for
//!   the batched/sharded ingestion path.
//! * [`trace`] — the two-phase shifting trace standing in for the EPA-HTTP
//!   packet trace of Fig 13(a).

#![forbid(unsafe_code)]

pub mod batch;
pub mod graphs;
pub mod trace;
pub mod wire;
pub mod workload;

pub use batch::{batch_events, EventBatch};
pub use graphs::{erdos_renyi, load_edge_list, parse_edge_list, social_graph, web_graph, Dataset};
pub use trace::{shifting_trace, TraceConfig};
pub use workload::{
    churn_stream, generate_events, rotating_hot_set, zipf_rates, ChurnConfig, Event, WorkloadConfig,
};
