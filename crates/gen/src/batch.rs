//! Batched event ingestion.
//!
//! The per-event write path pays channel and synchronization overhead on
//! every update; both EAGr's evaluation and follow-on work on continuous
//! queries over dynamic graphs amortize that cost by moving the update
//! stream in batches. An [`EventBatch`] is a slice of the event stream with
//! an explicit base timestamp, so batch execution assigns each event the
//! same timestamp it would have received in per-event replay — batched and
//! per-event runs stay result-equivalent.

use crate::workload::Event;

/// A contiguous run of workload events with explicit timestamps: event `i`
/// carries timestamp `base_ts + i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventBatch {
    /// Timestamp of the first event in the batch.
    pub base_ts: u64,
    /// The events, in stream order.
    pub events: Vec<Event>,
}

impl EventBatch {
    /// Build a batch starting at `base_ts`.
    pub fn new(base_ts: u64, events: Vec<Event>) -> Self {
        Self { base_ts, events }
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of event `i` within the batch.
    #[inline]
    pub fn ts(&self, i: usize) -> u64 {
        self.base_ts + i as u64
    }

    /// Iterate `(event, timestamp)` pairs in stream order.
    pub fn iter_timed(&self) -> impl Iterator<Item = (&Event, u64)> + '_ {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (e, self.base_ts + i as u64))
    }

    /// Number of writes in the batch.
    pub fn write_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_write()).count()
    }
}

/// Split an event stream into batches of at most `batch_size` events, with
/// timestamps continuing the stream position from `base_ts` (so replaying
/// the batches equals replaying the stream event by event).
///
/// # Panics
/// Panics if `batch_size == 0`.
pub fn batch_events(events: &[Event], batch_size: usize, base_ts: u64) -> Vec<EventBatch> {
    assert!(batch_size > 0, "batch_size must be positive");
    events
        .chunks(batch_size)
        .enumerate()
        .map(|(i, chunk)| EventBatch::new(base_ts + (i * batch_size) as u64, chunk.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_events, WorkloadConfig};

    #[test]
    fn batching_preserves_stream_and_timestamps() {
        let events = generate_events(
            32,
            &WorkloadConfig {
                events: 1000,
                ..Default::default()
            },
        );
        let batches = batch_events(&events, 64, 0);
        assert_eq!(batches.len(), 1000usize.div_ceil(64));
        let mut replayed = Vec::new();
        let mut expected_ts = 0u64;
        for b in &batches {
            for (e, ts) in b.iter_timed() {
                assert_eq!(ts, expected_ts);
                expected_ts += 1;
                replayed.push(*e);
            }
        }
        assert_eq!(replayed, events);
    }

    #[test]
    fn base_ts_offsets_every_batch() {
        let events = generate_events(
            8,
            &WorkloadConfig {
                events: 10,
                ..Default::default()
            },
        );
        let batches = batch_events(&events, 4, 100);
        assert_eq!(batches[0].base_ts, 100);
        assert_eq!(batches[1].base_ts, 104);
        assert_eq!(batches[2].base_ts, 108);
        assert_eq!(batches[2].len(), 2);
        assert_eq!(batches[1].ts(3), 107);
    }

    #[test]
    fn write_count_counts_writes_only() {
        let events = generate_events(
            16,
            &WorkloadConfig {
                events: 500,
                write_to_read: 1.0,
                ..Default::default()
            },
        );
        let total_writes: usize = batch_events(&events, 50, 0)
            .iter()
            .map(|b| b.write_count())
            .sum();
        assert_eq!(total_writes, events.iter().filter(|e| e.is_write()).count());
    }

    #[test]
    fn empty_stream_yields_no_batches() {
        assert!(batch_events(&[], 10, 0).is_empty());
        assert!(EventBatch::new(0, Vec::new()).is_empty());
    }
}
