//! Zipfian read/write workloads (§5.1).
//!
//! "We generate those synthetically using a Zipfian distribution ... we
//! assume that the read frequency of a node is linearly related to its
//! write frequency; we vary the write-to-read ratio itself."
//!
//! [`zipf_rates`] assigns static per-node frequencies (the planner input);
//! [`generate_events`] samples a concrete event stream from them (the
//! engine input).

use eagr_flow::Rates;
use eagr_graph::NodeId;
use eagr_util::{SplitMix64, Zipf};

/// One workload event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A content update at a node (the value models a topic/metric).
    Write {
        /// Updated node.
        node: NodeId,
        /// Stream value.
        value: i64,
    },
    /// A query for a node's ego-centric aggregate.
    Read {
        /// Queried node.
        node: NodeId,
    },
}

impl Event {
    /// The node the event touches.
    pub fn node(&self) -> NodeId {
        match *self {
            Event::Write { node, .. } | Event::Read { node } => node,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, Event::Write { .. })
    }
}

/// Assign Zipfian read/write rates over `n` nodes.
///
/// Node activity ranks are a random permutation (hub nodes are not
/// automatically the most active); read rates sum to `n`, write rates to
/// `n × write_to_read`.
pub fn zipf_rates(n: usize, exponent: f64, write_to_read: f64, seed: u64) -> Rates {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed);
    let mut ranks: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut ranks);
    let weights = Zipf::weights(n, exponent);
    let total: f64 = weights.iter().sum();
    let mut read = vec![0.0; n];
    let mut write = vec![0.0; n];
    for (node, &rank) in ranks.iter().enumerate() {
        let share = weights[rank] / total; // fraction of all activity
        read[node] = share * n as f64;
        write[node] = share * n as f64 * write_to_read;
    }
    Rates { read, write }
}

/// Configuration for event-stream sampling.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Total events to generate.
    pub events: usize,
    /// Write:read ratio (Fig 14a sweeps 0.05 … 20).
    pub write_to_read: f64,
    /// Zipf exponent of node activity.
    pub exponent: f64,
    /// Number of distinct stream values ("topics" for TOP-K).
    pub value_universe: usize,
    /// Zipf exponent of the value distribution.
    pub value_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            events: 100_000,
            write_to_read: 1.0,
            exponent: 1.0,
            value_universe: 1000,
            value_exponent: 1.0,
            seed: 0xEA67,
        }
    }
}

/// Sample a mixed event stream: nodes Zipfian-ranked, event kind Bernoulli
/// by the write:read ratio, write values Zipfian over the topic universe.
pub fn generate_events(n_nodes: usize, cfg: &WorkloadConfig) -> Vec<Event> {
    assert!(n_nodes > 0);
    let mut rng = SplitMix64::new(cfg.seed);
    let node_dist = Zipf::new(n_nodes, cfg.exponent);
    let value_dist = Zipf::new(cfg.value_universe.max(1), cfg.value_exponent);
    let mut ranks: Vec<u32> = (0..n_nodes as u32).collect();
    rng.shuffle(&mut ranks);
    let p_write = cfg.write_to_read / (1.0 + cfg.write_to_read);
    (0..cfg.events)
        .map(|_| {
            let node = NodeId(ranks[node_dist.sample(&mut rng)]);
            if rng.chance(p_write) {
                Event::Write {
                    node,
                    value: value_dist.sample(&mut rng) as i64,
                }
            } else {
                Event::Read { node }
            }
        })
        .collect()
}

/// A drifting workload: `phases` consecutive event streams sampled from
/// the same Zipfian activity distribution, but with the **hot set rotated**
/// between phases — the rank→node assignment shifts by `n / phases` nodes
/// each phase, so the nodes that were hottest in phase `k` go cold in
/// phase `k + 1` and a previously cold stretch takes over.
///
/// This is the workload a *planning-time* shard partition cannot survive:
/// a map derived from phase-0 rates co-locates phase-0's hot fan-outs, and
/// every rotation moves the delta traffic onto edges the map never
/// optimized — exactly the §4.8 drift that live rebalancing (feeding the
/// observed push counters back into the partition) is built to absorb.
///
/// Each phase contains `cfg.events` events (kind mix and value sampling as
/// in [`generate_events`]); the whole trace is deterministic in
/// `(n_nodes, cfg, phases)`.
pub fn rotating_hot_set(n_nodes: usize, cfg: &WorkloadConfig, phases: usize) -> Vec<Vec<Event>> {
    assert!(n_nodes > 0);
    assert!(phases > 0);
    let mut rng = SplitMix64::new(cfg.seed);
    let node_dist = Zipf::new(n_nodes, cfg.exponent);
    let value_dist = Zipf::new(cfg.value_universe.max(1), cfg.value_exponent);
    let mut ranks: Vec<u32> = (0..n_nodes as u32).collect();
    rng.shuffle(&mut ranks);
    let step = (n_nodes / phases).max(1);
    let p_write = cfg.write_to_read / (1.0 + cfg.write_to_read);
    (0..phases)
        .map(|phase| {
            let shift = (phase * step) % n_nodes;
            (0..cfg.events)
                .map(|_| {
                    // Rotate which node holds each activity rank: rank r is
                    // served by ranks[(r + shift) mod n].
                    let rank = node_dist.sample(&mut rng);
                    let node = NodeId(ranks[(rank + shift) % n_nodes]);
                    if rng.chance(p_write) {
                        Event::Write {
                            node,
                            value: value_dist.sample(&mut rng) as i64,
                        }
                    } else {
                        Event::Read { node }
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_expected_totals() {
        let r = zipf_rates(100, 1.0, 2.0, 1);
        let read_sum: f64 = r.read.iter().sum();
        let write_sum: f64 = r.write.iter().sum();
        assert!((read_sum - 100.0).abs() < 1e-6);
        assert!((write_sum - 200.0).abs() < 1e-6);
    }

    #[test]
    fn rates_are_skewed() {
        let r = zipf_rates(1000, 1.0, 1.0, 2);
        let mut sorted = r.read.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10: f64 = sorted[..10].iter().sum();
        let total: f64 = sorted.iter().sum();
        assert!(
            top10 / total > 0.2,
            "Zipf(1.0) top-10 share {}",
            top10 / total
        );
    }

    #[test]
    fn read_write_linearly_related() {
        let r = zipf_rates(50, 1.2, 3.0, 3);
        for v in 0..50 {
            assert!((r.write[v] - 3.0 * r.read[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn event_mix_matches_ratio() {
        let cfg = WorkloadConfig {
            events: 100_000,
            write_to_read: 4.0,
            ..Default::default()
        };
        let ev = generate_events(100, &cfg);
        let writes = ev.iter().filter(|e| e.is_write()).count();
        let frac = writes as f64 / ev.len() as f64;
        assert!((frac - 0.8).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn events_deterministic() {
        let cfg = WorkloadConfig::default();
        let a = generate_events(64, &cfg);
        let b = generate_events(64, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn rotating_hot_set_moves_the_write_hot_spot() {
        let cfg = WorkloadConfig {
            events: 30_000,
            write_to_read: 1e9, // pure writes: the hot spot is a write hot spot
            exponent: 1.2,
            seed: 77,
            ..Default::default()
        };
        let n = 120;
        let phases = rotating_hot_set(n, &cfg, 3);
        assert_eq!(phases.len(), 3);
        let histo = |events: &[Event]| {
            let mut h = vec![0usize; n];
            for e in events {
                h[e.node().0 as usize] += 1;
            }
            h
        };
        let h: Vec<Vec<usize>> = phases.iter().map(|p| histo(p)).collect();
        for k in 0..2 {
            let hot = h[k].iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0;
            assert!(
                (h[k + 1][hot] as f64) < 0.5 * h[k][hot] as f64,
                "phase-{k} hot node {hot} must go cold: {} → {}",
                h[k][hot],
                h[k + 1][hot]
            );
        }
        // Determinism.
        assert_eq!(rotating_hot_set(n, &cfg, 3), phases);
    }

    #[test]
    fn events_within_node_bounds() {
        let cfg = WorkloadConfig {
            events: 10_000,
            ..Default::default()
        };
        for e in generate_events(32, &cfg) {
            assert!(e.node().0 < 32);
        }
    }
}
