//! Zipfian read/write workloads (§5.1).
//!
//! "We generate those synthetically using a Zipfian distribution ... we
//! assume that the read frequency of a node is linearly related to its
//! write frequency; we vary the write-to-read ratio itself."
//!
//! [`zipf_rates`] assigns static per-node frequencies (the planner input);
//! [`generate_events`] samples a concrete event stream from them (the
//! engine input).

use eagr_flow::Rates;
use eagr_graph::{DataGraph, NodeId};
use eagr_util::{SplitMix64, Zipf};

/// One workload event.
///
/// Besides the classic content events (`Write`/`Read`), the stream can
/// carry *topology mutations* — the dynamic-graph workload of the paper's
/// title. Mutations ride in the same ordered stream as content events and
/// are applied by the system between the content runs that surround them
/// (`EagrSystem::ingest` splits mixed batches into maximal runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A content update at a node (the value models a topic/metric).
    Write {
        /// Updated node.
        node: NodeId,
        /// Stream value.
        value: i64,
    },
    /// A query for a node's ego-centric aggregate.
    Read {
        /// Queried node.
        node: NodeId,
    },
    /// Insert the directed data-graph edge `from → to`.
    AddEdge {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
    /// Delete the directed data-graph edge `from → to`.
    RemoveEdge {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
    /// Add a fresh, initially isolated data node. `node` is the id the
    /// generator expects the graph to assign (ids are sequential); the
    /// system grows the graph until `node` exists, which keeps replays of
    /// the same stream deterministic across execution modes.
    AddNode {
        /// The expected id of the new node.
        node: NodeId,
    },
    /// Remove a data node and every edge incident to it.
    RemoveNode {
        /// Removed node.
        node: NodeId,
    },
}

impl Event {
    /// The node the event touches (the source node for edge events).
    pub fn node(&self) -> NodeId {
        match *self {
            Event::Write { node, .. }
            | Event::Read { node }
            | Event::AddNode { node }
            | Event::RemoveNode { node } => node,
            Event::AddEdge { from, .. } | Event::RemoveEdge { from, .. } => from,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, Event::Write { .. })
    }

    /// Whether this is a topology mutation (edge/node churn).
    pub fn is_topo(&self) -> bool {
        matches!(
            self,
            Event::AddEdge { .. }
                | Event::RemoveEdge { .. }
                | Event::AddNode { .. }
                | Event::RemoveNode { .. }
        )
    }
}

/// Assign Zipfian read/write rates over `n` nodes.
///
/// Node activity ranks are a random permutation (hub nodes are not
/// automatically the most active); read rates sum to `n`, write rates to
/// `n × write_to_read`.
pub fn zipf_rates(n: usize, exponent: f64, write_to_read: f64, seed: u64) -> Rates {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed);
    let mut ranks: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut ranks);
    let weights = Zipf::weights(n, exponent);
    let total: f64 = weights.iter().sum();
    let mut read = vec![0.0; n];
    let mut write = vec![0.0; n];
    for (node, &rank) in ranks.iter().enumerate() {
        let share = weights[rank] / total; // fraction of all activity
        read[node] = share * n as f64;
        write[node] = share * n as f64 * write_to_read;
    }
    Rates { read, write }
}

/// Configuration for event-stream sampling.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Total events to generate.
    pub events: usize,
    /// Write:read ratio (Fig 14a sweeps 0.05 … 20).
    pub write_to_read: f64,
    /// Zipf exponent of node activity.
    pub exponent: f64,
    /// Number of distinct stream values ("topics" for TOP-K).
    pub value_universe: usize,
    /// Zipf exponent of the value distribution.
    pub value_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            events: 100_000,
            write_to_read: 1.0,
            exponent: 1.0,
            value_universe: 1000,
            value_exponent: 1.0,
            seed: 0xEA67,
        }
    }
}

/// Sample a mixed event stream: nodes Zipfian-ranked, event kind Bernoulli
/// by the write:read ratio, write values Zipfian over the topic universe.
pub fn generate_events(n_nodes: usize, cfg: &WorkloadConfig) -> Vec<Event> {
    assert!(n_nodes > 0);
    let mut rng = SplitMix64::new(cfg.seed);
    let node_dist = Zipf::new(n_nodes, cfg.exponent);
    let value_dist = Zipf::new(cfg.value_universe.max(1), cfg.value_exponent);
    let mut ranks: Vec<u32> = (0..n_nodes as u32).collect();
    rng.shuffle(&mut ranks);
    let p_write = cfg.write_to_read / (1.0 + cfg.write_to_read);
    (0..cfg.events)
        .map(|_| {
            let node = NodeId(ranks[node_dist.sample(&mut rng)]);
            if rng.chance(p_write) {
                Event::Write {
                    node,
                    value: value_dist.sample(&mut rng) as i64,
                }
            } else {
                Event::Read { node }
            }
        })
        .collect()
}

/// A drifting workload: `phases` consecutive event streams sampled from
/// the same Zipfian activity distribution, but with the **hot set rotated**
/// between phases — the rank→node assignment shifts by `n / phases` nodes
/// each phase, so the nodes that were hottest in phase `k` go cold in
/// phase `k + 1` and a previously cold stretch takes over.
///
/// This is the workload a *planning-time* shard partition cannot survive:
/// a map derived from phase-0 rates co-locates phase-0's hot fan-outs, and
/// every rotation moves the delta traffic onto edges the map never
/// optimized — exactly the §4.8 drift that live rebalancing (feeding the
/// observed push counters back into the partition) is built to absorb.
///
/// Each phase contains `cfg.events` events (kind mix and value sampling as
/// in [`generate_events`]); the whole trace is deterministic in
/// `(n_nodes, cfg, phases)`.
pub fn rotating_hot_set(n_nodes: usize, cfg: &WorkloadConfig, phases: usize) -> Vec<Vec<Event>> {
    assert!(n_nodes > 0);
    assert!(phases > 0);
    let mut rng = SplitMix64::new(cfg.seed);
    let node_dist = Zipf::new(n_nodes, cfg.exponent);
    let value_dist = Zipf::new(cfg.value_universe.max(1), cfg.value_exponent);
    let mut ranks: Vec<u32> = (0..n_nodes as u32).collect();
    rng.shuffle(&mut ranks);
    let step = (n_nodes / phases).max(1);
    let p_write = cfg.write_to_read / (1.0 + cfg.write_to_read);
    (0..phases)
        .map(|phase| {
            let shift = (phase * step) % n_nodes;
            (0..cfg.events)
                .map(|_| {
                    // Rotate which node holds each activity rank: rank r is
                    // served by ranks[(r + shift) mod n].
                    let rank = node_dist.sample(&mut rng);
                    let node = NodeId(ranks[(rank + shift) % n_nodes]);
                    if rng.chance(p_write) {
                        Event::Write {
                            node,
                            value: value_dist.sample(&mut rng) as i64,
                        }
                    } else {
                        Event::Read { node }
                    }
                })
                .collect()
        })
        .collect()
}

/// Configuration for [`churn_stream`]: a mixed content + topology-churn
/// workload in the edge-stream style of StreamWorks — every epoch mutates
/// a fixed fraction of the *current* edge set while writes and reads keep
/// flowing.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Number of epochs (one inner event vector per epoch).
    pub epochs: usize,
    /// Content events (writes + reads) per epoch.
    pub epoch_events: usize,
    /// Fraction of the current edge count mutated per epoch (Fig-style
    /// sweeps use 0.01 / 0.05 / 0.10).
    pub churn_fraction: f64,
    /// Fraction of churn operations that are node add/remove pairs
    /// instead of edge flips (0 disables node churn).
    pub node_churn: f64,
    /// Write:read ratio of the content events.
    pub write_to_read: f64,
    /// Zipf exponent of node activity.
    pub exponent: f64,
    /// Number of distinct stream values.
    pub value_universe: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            epoch_events: 1000,
            churn_fraction: 0.05,
            node_churn: 0.1,
            write_to_read: 4.0,
            exponent: 1.0,
            value_universe: 1000,
            seed: 0xC4_09,
        }
    }
}

/// Generate a churn workload over `g`: per epoch, `churn_fraction ×
/// |E|` topology mutations interleaved with `epoch_events` Zipfian
/// writes/reads. Mutations are generated against a private mirror of the
/// evolving graph, so every emitted event is valid *at its stream
/// position* when the stream is applied in order from `g`'s initial state:
/// removed edges exist, added edges are fresh, content events target live
/// nodes, and [`Event::AddNode`] ids match the sequential ids the graph
/// will assign. Deterministic in `(g, cfg)`.
pub fn churn_stream(g: &DataGraph, cfg: &ChurnConfig) -> Vec<Vec<Event>> {
    assert!(cfg.epochs > 0);
    assert!((0.0..=1.0).contains(&cfg.churn_fraction));
    let mut mirror = g.clone();
    let mut edges: Vec<(NodeId, NodeId)> = mirror.edges().collect();
    let mut rng = SplitMix64::new(cfg.seed);
    let value_dist = Zipf::new(cfg.value_universe.max(1), 1.0);
    let p_write = cfg.write_to_read / (1.0 + cfg.write_to_read);
    let min_live = (g.node_count() / 2).max(2);

    // Sample a live node, Zipf-skewed over the current id space.
    let sample_live = |mirror: &DataGraph, rng: &mut SplitMix64| -> NodeId {
        let bound = mirror.id_bound().max(1);
        let dist = Zipf::new(bound, cfg.exponent);
        for _ in 0..64 {
            let v = NodeId(dist.sample(rng) as u32);
            if mirror.contains(v) {
                return v;
            }
        }
        // Dense fallback: linear scan from a random start.
        let start = rng.index(bound) as u32;
        for d in 0..bound as u32 {
            let v = NodeId((start + d) % bound as u32);
            if mirror.contains(v) {
                return v;
            }
        }
        unreachable!("graph has no live nodes");
    };

    (0..cfg.epochs)
        .map(|_| {
            let n_churn = ((edges.len() as f64 * cfg.churn_fraction).ceil() as usize).max(1);
            let slots = cfg.epoch_events + n_churn;
            let mut out = Vec::with_capacity(slots + 2);
            let (mut churn_left, mut content_left) = (n_churn, cfg.epoch_events);
            for _ in 0..slots {
                let pick_churn = churn_left > 0
                    && (content_left == 0
                        || rng.chance(churn_left as f64 / (churn_left + content_left) as f64));
                if pick_churn {
                    churn_left -= 1;
                    if rng.chance(cfg.node_churn) {
                        if rng.chance(0.5) && mirror.node_count() > min_live {
                            let v = sample_live(&mirror, &mut rng);
                            mirror.remove_node(v);
                            out.push(Event::RemoveNode { node: v });
                        } else {
                            let v = mirror.add_node();
                            out.push(Event::AddNode { node: v });
                            // Wire the newcomer in so it participates.
                            let u = sample_live(&mirror, &mut rng);
                            if u != v && mirror.add_edge(u, v) {
                                edges.push((u, v));
                                out.push(Event::AddEdge { from: u, to: v });
                            }
                        }
                    } else if rng.chance(0.5) && !edges.is_empty() {
                        // Remove a random existing edge; entries go stale
                        // when node churn removed them behind our back.
                        let mut removed = false;
                        for _ in 0..32 {
                            if edges.is_empty() {
                                break;
                            }
                            let i = rng.index(edges.len());
                            let (u, v) = edges.swap_remove(i);
                            if mirror.contains(u) && mirror.contains(v) && mirror.remove_edge(u, v)
                            {
                                out.push(Event::RemoveEdge { from: u, to: v });
                                removed = true;
                                break;
                            }
                        }
                        if !removed {
                            continue;
                        }
                    } else {
                        let u = sample_live(&mirror, &mut rng);
                        let v = sample_live(&mirror, &mut rng);
                        if u != v && mirror.add_edge(u, v) {
                            edges.push((u, v));
                            out.push(Event::AddEdge { from: u, to: v });
                        }
                    }
                } else {
                    content_left -= 1;
                    let node = sample_live(&mirror, &mut rng);
                    if rng.chance(p_write) {
                        out.push(Event::Write {
                            node,
                            value: value_dist.sample(&mut rng) as i64,
                        });
                    } else {
                        out.push(Event::Read { node });
                    }
                }
            }
            // Every epoch is contractually a churn epoch, but each churn
            // slot above may no-op on unlucky samples (self-loop, already
            // present edge, stale removal candidates). Force one edge flip
            // — or, against a complete live subgraph, a node add — so
            // downstream accounting can rely on `mutations > 0` per epoch.
            if !out.iter().any(Event::is_topo) {
                let mut forced = false;
                for _ in 0..64 {
                    let u = sample_live(&mirror, &mut rng);
                    let v = sample_live(&mirror, &mut rng);
                    if u != v && mirror.add_edge(u, v) {
                        edges.push((u, v));
                        out.push(Event::AddEdge { from: u, to: v });
                        forced = true;
                        break;
                    }
                }
                while !forced && !edges.is_empty() {
                    let i = rng.index(edges.len());
                    let (u, v) = edges.swap_remove(i);
                    if mirror.contains(u) && mirror.contains(v) && mirror.remove_edge(u, v) {
                        out.push(Event::RemoveEdge { from: u, to: v });
                        forced = true;
                    }
                }
                if !forced {
                    let v = mirror.add_node();
                    out.push(Event::AddNode { node: v });
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_expected_totals() {
        let r = zipf_rates(100, 1.0, 2.0, 1);
        let read_sum: f64 = r.read.iter().sum();
        let write_sum: f64 = r.write.iter().sum();
        assert!((read_sum - 100.0).abs() < 1e-6);
        assert!((write_sum - 200.0).abs() < 1e-6);
    }

    #[test]
    fn rates_are_skewed() {
        let r = zipf_rates(1000, 1.0, 1.0, 2);
        let mut sorted = r.read.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10: f64 = sorted[..10].iter().sum();
        let total: f64 = sorted.iter().sum();
        assert!(
            top10 / total > 0.2,
            "Zipf(1.0) top-10 share {}",
            top10 / total
        );
    }

    #[test]
    fn read_write_linearly_related() {
        let r = zipf_rates(50, 1.2, 3.0, 3);
        for v in 0..50 {
            assert!((r.write[v] - 3.0 * r.read[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn event_mix_matches_ratio() {
        let cfg = WorkloadConfig {
            events: 100_000,
            write_to_read: 4.0,
            ..Default::default()
        };
        let ev = generate_events(100, &cfg);
        let writes = ev.iter().filter(|e| e.is_write()).count();
        let frac = writes as f64 / ev.len() as f64;
        assert!((frac - 0.8).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn events_deterministic() {
        let cfg = WorkloadConfig::default();
        let a = generate_events(64, &cfg);
        let b = generate_events(64, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn rotating_hot_set_moves_the_write_hot_spot() {
        let cfg = WorkloadConfig {
            events: 30_000,
            write_to_read: 1e9, // pure writes: the hot spot is a write hot spot
            exponent: 1.2,
            seed: 77,
            ..Default::default()
        };
        let n = 120;
        let phases = rotating_hot_set(n, &cfg, 3);
        assert_eq!(phases.len(), 3);
        let histo = |events: &[Event]| {
            let mut h = vec![0usize; n];
            for e in events {
                h[e.node().0 as usize] += 1;
            }
            h
        };
        let h: Vec<Vec<usize>> = phases.iter().map(|p| histo(p)).collect();
        for k in 0..2 {
            let hot = h[k].iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0;
            assert!(
                (h[k + 1][hot] as f64) < 0.5 * h[k][hot] as f64,
                "phase-{k} hot node {hot} must go cold: {} → {}",
                h[k][hot],
                h[k + 1][hot]
            );
        }
        // Determinism.
        assert_eq!(rotating_hot_set(n, &cfg, 3), phases);
    }

    #[test]
    fn churn_stream_is_valid_and_deterministic() {
        let g = crate::graphs::social_graph(150, 4, 9);
        let cfg = ChurnConfig {
            epochs: 3,
            epoch_events: 400,
            churn_fraction: 0.08,
            node_churn: 0.2,
            ..Default::default()
        };
        let stream = churn_stream(&g, &cfg);
        assert_eq!(stream.len(), 3);
        assert_eq!(stream, churn_stream(&g, &cfg));
        // Replaying the stream in order from g must hit only valid states.
        let mut replay = g.clone();
        let mut topo = 0usize;
        for epoch in &stream {
            for e in epoch {
                match *e {
                    Event::Write { node, .. } | Event::Read { node } => {
                        assert!(replay.contains(node), "content on dead node {node:?}");
                    }
                    Event::AddEdge { from, to } => {
                        topo += 1;
                        assert!(replay.contains(from) && replay.contains(to));
                        assert!(replay.add_edge(from, to), "duplicate edge {from:?}→{to:?}");
                    }
                    Event::RemoveEdge { from, to } => {
                        topo += 1;
                        assert!(replay.remove_edge(from, to), "missing edge {from:?}→{to:?}");
                    }
                    Event::AddNode { node } => {
                        topo += 1;
                        assert_eq!(replay.add_node(), node, "AddNode id mismatch");
                    }
                    Event::RemoveNode { node } => {
                        topo += 1;
                        assert!(replay.contains(node));
                        replay.remove_node(node);
                    }
                }
            }
        }
        assert!(topo > 0, "churn stream must contain mutations");
    }

    #[test]
    fn events_within_node_bounds() {
        let cfg = WorkloadConfig {
            events: 10_000,
            ..Default::default()
        };
        for e in generate_events(32, &cfg) {
            assert!(e.node().0 < 32);
        }
    }
}
