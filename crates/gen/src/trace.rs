//! A shifting activity trace — the EPA-HTTP stand-in (§5.3, Fig 13a).
//!
//! The paper replays a real HTTP packet trace and, "at a half-way point,
//! modified the read/write frequencies by increasing the read frequencies
//! of a set of nodes with the highest read latencies till that point" —
//! i.e. reads move onto previously *cold* nodes, invalidating static
//! dataflow decisions. This generator reproduces exactly that shape
//! synthetically (the real trace is not redistributable; DESIGN.md records
//! the substitution).

use crate::workload::{generate_events, Event, WorkloadConfig};
use eagr_util::SplitMix64;

/// Two-phase trace configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Events per phase (total = 2×).
    pub events_per_phase: usize,
    /// Write:read ratio (both phases).
    pub write_to_read: f64,
    /// Zipf exponent of node activity.
    pub exponent: f64,
    /// Fraction of nodes whose read popularity is boosted in phase 2
    /// (drawn from the cold tail of phase 1).
    pub shift_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            events_per_phase: 50_000,
            write_to_read: 1.0,
            exponent: 1.0,
            shift_fraction: 0.2,
            seed: 0xEA67,
        }
    }
}

/// Generate the two-phase trace. Phase 1 is an ordinary Zipfian stream;
/// phase 2 continues the *same* stream (same node ranking — content
/// production does not move) but redirects reads onto previously cold
/// nodes: attention moves.
pub fn shifting_trace(n_nodes: usize, cfg: &TraceConfig) -> Vec<Event> {
    let base = WorkloadConfig {
        events: 2 * cfg.events_per_phase,
        write_to_read: cfg.write_to_read,
        exponent: cfg.exponent,
        seed: cfg.seed,
        ..Default::default()
    };
    let full = generate_events(n_nodes, &base);
    let mut events: Vec<Event> = full[..cfg.events_per_phase].to_vec();

    let mut rng = SplitMix64::new(cfg.seed ^ 0xABCD);
    let shift = ((n_nodes as f64 * cfg.shift_fraction) as usize).max(1);
    for &e in &full[cfg.events_per_phase..] {
        match e {
            Event::Write { .. } => events.push(e),
            Event::Read { node } => {
                // Rotate the node id space so the tail of the phase-1
                // ranking receives the hot reads.
                let rotated = (node.0 as usize + n_nodes - shift) % n_nodes;
                // Occasionally keep the original target so the shift is a
                // redistribution, not a total swap.
                let target = if rng.chance(0.85) {
                    rotated as u32
                } else {
                    node.0
                };
                events.push(Event::Read {
                    node: eagr_graph::NodeId(target),
                });
            }
            // generate_events emits no topology mutations; pass through.
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => events.push(e),
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_util::FastMap;

    fn read_histogram(events: &[Event], n: usize) -> Vec<usize> {
        let mut h = vec![0usize; n];
        for e in events {
            if let Event::Read { node } = e {
                h[node.0 as usize] += 1;
            }
        }
        h
    }

    #[test]
    fn two_phases_with_expected_size() {
        let cfg = TraceConfig {
            events_per_phase: 10_000,
            ..Default::default()
        };
        let t = shifting_trace(64, &cfg);
        assert_eq!(t.len(), 20_000);
    }

    #[test]
    fn read_popularity_shifts_between_phases() {
        let cfg = TraceConfig {
            events_per_phase: 40_000,
            shift_fraction: 0.3,
            ..Default::default()
        };
        let n = 100;
        let t = shifting_trace(n, &cfg);
        let h1 = read_histogram(&t[..cfg.events_per_phase], n);
        let h2 = read_histogram(&t[cfg.events_per_phase..], n);
        // The hottest phase-1 reader must lose most of its traffic.
        let hot1 = h1.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0;
        assert!(
            (h2[hot1] as f64) < 0.5 * h1[hot1] as f64,
            "phase-1 hot node {hot1}: {} → {}",
            h1[hot1],
            h2[hot1]
        );
        // And some node must gain substantially.
        let gained = (0..n).any(|v| h2[v] > h1[v] * 2 + 50);
        assert!(gained, "someone must become hot in phase 2");
    }

    #[test]
    fn writes_do_not_shift() {
        let cfg = TraceConfig {
            events_per_phase: 30_000,
            ..Default::default()
        };
        let n = 50;
        let t = shifting_trace(n, &cfg);
        let mut w1: FastMap<u32, usize> = FastMap::default();
        let mut w2: FastMap<u32, usize> = FastMap::default();
        for e in &t[..cfg.events_per_phase] {
            if let Event::Write { node, .. } = e {
                *w1.entry(node.0).or_insert(0) += 1;
            }
        }
        for e in &t[cfg.events_per_phase..] {
            if let Event::Write { node, .. } = e {
                *w2.entry(node.0).or_insert(0) += 1;
            }
        }
        // The hottest writer stays the hottest.
        let hot1 = w1.iter().max_by_key(|&(_, c)| *c).unwrap().0;
        let hot2 = w2.iter().max_by_key(|&(_, c)| *c).unwrap().0;
        assert_eq!(hot1, hot2);
    }
}
