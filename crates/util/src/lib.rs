//! Substrate utilities for the EAGr workspace.
//!
//! This crate deliberately has no heavyweight dependencies: it provides the
//! small, hot primitives the rest of the system is built on —
//!
//! * [`hash`] — a fast FxHash-style hasher and the [`FastMap`]/[`FastSet`]
//!   aliases used throughout the workspace (graph adjacency is integer-keyed,
//!   where SipHash is needlessly slow),
//! * [`rng`] — a tiny, deterministic xoshiro256**-based random number
//!   generator so experiments are reproducible bit-for-bit,
//! * [`zipf`] — a Zipfian sampler (read/write activity in the paper is
//!   modeled as Zipfian, §5.1),
//! * [`stats`] — online statistics and percentile summaries used by the
//!   execution engine's latency/throughput instrumentation,
//! * [`wire`] — the std-only length-prefixed binary codec the multi-process
//!   shard transport speaks (no serde anywhere in the workspace).

#![forbid(unsafe_code)]

pub mod hash;
pub mod rng;
pub mod stats;
pub mod wire;
pub mod zipf;

pub use hash::{FastHasher, FastMap, FastSet};
pub use rng::SplitMix64;
pub use stats::{percentile, LatencySummary, OnlineStats};
pub use wire::{read_frame, write_frame, Wire, WireError};
pub use zipf::Zipf;
