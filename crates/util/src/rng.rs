//! A tiny deterministic pseudo-random number generator.
//!
//! Experiments must be reproducible bit-for-bit across runs and machines, so
//! the workspace uses this self-contained SplitMix64-seeded xoshiro256**
//! generator rather than an external RNG whose stream could change between
//! crate versions.

/// Deterministic RNG: SplitMix64 seeding + xoshiro256** core.
///
/// The name keeps the seeding algorithm visible because seeding quality is
/// what makes nearby integer seeds produce uncorrelated streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    s: [u64; 4],
}

#[inline]
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix_next(&mut st),
            splitmix_next(&mut st),
            splitmix_next(&mut st),
            splitmix_next(&mut st),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform in `[lo, hi)` (integers). `lo < hi` required.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Fork an independent generator (e.g. one per worker thread) whose
    /// stream is decorrelated from this one.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_bounds_and_covers() {
        let mut rng = SplitMix64::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn range_endpoints() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..100 {
            let v = rng.range(5, 7);
            assert!((5..7).contains(&v));
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = SplitMix64::new(42);
        let mut b = a.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }
}
