//! `Wire` — a tiny, std-only, length-prefixed binary codec.
//!
//! The multi-process sharded runtime (exec's `ShardTransport`) ships shard
//! protocol messages across Unix sockets. Nothing in the workspace may pull
//! serde, so this module defines the minimal self-describing-free encoding
//! every wire-crossing type implements by hand:
//!
//! - fixed-width little-endian integers (`u8`/`u32`/`u64`/`i64`/`f64`),
//! - `usize` encoded as `u64` (checked on decode),
//! - `bool` as one byte (`0`/`1`, anything else is a decode error),
//! - `String` / `Vec<T>` / `BTreeMap<K, V>` as a `u64` length followed by
//!   elements,
//! - `Option<T>` as a presence byte followed by the payload,
//! - tuples as their fields in order.
//!
//! Frames on a stream are `u32` little-endian payload length followed by the
//! payload bytes ([`write_frame`] / [`read_frame`]). Decoding is strict:
//! trailing bytes, truncated input, or out-of-range tags all produce a
//! [`WireError`] instead of a panic, so a corrupt or hostile peer can never
//! poison the coordinator process.

use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Hard cap on a single frame (64 MiB). A length prefix beyond this is
/// treated as stream corruption rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Decode-side failure: truncated input, bad tag, or a value out of range
/// for the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A decoded value was out of range (e.g. a `u64` length that does not
    /// fit `usize`, or a frame beyond [`MAX_FRAME_LEN`]).
    OutOfRange(&'static str),
    /// A payload decoded cleanly but left trailing bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire: truncated input"),
            WireError::BadTag { what, tag } => write!(f, "wire: bad tag {tag} for {what}"),
            WireError::OutOfRange(what) => write!(f, "wire: value out of range for {what}"),
            WireError::TrailingBytes(n) => write!(f, "wire: {n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// A type that can encode itself to bytes and decode itself back.
///
/// `decode` consumes from the front of `buf`, advancing the slice; composite
/// types chain field decodes. The round-trip law — `decode(encode(x)) == x`
/// with the whole buffer consumed — is property-tested in
/// `crates/exec/tests/wire_roundtrip.rs`.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a complete buffer, rejecting trailing bytes.
    fn from_wire(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(v)
        } else {
            Err(WireError::TrailingBytes(buf.len()))
        }
    }
}

/// Split `n` bytes off the front of `buf`.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! fixed_int {
    ($ty:ty, $n:expr) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let b = take(buf, $n)?;
                let mut arr = [0u8; $n];
                arr.copy_from_slice(b);
                Ok(<$ty>::from_le_bytes(arr))
            }
        }
    };
}

fixed_int!(u8, 1);
fixed_int!(u16, 2);
fixed_int!(u32, 4);
fixed_int!(u64, 8);
fixed_int!(i64, 8);

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(buf)?))
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        usize::try_from(u64::decode(buf)?).map_err(|_| WireError::OutOfRange("usize"))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = usize::decode(buf)?;
        let b = take(buf, n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::OutOfRange("utf-8 string"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = usize::decode(buf)?;
        // A hostile length must not drive allocation: cap the pre-reserve by
        // what the remaining buffer could possibly hold (1 byte/element min).
        let mut v = Vec::with_capacity(n.min(buf.len()));
        for _ in 0..n {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<K, V> Wire for crate::hash::FastMap<K, V>
where
    K: Wire + Ord + Eq + std::hash::Hash + Clone,
    V: Wire + Clone,
{
    fn encode(&self, out: &mut Vec<u8>) {
        // Hash maps iterate in arbitrary order; sort by key so equal maps
        // encode to equal bytes (the round-trip proptest relies on this).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.len().encode(out);
        for (k, v) in entries {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = usize::decode(buf)?;
        let mut m = Self::default();
        for _ in 0..n {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = usize::decode(buf)?;
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

macro_rules! tuple_wire {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

tuple_wire!(A, B);
tuple_wire!(A, B, C);
tuple_wire!(A, B, C, D);

/// Write one length-prefixed frame (`u32` LE payload length, then payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF (no bytes
/// of a next frame read), an error on mid-frame EOF or an oversized length.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        rt(0u8);
        rt(255u8);
        rt(0xdead_beefu32);
        rt(u64::MAX);
        rt(i64::MIN);
        rt(-1.5f64);
        rt(usize::MAX);
        rt(true);
        rt(false);
        rt(String::from("héllo"));
        rt(vec![1u32, 2, 3]);
        rt(Option::<u64>::None);
        rt(Some(7i64));
        rt((1u32, -2i64, String::from("x")));
        rt(BTreeMap::from([(1i64, 2i64), (-3, 4)]));
    }

    #[test]
    fn strictness() {
        assert_eq!(u32::from_wire(&[1, 2]), Err(WireError::Truncated));
        assert_eq!(
            bool::from_wire(&[9]),
            Err(WireError::BadTag {
                what: "bool",
                tag: 9
            })
        );
        assert_eq!(u8::from_wire(&[1, 2]), Err(WireError::TrailingBytes(1)));
        // Hostile length: claims 2^60 elements with an empty tail.
        let mut evil = Vec::new();
        (1u64 << 60).encode(&mut evil);
        assert_eq!(Vec::<u8>::from_wire(&evil), Err(WireError::Truncated));
    }

    #[test]
    fn frames_round_trip() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abc").unwrap();
        write_frame(&mut stream, b"").unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }
}
