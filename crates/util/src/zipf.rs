//! Zipfian sampling.
//!
//! The paper generates per-node read/write activity from a Zipfian
//! distribution ("event rates in many applications ... have been shown to
//! follow a Zipfian distribution", §5.1). This module provides both an exact
//! inverse-CDF sampler (good up to a few million ranks) and direct access to
//! the rank weights for assigning static frequencies.

use crate::rng::SplitMix64;

/// Zipfian distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[k] = P(rank <= k)`.
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Build a Zipfian distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf, s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has zero ranks. Computed from the actual
    /// rank table rather than hard-coded (construction guarantees `n > 0`,
    /// so this is always `false` — but it must stay consistent with
    /// [`len`](Self::len) if that invariant ever changes).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First k with cdf[k] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank. Ranks outside `0..len()` have zero mass
    /// (rather than the index-out-of-bounds panic this used to be).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            0.0
        } else if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Unnormalized weights for all ranks (useful for static frequency
    /// assignment: frequency of the node at rank k ∝ `weights[k]`).
    pub fn weights(n: usize, s: f64) -> Vec<f64> {
        (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_likely() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = SplitMix64::new(123);
        let mut counts = [0usize; 10];
        let trials = 200_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let observed = count as f64 / trials as f64;
            let expected = z.pmf(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed:.4} vs expected {expected:.4}"
            );
        }
    }

    #[test]
    fn sample_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn pmf_out_of_range_is_zero() {
        // Regression: pmf(len()) used to panic with index-out-of-bounds.
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.pmf(10), 0.0);
        assert_eq!(z.pmf(usize::MAX), 0.0);
        // In-range mass is untouched by the clamp.
        assert!(z.pmf(9) > 0.0);
    }

    #[test]
    fn is_empty_reflects_rank_count() {
        // Regression: is_empty() was hard-coded to false instead of being
        // derived from the rank table.
        let z = Zipf::new(1, 1.0);
        assert!(!z.is_empty());
        assert_eq!(z.len(), 1);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    fn weights_decreasing() {
        let w = Zipf::weights(5, 1.0);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }
}
