//! Online statistics and latency summaries.
//!
//! The evaluation reports worst-case / 95th-percentile / average latencies
//! (Fig 13c) and throughputs; these helpers compute them without external
//! dependencies.

/// Welford's online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 when empty, matching [`mean`](Self::mean)).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty, matching [`mean`](Self::mean)).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile of a sample by sorting (nearest-rank method).
///
/// Returns 0.0 for an empty slice. `q` is in `[0, 1]`.
///
/// Sorting uses [`f64::total_cmp`], so NaN samples never panic (the old
/// `partial_cmp().unwrap()` did): positive NaNs order after `+inf` and
/// negative NaNs before `-inf`. A sample containing positive NaNs therefore
/// reports them as its top percentiles rather than aborting mid-benchmark.
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Worst / p95 / average latency triple, as reported in Fig 13(c).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Maximum observed latency.
    pub worst: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// Mean latency.
    pub avg: f64,
}

impl LatencySummary {
    /// Summarize a sample of latencies (consumed: the slice is sorted).
    ///
    /// NaN samples are tolerated — [`percentile`] sorts with
    /// [`f64::total_cmp`], so they surface as NaN `worst`/`p95`/`avg`
    /// values instead of panicking.
    pub fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self {
                worst: 0.0,
                p95: 0.0,
                avg: 0.0,
            };
        }
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        let p95 = percentile(samples, 0.95);
        let worst = *samples.last().unwrap(); // sorted by percentile()
        Self { worst, p95, avg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&mut xs, 0.95), 95.0);
        assert_eq!(percentile(&mut xs, 1.0), 100.0);
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        let mut empty: Vec<f64> = vec![];
        assert_eq!(percentile(&mut empty, 0.5), 0.0);
    }

    #[test]
    fn latency_summary() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        let s = LatencySummary::from_samples(&mut xs);
        assert_eq!(s.worst, 100.0);
        assert!((s.avg - 22.0).abs() < 1e-12);
        assert_eq!(s.p95, 100.0);
    }

    #[test]
    fn empty_stats_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
        // min/max agree with mean() on the empty accumulator instead of
        // leaking the ±inf sentinels.
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn empty_stats_merge_still_works() {
        // The 0.0 accessors must not disturb the ±inf sentinels merge()
        // relies on.
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(3.0);
        b.record(-2.0);
        a.merge(&b);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn percentile_tolerates_nan_samples() {
        // Regression: partial_cmp().unwrap() panicked on NaN latencies
        // (e.g. a 0/0 ops-per-second division leaking into a summary).
        let mut xs = vec![2.0, f64::NAN, 1.0, 3.0];
        assert_eq!(percentile(&mut xs, 0.5), 2.0);
        // Positive NaN orders after +inf under total_cmp: it is the "worst".
        assert!(percentile(&mut xs, 1.0).is_nan());
        let mut ys = vec![f64::NAN, 4.0, 1.0];
        let s = LatencySummary::from_samples(&mut ys);
        assert!(s.worst.is_nan());
        assert!(s.avg.is_nan());
    }
}
