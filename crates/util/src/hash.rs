//! A fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! The workspace hashes almost exclusively small integer keys (node ids,
//! overlay ids, stream values). SipHash's HashDoS protection buys nothing
//! here and costs real throughput, so we use the classic
//! multiply-rotate-xor construction. Implemented in-repo because the
//! `rustc-hash` crate is outside the sanctioned dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio derived odd multiplier (same constant family as FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast `Hasher` for small keys. Not DoS-resistant; never expose to
/// untrusted adversarial input.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }

    #[test]
    fn byte_tail_handling() {
        // Slices shorter than / not a multiple of 8 bytes must still hash.
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(
            hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn reasonable_distribution() {
        // Low-entropy sequential keys should not collide in the low bits
        // (hashbrown uses the high bits too, but catching a degenerate
        // constant-output hasher is the point).
        let mut seen = FastSet::default();
        for i in 0u64..10_000 {
            seen.insert(hash_one(i) >> 48);
        }
        assert!(
            seen.len() > 1000,
            "top bits look degenerate: {}",
            seen.len()
        );
    }
}
