//! The one-stop EAGr system facade: data graph + query → bipartite graph →
//! overlay → dataflow plan → execution engine.

use crate::query::{EgoQuery, QueryMode};
use eagr_agg::{Aggregate, CostModel};
use eagr_exec::{
    AdaptiveEngine, EngineCore, ParallelConfig, ParallelEngine, RebalanceOutcome, RebalancePolicy,
    ShardedConfig, ShardedEngine,
};
use eagr_flow::{plan, DecisionAlgorithm, Plan, PlannerConfig, Rates};
use eagr_gen::{Event, EventBatch};
use eagr_graph::{BipartiteGraph, DataGraph, NodeId};
use eagr_overlay::{build_iob, build_vnm, metrics, IobConfig, IterationStats, Overlay, VnmConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a compiled system executes its workload.
#[derive(Clone, Copy, Debug)]
pub enum ExecutionMode {
    /// The §2.2.2 uni-thread baseline: every operation runs synchronously
    /// on the calling thread.
    SingleThreaded,
    /// The paper's two-pool model: batch ingestion fans writes out as
    /// PAO-granularity micro-tasks over a shared queue (point `write`s and
    /// `read`s stay synchronous on the shared core).
    TwoPool(ParallelConfig),
    /// The shard-owned runtime: overlay nodes are partitioned across
    /// worker-owned shards, writes are ingested in batches, cross-shard
    /// propagation travels as batched deltas drained in epochs, and reads
    /// are shard-executed — routed through the shard inboxes so the owning
    /// worker evaluates them epoch-consistently (the caller thread never
    /// evaluates shard-owned PAO state). The node→shard map is live: set a
    /// [`RebalancePolicy`] ([`SystemBuilder::rebalance`]) to let the
    /// engine periodically re-partition itself from observed load, or call
    /// [`EagrSystem::rebalance`] manually.
    Sharded {
        /// Number of shards (owning worker threads).
        shards: usize,
    },
}

/// Which overlay construction algorithm to run (§3.2 + the direct/baseline
/// structure).
#[derive(Clone, Debug)]
pub enum OverlayAlgorithm {
    /// No sharing: the bipartite graph itself (used by the all-push and
    /// all-pull baselines of §5.1).
    Direct,
    /// Plain VNM with a fixed chunk size.
    Vnm {
        /// Reader-group size.
        chunk_size: usize,
    },
    /// VNM_A — adaptive chunk size (§3.2.2).
    Vnma,
    /// VNM_N — negative edges (§3.2.3); requires a subtractable aggregate.
    Vnmn,
    /// VNM_D — duplicate paths (§3.2.4); requires duplicate insensitivity.
    Vnmd,
    /// IOB — incremental overlay building (§3.2.5).
    Iob,
}

/// Default stream horizon (time units ≈ events) used to estimate the fill
/// of landmark windows when the caller does not provide one (see
/// [`SystemBuilder::stream_horizon`]).
const DEFAULT_STREAM_HORIZON: f64 = 10_000.0;

/// Builder for an [`EagrSystem`].
pub struct SystemBuilder<A: Aggregate> {
    query: EgoQuery<A>,
    overlay_algorithm: OverlayAlgorithm,
    decision_algorithm: DecisionAlgorithm,
    execution: ExecutionMode,
    rates: Option<Rates>,
    cost: Option<CostModel>,
    split: bool,
    writer_window: Option<usize>,
    stream_horizon: f64,
    rebalance: RebalancePolicy,
}

impl<A: Aggregate + Clone> SystemBuilder<A> {
    /// Start building a system for a query.
    pub fn new(query: EgoQuery<A>) -> Self {
        Self {
            query,
            overlay_algorithm: OverlayAlgorithm::Vnma,
            decision_algorithm: DecisionAlgorithm::MaxFlow,
            execution: ExecutionMode::SingleThreaded,
            rates: None,
            cost: None,
            split: true,
            writer_window: None,
            stream_horizon: DEFAULT_STREAM_HORIZON,
            rebalance: RebalancePolicy::default(),
        }
    }

    /// Choose the execution mode (default single-threaded).
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Choose the overlay construction algorithm (default VNM_A).
    pub fn overlay(mut self, alg: OverlayAlgorithm) -> Self {
        self.overlay_algorithm = alg;
        self
    }

    /// Choose the dataflow decision procedure (default max-flow).
    pub fn decisions(mut self, alg: DecisionAlgorithm) -> Self {
        self.decision_algorithm = alg;
        self
    }

    /// Provide expected read/write rates (default: uniform 1:1).
    pub fn rates(mut self, rates: Rates) -> Self {
        self.rates = Some(rates);
        self
    }

    /// Provide a cost model (default: derived from the aggregate's declared
    /// `H`/`L`).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Enable/disable §4.7 node splitting (default on).
    pub fn split(mut self, on: bool) -> Self {
        self.split = on;
        self
    }

    /// Live shard-rebalancing policy for [`ExecutionMode::Sharded`]
    /// (default: manual-only — [`EagrSystem::rebalance`] works, nothing
    /// fires automatically). Ignored by the local modes.
    pub fn rebalance(mut self, policy: RebalancePolicy) -> Self {
        self.rebalance = policy;
        self
    }

    /// Expected in-window values per writer, for the cost model (§4.2).
    /// When not set it is derived from the query's window spec via
    /// [`eagr_agg::WindowSpec::expected_size`]: tuple windows hold `c`
    /// values, time and landmark windows are estimated from the mean write
    /// rate (and, for landmark windows, the
    /// [`stream_horizon`](Self::stream_horizon)), so a running aggregate's
    /// pull cost reflects the whole history it would re-scan.
    pub fn writer_window(mut self, w: usize) -> Self {
        self.writer_window = Some(w);
        self
    }

    /// Expected stream length in time units, used to estimate the window
    /// fill of landmark ([`eagr_agg::WindowSpec::Unbounded`]) queries when
    /// [`writer_window`](Self::writer_window) is not set explicitly
    /// (default: 10 000).
    pub fn stream_horizon(mut self, horizon: f64) -> Self {
        self.stream_horizon = horizon;
        self
    }

    /// Compile the system against a data graph.
    pub fn build(self, graph: &DataGraph) -> EagrSystem<A>
    where
        A::Output: Send,
    {
        let props = self.query.aggregate.props();
        let pred = Arc::clone(&self.query.predicate);
        let ag = BipartiteGraph::build(graph, &self.query.neighborhood, move |v| pred(v));

        let (overlay, construction) = match &self.overlay_algorithm {
            OverlayAlgorithm::Direct => (Overlay::direct_from_bipartite(&ag), Vec::new()),
            OverlayAlgorithm::Vnm { chunk_size } => {
                build_vnm(&ag, &VnmConfig::vnm(*chunk_size, props))
            }
            OverlayAlgorithm::Vnma => build_vnm(&ag, &VnmConfig::vnma(props)),
            OverlayAlgorithm::Vnmn => build_vnm(&ag, &VnmConfig::vnmn(props)),
            OverlayAlgorithm::Vnmd => build_vnm(&ag, &VnmConfig::vnmd(props)),
            OverlayAlgorithm::Iob => build_iob(&ag, &IobConfig::default()),
        };

        let rates = self
            .rates
            .unwrap_or_else(|| Rates::uniform(graph.id_bound(), 1.0));
        let cost = self
            .cost
            .unwrap_or_else(|| CostModel::from_aggregate(&self.query.aggregate));
        // Window fill for the §4.2 cost model: explicit hint, or estimated
        // from the window spec and the mean write rate. Landmark windows
        // fill with the writer's whole history (rate × stream horizon) —
        // pricing them as one value made pull plans look absurdly cheap
        // for running aggregates.
        let writer_window = self.writer_window.unwrap_or_else(|| {
            let positive: Vec<f64> = rates.write.iter().copied().filter(|&w| w > 0.0).collect();
            let mean_rate = if positive.is_empty() {
                1.0
            } else {
                positive.iter().sum::<f64>() / positive.len() as f64
            };
            let interval = if mean_rate > 0.0 {
                1.0 / mean_rate
            } else {
                1.0
            };
            self.query
                .window
                .expected_size(interval, self.stream_horizon)
                .round()
                .max(1.0) as usize
        });
        // Continuous queries must keep every result up to date: all push.
        let algorithm = match self.query.mode {
            QueryMode::Continuous => DecisionAlgorithm::AllPush,
            QueryMode::QuasiContinuous => self.decision_algorithm,
        };
        let mut p = plan(
            overlay,
            &rates,
            &cost,
            &PlannerConfig {
                algorithm,
                split: self.split,
                writer_window,
                push_amplification: 2.0,
            },
        );
        let runtime = match self.execution {
            ExecutionMode::SingleThreaded => {
                let core = EngineCore::new(
                    self.query.aggregate.clone(),
                    Arc::new(p.overlay.clone()),
                    &p.decisions,
                    self.query.window,
                );
                Runtime::Local(Arc::new(core))
            }
            ExecutionMode::TwoPool(cfg) => {
                let core = Arc::new(EngineCore::new(
                    self.query.aggregate.clone(),
                    Arc::new(p.overlay.clone()),
                    &p.decisions,
                    self.query.window,
                ));
                let engine = ParallelEngine::new(Arc::clone(&core), cfg);
                Runtime::TwoPool { core, engine }
            }
            ExecutionMode::Sharded { shards } => {
                let cfg = ShardedConfig {
                    rebalance: self.rebalance,
                    ..ShardedConfig::with_shards(shards.max(1))
                };
                // The plan carries the partition so planner and engine
                // agree on shard ownership; the planner scores hash, chunk,
                // and edge-cut candidates by modeled cross-shard delta
                // volume and keeps the cheapest.
                p = p.with_auto_partition(cfg.shards);
                let engine = ShardedEngine::from_plan(
                    &p,
                    self.query.aggregate.clone(),
                    self.query.window,
                    &cfg,
                );
                Runtime::Sharded(engine)
            }
        };
        EagrSystem {
            runtime,
            plan: p,
            bipartite: ag,
            construction,
            cost,
            writer_window,
            clock: AtomicU64::new(0),
        }
    }
}

/// The engine a compiled system dispatches to, per [`ExecutionMode`].
enum Runtime<A: Aggregate> {
    /// Synchronous execution on the shared core.
    Local(Arc<EngineCore<A>>),
    /// Shared core + resident two-pool engine for batch ingestion.
    TwoPool {
        core: Arc<EngineCore<A>>,
        engine: ParallelEngine<A>,
    },
    /// Shard-owned runtime (PAOs live in shard slabs inside the engine).
    Sharded(ShardedEngine<A>),
}

/// A compiled, runnable EAGr instance.
pub struct EagrSystem<A: Aggregate> {
    runtime: Runtime<A>,
    plan: Plan,
    bipartite: BipartiteGraph,
    construction: Vec<IterationStats>,
    cost: CostModel,
    writer_window: usize,
    /// Timestamp source for [`EagrSystem::ingest`]: events are stamped
    /// with consecutive stream positions across calls.
    clock: AtomicU64,
}

/// Structural summary of a compiled system.
#[derive(Clone, Debug)]
pub struct SystemStats {
    /// Bipartite edges (|E'| of AG).
    pub bipartite_edges: usize,
    /// Overlay edges (|E''|) after any §4.7 splitting.
    pub overlay_edges: usize,
    /// Sharing index (§3.1), measured on the overlay as constructed
    /// (before §4.7 splitting, which deliberately adds edges).
    pub sharing_index: f64,
    /// Partial aggregation nodes.
    pub partial_nodes: usize,
    /// Push-annotated overlay nodes.
    pub push_nodes: usize,
    /// §4.7 splits applied.
    pub splits: usize,
    /// Mean reader depth (Fig 11a).
    pub average_depth: f64,
    /// Modeled total cost of the installed decisions.
    pub modeled_cost: f64,
}

impl<A: Aggregate> EagrSystem<A> {
    /// Start building a system for a query.
    pub fn builder(query: EgoQuery<A>) -> SystemBuilder<A>
    where
        A: Clone,
    {
        SystemBuilder::new(query)
    }

    /// Apply a content update (a *write* on `v`).
    ///
    /// Synchronous in the local modes; in [`ExecutionMode::Sharded`] the
    /// write is routed to its owning shard and drained (one single-event
    /// epoch) — use [`ingest`](Self::ingest) / [`write_batch`](Self::write_batch)
    /// for throughput. Returns PAO updates performed where known (0 in
    /// sharded mode).
    pub fn write(&self, v: NodeId, value: i64, ts: u64) -> usize {
        // Keep the ingest clock ahead of explicitly timestamped point
        // writes (same guard as `apply_batch`): a later `ingest` must
        // never re-issue `ts` or stamp events before it.
        self.clock.fetch_max(ts + 1, Ordering::Relaxed);
        match &self.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.write(v, value, ts),
            Runtime::Sharded(eng) => {
                eng.submit_write(v, value, ts);
                eng.drain();
                0
            }
        }
    }

    /// Evaluate the query at `v` (a *read* on `v`).
    ///
    /// Synchronous on the shared core in the local modes. In
    /// [`ExecutionMode::Sharded`] the read is routed to the shard worker
    /// owning its reader and evaluated there, epoch-consistently
    /// ([`ShardedEngine::read_service`]) — the caller thread never
    /// evaluates shard-owned PAO state. That consistency is not free: each
    /// call pins the epoch gate and drains in-flight work, briefly
    /// pausing concurrent ingestion. Use [`read_batch`](Self::read_batch)
    /// to amortize that cost over many reads, or
    /// [`read_relaxed`](Self::read_relaxed) for cheap polling that
    /// tolerates mid-epoch state.
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        match &self.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.read(v),
            Runtime::Sharded(eng) => eng.read_service(v),
        }
    }

    /// Evaluate the query at `v` without consistency guarantees: identical
    /// to [`read`](Self::read) in the local modes, but in
    /// [`ExecutionMode::Sharded`] it evaluates on the calling thread
    /// through the slab read locks ([`ShardedEngine::read`]) — no epoch
    /// gate, no drain, no pause of concurrent ingestion. Between epochs it
    /// may observe partially propagated writes (the relaxed consistency
    /// the paper accepts); after a drain it equals [`read`](Self::read).
    /// The right choice for hot polling loops and monitoring probes.
    pub fn read_relaxed(&self, v: NodeId) -> Option<A::Output> {
        match &self.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.read(v),
            Runtime::Sharded(eng) => eng.read(v),
        }
    }

    /// Evaluate a batch of reads; result `i` answers the query at
    /// `nodes[i]` (`None` when the node has no reader).
    ///
    /// Mode-aware routing: the local modes evaluate synchronously on the
    /// shared core; [`ExecutionMode::Sharded`] fans the batch out to the
    /// shard workers owning each reader ([`ShardedEngine::read_batch`]),
    /// where push finalizes and the local part of pull trees run against
    /// the worker's own slab — epoch-consistent even under concurrent
    /// ingestion.
    pub fn read_batch(&self, nodes: &[NodeId]) -> Vec<Option<A::Output>> {
        match &self.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => {
                nodes.iter().map(|&v| core.read(v)).collect()
            }
            Runtime::Sharded(eng) => eng.read_batch(nodes),
        }
    }

    /// Expire time-window values. Returns PAO updates performed.
    ///
    /// In [`ExecutionMode::Sharded`] the sweep is routed through the shard
    /// inboxes — each owning worker expires its own writers' windows — and
    /// drained as one epoch, so it is safe to call concurrently with
    /// ingestion (the caller thread never mutates shard-owned state). The
    /// returned count then covers everything applied while the sweep
    /// drained, including concurrently ingested writes.
    pub fn advance_time(&self, ts: u64) -> usize {
        match &self.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.advance_time(ts),
            Runtime::Sharded(eng) => eng.advance_time_epoch(ts) as usize,
        }
    }

    /// Apply one timestamped batch through the mode's batch path and wait
    /// for it to be fully applied; returns `(writes, reads)` executed.
    ///
    /// * single-threaded — synchronous replay;
    /// * two-pool — writes become queued micro-tasks, fire-and-forget
    ///   reads go to the read pool, then the pools are drained;
    /// * sharded — one ingestion epoch ([`ShardedEngine::ingest_epoch`]).
    pub fn write_batch(&self, batch: &EventBatch) -> (usize, usize)
    where
        A::Output: Send,
    {
        self.apply_batch(&batch.events, batch.base_ts)
    }

    /// Ingest a run of events through the mode's batch path, stamping them
    /// with consecutive stream positions (continuing across calls);
    /// returns `(writes, reads)` executed. Equivalent to
    /// [`write_batch`](Self::write_batch) with an automatic base
    /// timestamp.
    pub fn ingest(&self, events: &[Event]) -> (usize, usize)
    where
        A::Output: Send,
    {
        let base_ts = self.clock.fetch_add(events.len() as u64, Ordering::Relaxed);
        self.apply_batch(events, base_ts)
    }

    /// The shared borrowing batch path behind [`write_batch`](Self::write_batch)
    /// and [`ingest`](Self::ingest); event `i` carries `base_ts + i`.
    fn apply_batch(&self, events: &[Event], base_ts: u64) -> (usize, usize)
    where
        A::Output: Send,
    {
        // Keep the ingest clock ahead of explicitly timestamped batches so
        // mixed use of write_batch and ingest stays monotonic.
        self.clock
            .fetch_max(base_ts + events.len() as u64, Ordering::Relaxed);
        match &self.runtime {
            Runtime::Local(core) => {
                let mut writes = 0;
                let mut reads = 0;
                for (i, e) in events.iter().enumerate() {
                    match *e {
                        Event::Write { node, value } => {
                            core.write(node, value, base_ts + i as u64);
                            writes += 1;
                        }
                        Event::Read { node } => {
                            std::hint::black_box(core.read(node));
                            reads += 1;
                        }
                    }
                }
                (writes, reads)
            }
            Runtime::TwoPool { engine, .. } => {
                let mut writes = 0;
                let mut reads = 0;
                for (i, e) in events.iter().enumerate() {
                    match *e {
                        Event::Write { node, value } => {
                            engine.submit_write(node, value, base_ts + i as u64);
                            writes += 1;
                        }
                        Event::Read { node } => {
                            engine.submit_read(node);
                            reads += 1;
                        }
                    }
                }
                engine.drain();
                (writes, reads)
            }
            Runtime::Sharded(eng) => eng.ingest_epoch_at(events, base_ts),
        }
    }

    /// Apply a generated event stream; returns (writes, reads) executed.
    pub fn run_events(&self, events: &[Event]) -> (usize, usize)
    where
        A::Output: Send,
    {
        self.ingest(events)
    }

    /// Current stream position of the [`ingest`](Self::ingest) clock: the
    /// timestamp the next auto-stamped event will receive.
    pub fn stream_position(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// The shared engine core (for parallel or adaptive execution).
    ///
    /// # Panics
    /// Panics in [`ExecutionMode::Sharded`], where PAO state lives in
    /// shard slabs — use [`sharded_engine`](Self::sharded_engine) instead.
    pub fn core(&self) -> &Arc<EngineCore<A>> {
        match &self.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core,
            Runtime::Sharded(_) => {
                panic!("core() requires a local execution mode; use sharded_engine()")
            }
        }
    }

    /// The resident sharded engine, when built with
    /// [`ExecutionMode::Sharded`].
    pub fn sharded_engine(&self) -> Option<&ShardedEngine<A>> {
        match &self.runtime {
            Runtime::Sharded(eng) => Some(eng),
            _ => None,
        }
    }

    /// Manually trigger one live shard rebalance
    /// ([`ShardedEngine::rebalance`]): refine the node→shard map from
    /// observed load and migrate the affected PAO state, epoch-fenced
    /// against concurrent ingestion and reads. `None` in the local modes
    /// (there is nothing to rebalance).
    pub fn rebalance(&self) -> Option<RebalanceOutcome> {
        self.sharded_engine().map(|eng| eng.rebalance())
    }

    /// Spawn a multi-threaded engine over this system's state (local
    /// modes only; see [`core`](Self::core)).
    pub fn parallel(&self, cfg: ParallelConfig) -> ParallelEngine<A>
    where
        A::Output: Send,
    {
        ParallelEngine::new(Arc::clone(self.core()), cfg)
    }

    /// Wrap the engine with §4.8 runtime adaptation (local modes only; see
    /// [`core`](Self::core)).
    pub fn adaptive(&self, check_every: u64) -> AdaptiveEngine<A> {
        AdaptiveEngine::new(
            Arc::clone(self.core()),
            self.cost,
            self.writer_window,
            check_every,
        )
    }

    /// The compiled overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.plan.overlay
    }

    /// The dataflow plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bipartite writer/reader graph the overlay was compiled from.
    pub fn bipartite(&self) -> &BipartiteGraph {
        &self.bipartite
    }

    /// Per-iteration construction statistics (empty for `Direct`).
    pub fn construction_stats(&self) -> &[IterationStats] {
        &self.construction
    }

    /// Structural summary.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            bipartite_edges: self.bipartite.edge_count(),
            overlay_edges: self.plan.overlay.edge_count(),
            sharing_index: self.plan.pre_split_sharing_index,
            partial_nodes: self.plan.overlay.partial_count(),
            push_nodes: self.plan.decisions.push_count(),
            splits: self.plan.splits,
            average_depth: metrics::average_depth(&self.plan.overlay),
            modeled_cost: self.plan.modeled_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NaiveOracle;
    use crate::query::EgoQuery;
    use eagr_agg::{Max, Sum, TopK, WindowSpec};
    use eagr_gen::{generate_events, social_graph, WorkloadConfig};
    use eagr_graph::Neighborhood;

    #[test]
    fn end_to_end_sum_matches_oracle() {
        let g = social_graph(200, 4, 9);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .build(&g);
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        let events = generate_events(
            200,
            &WorkloadConfig {
                events: 5000,
                ..Default::default()
            },
        );
        for (ts, e) in events.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            }
        }
        for v in 0..200u32 {
            let got = sys.read(NodeId(v));
            let want = oracle.read(&g, NodeId(v));
            if let Some(got) = got {
                assert_eq!(got, want, "node {v}");
            }
        }
    }

    #[test]
    fn continuous_mode_forces_push() {
        let g = social_graph(100, 3, 1);
        let sys = EagrSystem::builder(EgoQuery::new(Sum).mode(QueryMode::Continuous)).build(&g);
        // Every overlay node must be push.
        let st = sys.stats();
        assert_eq!(st.push_nodes, sys.overlay().node_count());
    }

    #[test]
    fn duplicate_insensitive_aggregate_uses_vnmd() {
        let g = social_graph(150, 4, 2);
        let sys = EagrSystem::builder(EgoQuery::new(Max))
            .overlay(OverlayAlgorithm::Vnmd)
            .build(&g);
        assert!(sys.stats().sharing_index >= 0.0);
        sys.write(NodeId(0), 5, 0);
        let _ = sys.read(NodeId(1));
    }

    #[test]
    fn stats_are_consistent() {
        let g = social_graph(150, 4, 3);
        let sys = EagrSystem::builder(EgoQuery::new(TopK::new(5)))
            .overlay(OverlayAlgorithm::Vnmn)
            .build(&g);
        let st = sys.stats();
        assert_eq!(st.bipartite_edges, sys.bipartite().edge_count());
        assert!(st.sharing_index <= 1.0);
        assert!(st.push_nodes <= sys.overlay().node_count());
        assert!(st.average_depth >= 1.0);
    }

    #[test]
    fn sharded_mode_matches_oracle_after_epochs() {
        let g = social_graph(150, 4, 11);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .execution(ExecutionMode::Sharded { shards: 4 })
            .build(&g);
        assert!(sys.sharded_engine().is_some());
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        let events = generate_events(
            150,
            &WorkloadConfig {
                events: 4000,
                write_to_read: 1e9,
                seed: 12,
                ..Default::default()
            },
        );
        let mut ts = 0u64;
        for batch in eagr_gen::batch_events(&events, 512, 0) {
            sys.write_batch(&batch);
            for (e, _) in batch.iter_timed() {
                if let Event::Write { node, value } = *e {
                    oracle.write(node, value, ts);
                }
                ts += 1;
            }
        }
        for v in 0..150u32 {
            if let Some(got) = sys.read(NodeId(v)) {
                assert_eq!(got, oracle.read(&g, NodeId(v)), "node {v}");
            }
        }
    }

    #[test]
    fn read_batch_agrees_across_modes() {
        let g = social_graph(120, 4, 41);
        let events = generate_events(
            120,
            &WorkloadConfig {
                events: 3000,
                write_to_read: 1e9,
                seed: 42,
                ..Default::default()
            },
        );
        let nodes: Vec<NodeId> = (0..120u32).map(NodeId).collect();
        let modes = [
            ExecutionMode::SingleThreaded,
            ExecutionMode::TwoPool(ParallelConfig {
                write_threads: 2,
                read_threads: 1,
            }),
            ExecutionMode::Sharded { shards: 4 },
        ];
        let mut answers = Vec::new();
        for mode in modes {
            let sys = EagrSystem::builder(EgoQuery::new(Sum))
                .execution(mode)
                .build(&g);
            sys.ingest(&events);
            let batch = sys.read_batch(&nodes);
            // Point reads and batch reads agree within a mode.
            for (i, &v) in nodes.iter().enumerate() {
                assert_eq!(batch[i], sys.read(v), "node {v:?}");
            }
            answers.push(batch);
        }
        assert_eq!(answers[0], answers[1], "two-pool diverged from single");
        assert_eq!(answers[0], answers[2], "sharded diverged from single");
    }

    #[test]
    fn relaxed_reads_agree_after_drain() {
        let g = social_graph(80, 4, 45);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::Sharded { shards: 3 })
            .build(&g);
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 1500,
                write_to_read: 1e9,
                seed: 46,
                ..Default::default()
            },
        );
        sys.ingest(&events); // full epoch: everything drained
        for v in 0..80u32 {
            // With no in-flight writes the relaxed caller-thread path and
            // the epoch-consistent shard-executed path must agree.
            assert_eq!(sys.read_relaxed(NodeId(v)), sys.read(NodeId(v)), "{v}");
        }
    }

    #[test]
    fn landmark_window_defaults_to_push_heavy_plans() {
        // Regression for the Unbounded cost-model bug at the facade level:
        // the builder derives the writer window from the query's window
        // spec, so a landmark-window plan prices pulls at whole-history
        // scans and flips push-heavy even on write-heavy rates.
        let g = social_graph(120, 4, 43);
        let write_heavy = Rates::uniform(120, 5.0);
        let tuple = EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Tuple(1)))
            .overlay(OverlayAlgorithm::Direct)
            .rates(write_heavy.clone())
            .cost_model(CostModel::unit_sum())
            .split(false)
            .build(&g);
        let landmark = EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Unbounded))
            .overlay(OverlayAlgorithm::Direct)
            .rates(write_heavy)
            .cost_model(CostModel::unit_sum())
            .split(false)
            .build(&g);
        let n = landmark.overlay().node_count();
        assert_eq!(
            landmark.stats().push_nodes,
            n,
            "whole-history pulls must push everything"
        );
        assert!(
            tuple.stats().push_nodes < n,
            "single-value windows on write-heavy rates must leave pull nodes"
        );
    }

    #[test]
    fn two_pool_mode_ingests_batches() {
        let g = social_graph(100, 3, 13);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::TwoPool(ParallelConfig {
                write_threads: 2,
                read_threads: 1,
            }))
            .build(&g);
        let events = generate_events(
            100,
            &WorkloadConfig {
                events: 2000,
                write_to_read: 3.0,
                seed: 14,
                ..Default::default()
            },
        );
        let (w, r) = sys.ingest(&events);
        assert_eq!(w + r, 2000);
        // Point ops remain synchronous on the shared core.
        sys.write(NodeId(0), 5, 1_000_000);
        let _ = sys.read(NodeId(1));
    }

    #[test]
    fn ingest_clock_is_monotonic_across_calls() {
        let g = social_graph(60, 3, 15);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            60,
            &WorkloadConfig {
                events: 100,
                ..Default::default()
            },
        );
        sys.ingest(&events);
        assert_eq!(sys.stream_position(), 100);
        // An explicitly timestamped batch pushes the clock forward…
        sys.write_batch(&eagr_gen::EventBatch::new(500, events.clone()));
        assert_eq!(sys.stream_position(), 600);
        // …so a later ingest never re-issues timestamps 100..200.
        sys.ingest(&events);
        assert_eq!(sys.stream_position(), 700);
    }

    #[test]
    fn point_write_advances_ingest_clock_in_every_mode() {
        let g = social_graph(60, 3, 15);
        let modes = [
            ExecutionMode::SingleThreaded,
            ExecutionMode::TwoPool(ParallelConfig {
                write_threads: 1,
                read_threads: 1,
            }),
            ExecutionMode::Sharded { shards: 2 },
        ];
        for mode in modes {
            let sys = EagrSystem::builder(EgoQuery::new(Sum))
                .execution(mode)
                .build(&g);
            // A point write with a large explicit timestamp must advance
            // the shared stream clock…
            sys.write(NodeId(0), 7, 500);
            assert_eq!(sys.stream_position(), 501, "{mode:?}");
            // …so a later ingest stamps strictly-later timestamps instead
            // of re-issuing 0..100.
            let events = generate_events(
                60,
                &WorkloadConfig {
                    events: 100,
                    ..Default::default()
                },
            );
            sys.ingest(&events);
            assert_eq!(sys.stream_position(), 601, "{mode:?}");
        }
    }

    #[test]
    fn sharded_advance_time_matches_local_expiration() {
        let g = social_graph(80, 4, 31);
        let build = |mode| {
            EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Time(50)))
                .decisions(DecisionAlgorithm::AllPush)
                .execution(mode)
                .build(&g)
        };
        let local = build(ExecutionMode::SingleThreaded);
        let sharded = build(ExecutionMode::Sharded { shards: 3 });
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 2000,
                write_to_read: 1e9,
                seed: 32,
                ..Default::default()
            },
        );
        for batch in eagr_gen::batch_events(&events, 250, 0) {
            local.write_batch(&batch);
            sharded.write_batch(&batch);
        }
        // Expire most of the stream; the sharded sweep runs on the shard
        // workers, the local one on the caller thread — same answers.
        let applied = sharded.advance_time(1900);
        assert!(applied > 0, "expirations must be applied");
        local.advance_time(1900);
        for v in 0..80u32 {
            assert_eq!(
                sharded.read(NodeId(v)),
                local.read(NodeId(v)),
                "node {v} after expiration"
            );
        }
    }

    #[test]
    fn batch_counts_agree_across_modes() {
        // paper_example_graph: node g feeds nobody, so its writes have no
        // overlay writer — they must still count as processed writes in
        // every mode.
        let g = eagr_graph::paper_example_graph();
        let events = generate_events(
            7,
            &WorkloadConfig {
                events: 500,
                write_to_read: 2.0,
                seed: 17,
                ..Default::default()
            },
        );
        let single = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let sharded = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::Sharded { shards: 3 })
            .build(&g);
        assert_eq!(single.ingest(&events), sharded.ingest(&events));
    }

    #[test]
    #[should_panic(expected = "core() requires a local execution mode")]
    fn core_access_panics_in_sharded_mode() {
        let g = social_graph(50, 3, 16);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::Sharded { shards: 2 })
            .build(&g);
        let _ = sys.core();
    }

    #[test]
    fn run_events_counts() {
        let g = social_graph(80, 3, 4);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 1000,
                write_to_read: 1.0,
                ..Default::default()
            },
        );
        let (w, r) = sys.run_events(&events);
        assert_eq!(w + r, 1000);
    }
}
