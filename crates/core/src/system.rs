//! The one-stop EAGr system facade: data graph + query → bipartite graph →
//! overlay → dataflow plan → execution engine.

use crate::query::{EgoQuery, QueryMode};
use eagr_agg::{Aggregate, CostModel};
use eagr_exec::{AdaptiveEngine, EngineCore, ParallelConfig, ParallelEngine};
use eagr_flow::{plan, DecisionAlgorithm, Plan, PlannerConfig, Rates};
use eagr_gen::Event;
use eagr_graph::{BipartiteGraph, DataGraph, NodeId};
use eagr_overlay::{build_iob, build_vnm, metrics, IobConfig, IterationStats, Overlay, VnmConfig};
use std::sync::Arc;

/// Which overlay construction algorithm to run (§3.2 + the direct/baseline
/// structure).
#[derive(Clone, Debug)]
pub enum OverlayAlgorithm {
    /// No sharing: the bipartite graph itself (used by the all-push and
    /// all-pull baselines of §5.1).
    Direct,
    /// Plain VNM with a fixed chunk size.
    Vnm {
        /// Reader-group size.
        chunk_size: usize,
    },
    /// VNM_A — adaptive chunk size (§3.2.2).
    Vnma,
    /// VNM_N — negative edges (§3.2.3); requires a subtractable aggregate.
    Vnmn,
    /// VNM_D — duplicate paths (§3.2.4); requires duplicate insensitivity.
    Vnmd,
    /// IOB — incremental overlay building (§3.2.5).
    Iob,
}

/// Builder for an [`EagrSystem`].
pub struct SystemBuilder<A: Aggregate> {
    query: EgoQuery<A>,
    overlay_algorithm: OverlayAlgorithm,
    decision_algorithm: DecisionAlgorithm,
    rates: Option<Rates>,
    cost: Option<CostModel>,
    split: bool,
    writer_window: usize,
}

impl<A: Aggregate + Clone> SystemBuilder<A> {
    /// Start building a system for a query.
    pub fn new(query: EgoQuery<A>) -> Self {
        Self {
            query,
            overlay_algorithm: OverlayAlgorithm::Vnma,
            decision_algorithm: DecisionAlgorithm::MaxFlow,
            rates: None,
            cost: None,
            split: true,
            writer_window: 1,
        }
    }

    /// Choose the overlay construction algorithm (default VNM_A).
    pub fn overlay(mut self, alg: OverlayAlgorithm) -> Self {
        self.overlay_algorithm = alg;
        self
    }

    /// Choose the dataflow decision procedure (default max-flow).
    pub fn decisions(mut self, alg: DecisionAlgorithm) -> Self {
        self.decision_algorithm = alg;
        self
    }

    /// Provide expected read/write rates (default: uniform 1:1).
    pub fn rates(mut self, rates: Rates) -> Self {
        self.rates = Some(rates);
        self
    }

    /// Provide a cost model (default: derived from the aggregate's declared
    /// `H`/`L`).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Enable/disable §4.7 node splitting (default on).
    pub fn split(mut self, on: bool) -> Self {
        self.split = on;
        self
    }

    /// Expected in-window values per writer, for the cost model (§4.2).
    pub fn writer_window(mut self, w: usize) -> Self {
        self.writer_window = w;
        self
    }

    /// Compile the system against a data graph.
    pub fn build(self, graph: &DataGraph) -> EagrSystem<A> {
        let props = self.query.aggregate.props();
        let pred = Arc::clone(&self.query.predicate);
        let ag = BipartiteGraph::build(graph, &self.query.neighborhood, move |v| pred(v));

        let (overlay, construction) = match &self.overlay_algorithm {
            OverlayAlgorithm::Direct => (Overlay::direct_from_bipartite(&ag), Vec::new()),
            OverlayAlgorithm::Vnm { chunk_size } => {
                build_vnm(&ag, &VnmConfig::vnm(*chunk_size, props))
            }
            OverlayAlgorithm::Vnma => build_vnm(&ag, &VnmConfig::vnma(props)),
            OverlayAlgorithm::Vnmn => build_vnm(&ag, &VnmConfig::vnmn(props)),
            OverlayAlgorithm::Vnmd => build_vnm(&ag, &VnmConfig::vnmd(props)),
            OverlayAlgorithm::Iob => build_iob(&ag, &IobConfig::default()),
        };

        let rates = self
            .rates
            .unwrap_or_else(|| Rates::uniform(graph.id_bound(), 1.0));
        let cost = self
            .cost
            .unwrap_or_else(|| CostModel::from_aggregate(&self.query.aggregate));
        // Continuous queries must keep every result up to date: all push.
        let algorithm = match self.query.mode {
            QueryMode::Continuous => DecisionAlgorithm::AllPush,
            QueryMode::QuasiContinuous => self.decision_algorithm,
        };
        let p = plan(
            overlay,
            &rates,
            &cost,
            &PlannerConfig {
                algorithm,
                split: self.split,
                writer_window: self.writer_window,
                push_amplification: 2.0,
            },
        );
        let core = EngineCore::new(
            self.query.aggregate.clone(),
            Arc::new(p.overlay.clone()),
            &p.decisions,
            self.query.window,
        );
        EagrSystem {
            core: Arc::new(core),
            plan: p,
            bipartite: ag,
            construction,
            cost,
            writer_window: self.writer_window,
        }
    }
}

/// A compiled, runnable EAGr instance.
pub struct EagrSystem<A: Aggregate> {
    core: Arc<EngineCore<A>>,
    plan: Plan,
    bipartite: BipartiteGraph,
    construction: Vec<IterationStats>,
    cost: CostModel,
    writer_window: usize,
}

/// Structural summary of a compiled system.
#[derive(Clone, Debug)]
pub struct SystemStats {
    /// Bipartite edges (|E'| of AG).
    pub bipartite_edges: usize,
    /// Overlay edges (|E''|) after any §4.7 splitting.
    pub overlay_edges: usize,
    /// Sharing index (§3.1), measured on the overlay as constructed
    /// (before §4.7 splitting, which deliberately adds edges).
    pub sharing_index: f64,
    /// Partial aggregation nodes.
    pub partial_nodes: usize,
    /// Push-annotated overlay nodes.
    pub push_nodes: usize,
    /// §4.7 splits applied.
    pub splits: usize,
    /// Mean reader depth (Fig 11a).
    pub average_depth: f64,
    /// Modeled total cost of the installed decisions.
    pub modeled_cost: f64,
}

impl<A: Aggregate> EagrSystem<A> {
    /// Start building a system for a query.
    pub fn builder(query: EgoQuery<A>) -> SystemBuilder<A>
    where
        A: Clone,
    {
        SystemBuilder::new(query)
    }

    /// Apply a content update (a *write* on `v`).
    pub fn write(&self, v: NodeId, value: i64, ts: u64) -> usize {
        self.core.write(v, value, ts)
    }

    /// Evaluate the query at `v` (a *read* on `v`).
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        self.core.read(v)
    }

    /// Expire time-window values.
    pub fn advance_time(&self, ts: u64) -> usize {
        self.core.advance_time(ts)
    }

    /// Apply a generated event stream; returns (writes, reads) executed.
    pub fn run_events(&self, events: &[Event]) -> (usize, usize) {
        let mut writes = 0;
        let mut reads = 0;
        for (ts, e) in events.iter().enumerate() {
            match *e {
                Event::Write { node, value } => {
                    self.write(node, value, ts as u64);
                    writes += 1;
                }
                Event::Read { node } => {
                    std::hint::black_box(self.read(node));
                    reads += 1;
                }
            }
        }
        (writes, reads)
    }

    /// The shared engine core (for parallel or adaptive execution).
    pub fn core(&self) -> &Arc<EngineCore<A>> {
        &self.core
    }

    /// Spawn a multi-threaded engine over this system's state.
    pub fn parallel(&self, cfg: ParallelConfig) -> ParallelEngine<A>
    where
        A::Output: Send,
    {
        ParallelEngine::new(Arc::clone(&self.core), cfg)
    }

    /// Wrap the engine with §4.8 runtime adaptation.
    pub fn adaptive(&self, check_every: u64) -> AdaptiveEngine<A> {
        AdaptiveEngine::new(
            Arc::clone(&self.core),
            self.cost,
            self.writer_window,
            check_every,
        )
    }

    /// The compiled overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.plan.overlay
    }

    /// The dataflow plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bipartite writer/reader graph the overlay was compiled from.
    pub fn bipartite(&self) -> &BipartiteGraph {
        &self.bipartite
    }

    /// Per-iteration construction statistics (empty for `Direct`).
    pub fn construction_stats(&self) -> &[IterationStats] {
        &self.construction
    }

    /// Structural summary.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            bipartite_edges: self.bipartite.edge_count(),
            overlay_edges: self.plan.overlay.edge_count(),
            sharing_index: self.plan.pre_split_sharing_index,
            partial_nodes: self.plan.overlay.partial_count(),
            push_nodes: self.plan.decisions.push_count(),
            splits: self.plan.splits,
            average_depth: metrics::average_depth(&self.plan.overlay),
            modeled_cost: self.plan.modeled_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NaiveOracle;
    use crate::query::EgoQuery;
    use eagr_agg::{Max, Sum, TopK, WindowSpec};
    use eagr_gen::{generate_events, social_graph, WorkloadConfig};
    use eagr_graph::Neighborhood;

    #[test]
    fn end_to_end_sum_matches_oracle() {
        let g = social_graph(200, 4, 9);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .build(&g);
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        let events = generate_events(
            200,
            &WorkloadConfig {
                events: 5000,
                ..Default::default()
            },
        );
        for (ts, e) in events.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            }
        }
        for v in 0..200u32 {
            let got = sys.read(NodeId(v));
            let want = oracle.read(&g, NodeId(v));
            if let Some(got) = got {
                assert_eq!(got, want, "node {v}");
            }
        }
    }

    #[test]
    fn continuous_mode_forces_push() {
        let g = social_graph(100, 3, 1);
        let sys = EagrSystem::builder(EgoQuery::new(Sum).mode(QueryMode::Continuous)).build(&g);
        // Every overlay node must be push.
        let st = sys.stats();
        assert_eq!(st.push_nodes, sys.overlay().node_count());
    }

    #[test]
    fn duplicate_insensitive_aggregate_uses_vnmd() {
        let g = social_graph(150, 4, 2);
        let sys = EagrSystem::builder(EgoQuery::new(Max))
            .overlay(OverlayAlgorithm::Vnmd)
            .build(&g);
        assert!(sys.stats().sharing_index >= 0.0);
        sys.write(NodeId(0), 5, 0);
        let _ = sys.read(NodeId(1));
    }

    #[test]
    fn stats_are_consistent() {
        let g = social_graph(150, 4, 3);
        let sys = EagrSystem::builder(EgoQuery::new(TopK::new(5)))
            .overlay(OverlayAlgorithm::Vnmn)
            .build(&g);
        let st = sys.stats();
        assert_eq!(st.bipartite_edges, sys.bipartite().edge_count());
        assert!(st.sharing_index <= 1.0);
        assert!(st.push_nodes <= sys.overlay().node_count());
        assert!(st.average_depth >= 1.0);
    }

    #[test]
    fn run_events_counts() {
        let g = social_graph(80, 3, 4);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 1000,
                write_to_read: 1.0,
                ..Default::default()
            },
        );
        let (w, r) = sys.run_events(&events);
        assert_eq!(w + r, 1000);
    }
}
