//! The one-stop EAGr system facade: data graph + query → bipartite graph →
//! overlay → dataflow plan → execution engine — plus the multi-query
//! registry: further queries [`attach`](EagrSystem::attach) to the running
//! system, sharing already-materialized overlay state where their plans
//! overlap, and [`detach`](EagrSystem::detach) without tearing down state
//! another query still reads.

use crate::query::{EgoQuery, QueryMode};
use crate::registry::{
    transport_ok, AttachReport, DetachReport, IngestReport, QueryEntry, Registry, RegistryStats,
    Runtime, Stratum, TopoReport, WriteHistory,
};
use eagr_agg::{Aggregate, CostModel, WindowBuffer, WindowSpec};
use eagr_exec::{
    AdaptiveEngine, EngineCore, MigrationReport, ParallelConfig, ParallelEngine, RebalancePolicy,
    ShardedConfig, ShardedEngine, TransportKind,
};
use eagr_flow::{
    extend_decisions, plan, topo_plan_delta, DecisionAlgorithm, Decisions, Plan, PlannerConfig,
    Rates,
};
use eagr_gen::{Event, EventBatch};
use eagr_graph::{BipartiteGraph, DataGraph, NodeId, PartitionStrategy};
use eagr_overlay::{
    build_iob, build_vnm, extend_with_readers, metrics, used_subtree, DynamicConfig,
    DynamicOverlay, IobConfig, IterationStats, Overlay, OverlayId, OverlayKind, RefCounts,
    VnmConfig,
};
use eagr_util::FastSet;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a compiled system executes its workload.
#[derive(Clone, Copy, Debug)]
pub enum ExecutionMode {
    /// The §2.2.2 uni-thread baseline: every operation runs synchronously
    /// on the calling thread.
    SingleThreaded,
    /// The paper's two-pool model: batch ingestion fans writes out as
    /// PAO-granularity micro-tasks over a shared queue (point `write`s and
    /// `read`s stay synchronous on the shared core).
    TwoPool(ParallelConfig),
    /// The shard-owned runtime: overlay nodes are partitioned across
    /// worker-owned shards, writes are ingested in batches, cross-shard
    /// propagation travels as batched deltas drained in epochs, and reads
    /// are shard-executed — routed through the shard inboxes so the owning
    /// worker evaluates them epoch-consistently (the caller thread never
    /// evaluates shard-owned PAO state). The node→shard map is live: set a
    /// [`RebalancePolicy`] ([`SystemBuilder::rebalance`]) to let the
    /// engine periodically re-partition itself from observed load, or call
    /// [`EagrSystem::rebalance`] manually.
    Sharded {
        /// Number of shards (owning worker threads).
        shards: usize,
    },
}

/// Which overlay construction algorithm to run (§3.2 + the direct/baseline
/// structure).
#[derive(Clone, Debug)]
pub enum OverlayAlgorithm {
    /// No sharing: the bipartite graph itself (used by the all-push and
    /// all-pull baselines of §5.1).
    Direct,
    /// Plain VNM with a fixed chunk size.
    Vnm {
        /// Reader-group size.
        chunk_size: usize,
    },
    /// VNM_A — adaptive chunk size (§3.2.2).
    Vnma,
    /// VNM_N — negative edges (§3.2.3); requires a subtractable aggregate.
    Vnmn,
    /// VNM_D — duplicate paths (§3.2.4); requires duplicate insensitivity.
    Vnmd,
    /// IOB — incremental overlay building (§3.2.5).
    Iob,
}

/// Default stream horizon (time units ≈ events) used to estimate the fill
/// of landmark windows when the caller does not provide one (see
/// [`SystemBuilder::stream_horizon`]).
const DEFAULT_STREAM_HORIZON: f64 = 10_000.0;

/// Default per-node write-history ring capacity (see
/// [`SystemBuilder::history`]): enough to exactly backfill the common
/// tuple windows at attach time without holding the whole stream.
const DEFAULT_HISTORY_CAP: usize = 64;

/// Everything about a build that is *not* the query itself — kept on the
/// system so [`EagrSystem::attach`] compiles new strata and rebuilds
/// runtimes with the same knobs the primary build used.
#[derive(Clone, Debug)]
pub(crate) struct BuildConfig {
    pub(crate) overlay_algorithm: OverlayAlgorithm,
    pub(crate) decision_algorithm: DecisionAlgorithm,
    pub(crate) execution: ExecutionMode,
    pub(crate) rates: Option<Rates>,
    pub(crate) cost: Option<CostModel>,
    pub(crate) split: bool,
    pub(crate) writer_window: Option<usize>,
    pub(crate) stream_horizon: f64,
    pub(crate) rebalance: RebalancePolicy,
    pub(crate) history: usize,
    pub(crate) transport: TransportKind,
}

/// Builder for an [`EagrSystem`].
pub struct SystemBuilder<A: Aggregate> {
    query: EgoQuery<A>,
    config: BuildConfig,
}

impl<A: Aggregate> std::fmt::Debug for SystemBuilder<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("query", &self.query)
            .field("config", &self.config)
            .finish()
    }
}

impl<A: Aggregate + Clone> SystemBuilder<A> {
    /// Start building a system for a query.
    pub fn new(query: EgoQuery<A>) -> Self {
        Self {
            query,
            config: BuildConfig {
                overlay_algorithm: OverlayAlgorithm::Vnma,
                decision_algorithm: DecisionAlgorithm::MaxFlow,
                execution: ExecutionMode::SingleThreaded,
                rates: None,
                cost: None,
                split: true,
                writer_window: None,
                stream_horizon: DEFAULT_STREAM_HORIZON,
                rebalance: RebalancePolicy::default(),
                history: DEFAULT_HISTORY_CAP,
                transport: TransportKind::default(),
            },
        }
    }

    /// Choose the execution mode (default single-threaded).
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.config.execution = mode;
        self
    }

    /// Choose the overlay construction algorithm (default VNM_A).
    pub fn overlay(mut self, alg: OverlayAlgorithm) -> Self {
        self.config.overlay_algorithm = alg;
        self
    }

    /// Choose the dataflow decision procedure (default max-flow).
    pub fn decisions(mut self, alg: DecisionAlgorithm) -> Self {
        self.config.decision_algorithm = alg;
        self
    }

    /// Provide expected read/write rates (default: uniform 1:1).
    pub fn rates(mut self, rates: Rates) -> Self {
        self.config.rates = Some(rates);
        self
    }

    /// Provide a cost model (default: derived from the aggregate's declared
    /// `H`/`L`).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.config.cost = Some(cost);
        self
    }

    /// Enable/disable §4.7 node splitting (default on).
    pub fn split(mut self, on: bool) -> Self {
        self.config.split = on;
        self
    }

    /// Live shard-rebalancing policy for [`ExecutionMode::Sharded`]
    /// (default: manual-only — [`EagrSystem::rebalance`] works, nothing
    /// fires automatically). Ignored by the local modes.
    pub fn rebalance(mut self, policy: RebalancePolicy) -> Self {
        self.config.rebalance = policy;
        self
    }

    /// Shard transport for [`ExecutionMode::Sharded`] (default
    /// in-process worker threads). [`TransportKind::Process`] launches one
    /// `eagr-shard-host` OS process per shard and requires the query's
    /// aggregate to provide [`eagr_agg::Aggregate::wire_hooks`]; building
    /// the system panics (with the transport's launch error) when the host
    /// binary cannot be found or an aggregate cannot cross the wire.
    /// Ignored by the local modes.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Expected in-window values per writer, for the cost model (§4.2).
    /// When not set it is derived from the query's window spec via
    /// [`eagr_agg::WindowSpec::expected_size`]: tuple windows hold `c`
    /// values, time and landmark windows are estimated from the mean write
    /// rate (and, for landmark windows, the
    /// [`stream_horizon`](Self::stream_horizon)), so a running aggregate's
    /// pull cost reflects the whole history it would re-scan.
    pub fn writer_window(mut self, w: usize) -> Self {
        self.config.writer_window = Some(w);
        self
    }

    /// Expected stream length in time units, used to estimate the window
    /// fill of landmark ([`eagr_agg::WindowSpec::Unbounded`]) queries when
    /// [`writer_window`](Self::writer_window) is not set explicitly
    /// (default: 10 000).
    pub fn stream_horizon(mut self, horizon: f64) -> Self {
        self.config.stream_horizon = horizon;
        self
    }

    /// Per-node write-history ring capacity (default 64; `0` disables).
    /// [`EagrSystem::attach`] replays this history into the window buffers
    /// of writers the new query introduces mid-stream; a deeper ring makes
    /// more attaches *exact* ([`crate::AttachReport::backfilled_writers`])
    /// at the cost of `O(cap)` memory per written node.
    pub fn history(mut self, cap: usize) -> Self {
        self.config.history = cap;
        self
    }

    /// Compile the system against a data graph.
    pub fn build(self, graph: &DataGraph) -> EagrSystem<A>
    where
        A::Output: Send,
    {
        let SystemBuilder { query, config } = self;
        let Compiled {
            mut stratum,
            plan,
            bipartite,
            construction,
            cost,
            writer_window,
        } = compile_stratum(&config, &query, graph);

        // Register the primary query (handle id 0) with the registry so
        // the multi-query machinery — refcounts, handle-scoped reads,
        // detach — treats it exactly like any attached query.
        let mut readers: Vec<NodeId> = stratum.overlay.readers().map(|(_, v)| v).collect();
        readers.sort_unstable();
        let roots: Vec<OverlayId> = stratum.overlay.readers().map(|(id, _)| id).collect();
        let used = used_subtree(&stratum.overlay, &roots);
        stratum.refs.ensure_len(stratum.overlay.node_count());
        stratum.refs.acquire(&used);
        stratum.queries = 1;
        let report = AttachReport {
            shared_stratum: false,
            fresh_paos: stratum.overlay.live_node_count(),
            ..Default::default()
        };

        let mut registry = Registry::new();
        registry.strata.push(Some(stratum));
        registry.queries.insert(
            0,
            QueryEntry {
                stratum: 0,
                readers,
                used,
                report,
            },
        );

        EagrSystem {
            inner: Arc::new(SystemInner {
                registry: RwLock::named(registry, "registry"),
                graph: RwLock::named(graph.clone(), "graph"),
                history: Mutex::named(WriteHistory::new(config.history), "history"),
                clock: AtomicU64::new(0),
                next_query: AtomicU64::new(1),
                config,
            }),
            plan,
            bipartite,
            construction,
            cost,
            writer_window,
        }
    }
}

/// A cold stratum compilation: the full paper pipeline (bipartite graph →
/// overlay → plan → engine) plus the planner by-products the facade keeps
/// as construction-time snapshots.
struct Compiled<A: Aggregate> {
    stratum: Stratum<A>,
    plan: Plan,
    bipartite: BipartiteGraph,
    construction: Vec<IterationStats>,
    cost: CostModel,
    writer_window: usize,
}

fn compile_stratum<A: Aggregate + Clone>(
    cfg: &BuildConfig,
    query: &EgoQuery<A>,
    graph: &DataGraph,
) -> Compiled<A>
where
    A::Output: Send,
{
    let props = query.aggregate.props();
    let pred = Arc::clone(&query.predicate);
    let ag = BipartiteGraph::build(graph, &query.neighborhood, move |v| pred(v));

    let (overlay, construction) = match &cfg.overlay_algorithm {
        OverlayAlgorithm::Direct => (Overlay::direct_from_bipartite(&ag), Vec::new()),
        OverlayAlgorithm::Vnm { chunk_size } => build_vnm(&ag, &VnmConfig::vnm(*chunk_size, props)),
        OverlayAlgorithm::Vnma => build_vnm(&ag, &VnmConfig::vnma(props)),
        OverlayAlgorithm::Vnmn => build_vnm(&ag, &VnmConfig::vnmn(props)),
        OverlayAlgorithm::Vnmd => build_vnm(&ag, &VnmConfig::vnmd(props)),
        OverlayAlgorithm::Iob => build_iob(&ag, &IobConfig::default()),
    };

    let rates = cfg
        .rates
        .clone()
        .unwrap_or_else(|| Rates::uniform(graph.id_bound(), 1.0));
    let cost = cfg
        .cost
        .unwrap_or_else(|| CostModel::from_aggregate(&query.aggregate));
    // Window fill for the §4.2 cost model: explicit hint, or estimated
    // from the window spec and the mean write rate. Landmark windows
    // fill with the writer's whole history (rate × stream horizon) —
    // pricing them as one value made pull plans look absurdly cheap
    // for running aggregates.
    let writer_window = cfg.writer_window.unwrap_or_else(|| {
        let positive: Vec<f64> = rates.write.iter().copied().filter(|&w| w > 0.0).collect();
        let mean_rate = if positive.is_empty() {
            1.0
        } else {
            positive.iter().sum::<f64>() / positive.len() as f64
        };
        let interval = if mean_rate > 0.0 {
            1.0 / mean_rate
        } else {
            1.0
        };
        query
            .window
            .expected_size(interval, cfg.stream_horizon)
            .round()
            .max(1.0) as usize
    });
    // Continuous queries must keep every result up to date: all push.
    let algorithm = match query.mode {
        QueryMode::Continuous => DecisionAlgorithm::AllPush,
        QueryMode::QuasiContinuous => cfg.decision_algorithm,
    };
    let mut p = plan(
        overlay,
        &rates,
        &cost,
        &PlannerConfig {
            algorithm,
            split: cfg.split,
            writer_window,
            push_amplification: 2.0,
        },
    );
    let runtime = match cfg.execution {
        ExecutionMode::SingleThreaded => {
            let core = EngineCore::new(
                query.aggregate.clone(),
                Arc::new(p.overlay.clone()),
                &p.decisions,
                query.window,
            );
            Runtime::Local(Arc::new(core))
        }
        ExecutionMode::TwoPool(tp) => {
            let core = Arc::new(EngineCore::new(
                query.aggregate.clone(),
                Arc::new(p.overlay.clone()),
                &p.decisions,
                query.window,
            ));
            let engine = ParallelEngine::new(Arc::clone(&core), tp);
            Runtime::TwoPool { core, engine }
        }
        ExecutionMode::Sharded { shards } => {
            let scfg = ShardedConfig::builder()
                .shards(shards.max(1))
                .rebalance(cfg.rebalance)
                .transport(cfg.transport)
                .build();
            // The plan carries the partition so planner and engine
            // agree on shard ownership; the planner scores hash, chunk,
            // and edge-cut candidates by modeled cross-shard delta
            // volume and keeps the cheapest.
            p = p.with_auto_partition(scfg.shards);
            let engine = ShardedEngine::from_plan(&p, query.aggregate.clone(), query.window, &scfg);
            Runtime::Sharded(Arc::new(engine))
        }
    };
    Compiled {
        stratum: Stratum {
            agg: query.aggregate.clone(),
            window: query.window,
            neighborhood: query.neighborhood.clone(),
            overlay: p.overlay.clone(),
            decisions: p.decisions.clone(),
            runtime,
            refs: RefCounts::new(),
            queries: 0,
        },
        plan: p,
        bipartite: ag,
        construction,
        cost,
        writer_window,
    }
}

/// Rebuild a stratum's runtime over a grown (or shrunk) overlay. Unlike
/// [`compile_stratum`] this re-freezes an overlay that was extended in
/// place — no planner run, no partition carry: decisions were extended
/// incrementally ([`extend_decisions`]) and the sharded engine re-derives
/// an edge-cut partition from the new push topology.
fn rebuild_runtime<A: Aggregate + Clone>(
    cfg: &BuildConfig,
    agg: &A,
    overlay: Arc<Overlay>,
    decisions: &Decisions,
    window: WindowSpec,
) -> Runtime<A>
where
    A::Output: Send,
{
    match cfg.execution {
        ExecutionMode::SingleThreaded => Runtime::Local(Arc::new(EngineCore::new(
            agg.clone(),
            overlay,
            decisions,
            window,
        ))),
        ExecutionMode::TwoPool(tp) => {
            let core = Arc::new(EngineCore::new(agg.clone(), overlay, decisions, window));
            let engine = ParallelEngine::new(Arc::clone(&core), tp);
            Runtime::TwoPool { core, engine }
        }
        ExecutionMode::Sharded { shards } => {
            let scfg = ShardedConfig::builder()
                .shards(shards.max(1))
                .strategy(PartitionStrategy::EdgeCut)
                .rebalance(cfg.rebalance)
                .transport(cfg.transport)
                .build();
            Runtime::Sharded(Arc::new(ShardedEngine::new(
                agg.clone(),
                overlay,
                decisions,
                window,
                &scfg,
            )))
        }
    }
}

/// Shared mutable state behind an [`EagrSystem`] and every
/// [`QueryHandle`] cloned off it.
///
/// Lock order: `registry` before `graph` before `history` — every path
/// that takes more than one takes them in that order.
pub(crate) struct SystemInner<A: Aggregate> {
    pub(crate) registry: RwLock<Registry<A>>,
    /// The live data graph. Topology mutations
    /// ([`EagrSystem::mutate_topology`], mutation runs inside
    /// [`EagrSystem::ingest`]) rewrite it under the write lock.
    pub(crate) graph: RwLock<DataGraph>,
    pub(crate) history: Mutex<WriteHistory>,
    /// Timestamp source for [`EagrSystem::ingest`]: events are stamped
    /// with consecutive stream positions across calls.
    pub(crate) clock: AtomicU64,
    pub(crate) next_query: AtomicU64,
    pub(crate) config: BuildConfig,
}

/// A compiled, runnable EAGr instance serving one or more registered
/// queries (see [`attach`](EagrSystem::attach)).
pub struct EagrSystem<A: Aggregate> {
    inner: Arc<SystemInner<A>>,
    plan: Plan,
    bipartite: BipartiteGraph,
    construction: Vec<IterationStats>,
    cost: CostModel,
    writer_window: usize,
}

/// Structural summary of a compiled system.
#[derive(Clone, Debug)]
pub struct SystemStats {
    /// Bipartite edges (|E'| of AG).
    pub bipartite_edges: usize,
    /// Overlay edges (|E''|) after any §4.7 splitting.
    pub overlay_edges: usize,
    /// Sharing index (§3.1), measured on the overlay as constructed
    /// (before §4.7 splitting, which deliberately adds edges).
    pub sharing_index: f64,
    /// Partial aggregation nodes.
    pub partial_nodes: usize,
    /// Push-annotated overlay nodes.
    pub push_nodes: usize,
    /// §4.7 splits applied.
    pub splits: usize,
    /// Mean reader depth (Fig 11a).
    pub average_depth: f64,
    /// Modeled total cost of the installed decisions.
    pub modeled_cost: f64,
}

/// A live handle on one registered query (see [`EagrSystem::attach`]).
///
/// Reads are *handle-scoped*: [`read`](Self::read) answers only for data
/// nodes this query's predicate selected, even when the underlying stratum
/// serves other queries with wider reader sets. Handles are cheap to clone
/// (an `Arc` + id) and stay valid — but answer `None` — after
/// [`detach`](EagrSystem::detach).
pub struct QueryHandle<A: Aggregate> {
    inner: Arc<SystemInner<A>>,
    id: u64,
}

impl<A: Aggregate> Clone for QueryHandle<A> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            id: self.id,
        }
    }
}

impl<A: Aggregate> std::fmt::Debug for QueryHandle<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.id)
            .field("attached", &self.is_attached())
            .finish()
    }
}

impl<A: Aggregate> QueryHandle<A> {
    /// The registry id of this query (`0` is the primary build query).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the query is still registered (false after detach).
    pub fn is_attached(&self) -> bool {
        self.inner.registry.read().queries.contains_key(&self.id)
    }

    /// What attaching this query reused vs. materialized (`None` once
    /// detached).
    pub fn attach_report(&self) -> Option<AttachReport> {
        self.inner
            .registry
            .read()
            .queries
            .get(&self.id)
            .map(|e| e.report)
    }

    /// Evaluate this query at `v`. `None` when `v` is outside the query's
    /// reader set or the handle is detached. Epoch-consistent in sharded
    /// mode (routed through the shard inboxes, same as
    /// [`EagrSystem::read`]).
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        let reg = self.inner.registry.read();
        let entry = reg.queries.get(&self.id)?;
        entry.readers.binary_search(&v).ok()?;
        let st = reg.strata[entry.stratum].as_ref()?;
        st.runtime.read(v)
    }

    /// Evaluate this query at a batch of nodes; result `i` answers
    /// `nodes[i]` (`None` outside the query's reader set, everywhere when
    /// detached).
    pub fn read_batch(&self, nodes: &[NodeId]) -> Vec<Option<A::Output>> {
        let reg = self.inner.registry.read();
        let Some(entry) = reg.queries.get(&self.id) else {
            return vec![None; nodes.len()];
        };
        let Some(st) = reg.strata[entry.stratum].as_ref() else {
            return vec![None; nodes.len()];
        };
        let mut out = st.runtime.read_batch(nodes);
        for (i, v) in nodes.iter().enumerate() {
            if entry.readers.binary_search(v).is_err() {
                out[i] = None;
            }
        }
        out
    }
}

impl<A: Aggregate> EagrSystem<A> {
    /// Start building a system for a query.
    pub fn builder(query: EgoQuery<A>) -> SystemBuilder<A>
    where
        A: Clone,
    {
        SystemBuilder::new(query)
    }

    /// A handle on the primary query the system was built with (id 0) —
    /// the same handle-scoped read surface attached queries get.
    pub fn handle(&self) -> QueryHandle<A> {
        QueryHandle {
            inner: Arc::clone(&self.inner),
            id: 0,
        }
    }

    /// Register an additional query against the *running* system.
    ///
    /// The new query's plan is diffed against the live overlay state. When
    /// a compatible **stratum** exists — same window spec, same
    /// neighborhood shape (filtered neighborhoods compare by filter
    /// pointer identity) — the overlay is extended *in place*: existing
    /// readers, writers, and partial aggregation nodes are reused with
    /// their already-materialized PAOs and window buffers (§3's
    /// aggregation sharing, exercised at runtime), and only the delta is
    /// materialized. Otherwise a cold stratum is compiled through the full
    /// planner pipeline. Either way, writers the query introduces
    /// mid-stream are backfilled from the bounded write-history ring
    /// ([`SystemBuilder::history`]).
    ///
    /// The returned [`QueryHandle`] scopes reads to this query's reader
    /// set; [`QueryHandle::attach_report`] says what was reused. Shared
    /// ingestion ([`ingest`](Self::ingest) / [`write`](Self::write)) feeds
    /// every registered query.
    ///
    /// Caveat: stratum compatibility does not inspect the aggregate
    /// *instance* — a query joining a warm stratum is served by that
    /// stratum's aggregate (e.g. attaching `TopK::new(10)` onto a
    /// `TopK::new(5)` stratum answers with the stratum's `k = 5`). Use a
    /// distinct window or neighborhood to force a separate stratum when
    /// parameterized aggregates differ.
    pub fn attach(&self, query: EgoQuery<A>) -> QueryHandle<A>
    where
        A: Clone,
        A::Output: Send,
    {
        let id = self.inner.next_query.fetch_add(1, Ordering::Relaxed);
        let now = self.inner.clock.load(Ordering::Relaxed);
        let mut reg = self.inner.registry.write();
        let graph = self.inner.graph.read();

        // The query's reader set and per-reader input lists — the same
        // shape `BipartiteGraph::build` produces for a cold compile.
        let mut wants: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for v in graph.nodes() {
            if !(query.predicate)(v) {
                continue;
            }
            let mut list = query.neighborhood.select(&graph, v);
            if list.is_empty() {
                continue;
            }
            list.sort_unstable();
            list.dedup();
            wants.push((v, list));
        }
        let mut readers: Vec<NodeId> = wants.iter().map(|&(r, _)| r).collect();
        readers.sort_unstable();

        let (si, mut report) = match reg.find_compatible(query.window, &query.neighborhood) {
            Some(si) => {
                let st = reg.strata[si].as_mut().expect("compatible stratum is live");
                // Quiesce so the exported state is epoch-consistent.
                st.runtime.quiesce();
                let outcome = extend_with_readers(&mut st.overlay, &wants);
                let mut fresh: Vec<OverlayId> = outcome
                    .new_writers
                    .iter()
                    .chain(&outcome.new_readers)
                    .copied()
                    .collect();
                fresh.sort_unstable();
                let (decisions, upgraded) = extend_decisions(&st.overlay, &st.decisions, &fresh);
                st.decisions = decisions;

                // Fresh writers answer over history they never saw live.
                let mut backfill: Vec<(OverlayId, WindowBuffer)> = Vec::new();
                let (mut backfilled, mut cold) = (0usize, 0usize);
                {
                    let history = self.inner.history.lock();
                    for &wid in &outcome.new_writers {
                        let OverlayKind::Writer(w) = st.overlay.kind(wid) else {
                            continue;
                        };
                        let (buf, exact) = history.backfill(w, st.window, now);
                        if exact {
                            backfilled += 1;
                        } else {
                            cold += 1;
                        }
                        if !buf.is_empty() {
                            backfill.push((wid, buf));
                        }
                    }
                }

                // Carry warm state across the rebuild by index (overlay
                // ids are append-only stable under extension), then
                // materialize only the delta.
                let carried = st.runtime.export_state();
                let runtime = rebuild_runtime(
                    &self.inner.config,
                    &st.agg,
                    Arc::new(st.overlay.clone()),
                    &st.decisions,
                    st.window,
                );
                let fresh_push: FastSet<OverlayId> =
                    fresh.iter().chain(&upgraded).copied().collect();
                runtime.seed(Some(&carried), &backfill, &fresh_push);
                st.runtime = runtime;
                st.refs.ensure_len(st.overlay.node_count());
                (
                    si,
                    AttachReport {
                        shared_stratum: true,
                        fresh_paos: fresh.len(),
                        reused_paos: 0, // filled from the used subtree below
                        reused_partials: outcome.reused_partials,
                        upgraded: upgraded.len(),
                        backfilled_writers: backfilled,
                        cold_writers: cold,
                    },
                )
            }
            None => {
                let compiled = compile_stratum(&self.inner.config, &query, &graph);
                let st = compiled.stratum;
                // A cold stratum starts mid-stream: backfill *every*
                // writer from history, then materialize the whole push
                // region in topological order.
                let mut backfill: Vec<(OverlayId, WindowBuffer)> = Vec::new();
                let (mut backfilled, mut cold) = (0usize, 0usize);
                {
                    let history = self.inner.history.lock();
                    for (wid, w) in st.overlay.writers() {
                        let (buf, exact) = history.backfill(w, st.window, now);
                        if exact {
                            backfilled += 1;
                        } else {
                            cold += 1;
                        }
                        if !buf.is_empty() {
                            backfill.push((wid, buf));
                        }
                    }
                }
                let fresh_push: FastSet<OverlayId> = st.overlay.ids().collect();
                st.runtime.seed(None, &backfill, &fresh_push);
                let fresh_count = st.overlay.live_node_count();
                let si = match reg.strata.iter().position(Option::is_none) {
                    Some(slot) => {
                        reg.strata[slot] = Some(st);
                        slot
                    }
                    None => {
                        reg.strata.push(Some(st));
                        reg.strata.len() - 1
                    }
                };
                (
                    si,
                    AttachReport {
                        shared_stratum: false,
                        fresh_paos: fresh_count,
                        backfilled_writers: backfilled,
                        cold_writers: cold,
                        ..Default::default()
                    },
                )
            }
        };

        // Common registration: acquire references on the query's
        // transitive input closure so detach of *other* queries can never
        // retire anything this one reads.
        let st = reg.strata[si].as_mut().expect("target stratum is live");
        let roots: Vec<OverlayId> = readers
            .iter()
            .filter_map(|&r| st.overlay.reader(r))
            .collect();
        let used = used_subtree(&st.overlay, &roots);
        st.refs.ensure_len(st.overlay.node_count());
        st.refs.acquire(&used);
        st.queries += 1;
        report.reused_paos = used
            .len()
            .saturating_sub(report.fresh_paos + report.upgraded);
        reg.queries.insert(
            id,
            QueryEntry {
                stratum: si,
                readers,
                used,
                report,
            },
        );
        QueryHandle {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// Deregister a query. Reference-counted: overlay nodes (and their
    /// PAOs) shared with remaining queries stay untouched; nodes only this
    /// query read are retired and the stratum's runtime is rebuilt around
    /// the survivors (warm state carried by index). Dropping the last
    /// query of a stratum tears the whole stratum down.
    ///
    /// Detaching an already-detached handle is a no-op returning a default
    /// (all-zero) report.
    pub fn detach(&self, handle: QueryHandle<A>) -> DetachReport
    where
        A: Clone,
        A::Output: Send,
    {
        let mut reg = self.inner.registry.write();
        let Some(entry) = reg.queries.remove(&handle.id) else {
            return DetachReport::default();
        };
        let si = entry.stratum;
        let st = reg.strata[si].as_mut().expect("entry's stratum is live");
        st.queries -= 1;
        let zeroed = st.refs.release(&entry.used);
        if st.queries == 0 {
            let retired = st.overlay.live_node_count();
            reg.strata[si] = None; // drops overlay + engine
            return DetachReport {
                retired_paos: retired,
                retained_paos: 0,
                stratum_dropped: true,
            };
        }
        if zeroed.is_empty() {
            return DetachReport {
                retired_paos: 0,
                retained_paos: entry.used.len(),
                stratum_dropped: false,
            };
        }
        // Safe to retire: every remaining query holds a reference on every
        // node of its own used subtree, so a zero-count node is upstream
        // of no surviving reader.
        st.runtime.quiesce();
        let carried = st.runtime.export_state();
        for &n in &zeroed {
            st.overlay.retire_node(n);
        }
        let runtime = rebuild_runtime(
            &self.inner.config,
            &st.agg,
            Arc::new(st.overlay.clone()),
            &st.decisions,
            st.window,
        );
        runtime.seed(Some(&carried), &[], &FastSet::default());
        st.runtime = runtime;
        DetachReport {
            retired_paos: zeroed.len(),
            retained_paos: entry.used.len() - zeroed.len(),
            stratum_dropped: false,
        }
    }

    /// Registry-level summary: live strata, attached queries, live overlay
    /// nodes across strata.
    pub fn registry_stats(&self) -> RegistryStats {
        self.inner.registry.read().stats()
    }

    /// Apply a content update (a *write* on `v`) — fans out to **every**
    /// registered query's stratum.
    ///
    /// Synchronous in the local modes; in [`ExecutionMode::Sharded`] the
    /// write is routed to its owning shard and drained (one single-event
    /// epoch) — use [`ingest`](Self::ingest) / [`write_batch`](Self::write_batch)
    /// for throughput. Returns PAO updates performed where known (0 in
    /// sharded mode).
    pub fn write(&self, v: NodeId, value: i64, ts: u64) -> usize {
        // Keep the ingest clock ahead of explicitly timestamped point
        // writes (same guard as `apply_batch`): a later `ingest` must
        // never re-issue `ts` or stamp events before it.
        self.inner.clock.fetch_max(ts + 1, Ordering::Relaxed);
        let reg = self.inner.registry.read();
        self.inner.history.lock().record(v, value, ts);
        let mut applied = 0;
        for st in reg.live() {
            match &st.runtime {
                Runtime::Local(core) | Runtime::TwoPool { core, .. } => {
                    applied += core.write(v, value, ts);
                }
                Runtime::Sharded(eng) => {
                    transport_ok(eng.submit_write(v, value, ts));
                    transport_ok(eng.drain());
                }
            }
        }
        applied
    }

    /// Evaluate the primary query at `v` (a *read* on `v`). For attached
    /// queries, read through their [`QueryHandle`] instead.
    ///
    /// Synchronous on the shared core in the local modes. In
    /// [`ExecutionMode::Sharded`] the read is routed to the shard worker
    /// owning its reader and evaluated there, epoch-consistently
    /// ([`ShardedEngine::read_service`]) — the caller thread never
    /// evaluates shard-owned PAO state. That consistency is not free: each
    /// call pins the epoch gate and drains in-flight work, briefly
    /// pausing concurrent ingestion. Use [`read_batch`](Self::read_batch)
    /// to amortize that cost over many reads, or
    /// [`read_relaxed`](Self::read_relaxed) for cheap polling that
    /// tolerates mid-epoch state.
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        let reg = self.inner.registry.read();
        reg.primary().and_then(|st| st.runtime.read(v))
    }

    /// Evaluate the primary query at `v` without consistency guarantees:
    /// identical to [`read`](Self::read) in the local modes, but in
    /// [`ExecutionMode::Sharded`] it evaluates on the calling thread
    /// through the slab read locks ([`ShardedEngine::read`]) — no epoch
    /// gate, no drain, no pause of concurrent ingestion. Between epochs it
    /// may observe partially propagated writes (the relaxed consistency
    /// the paper accepts); after a drain it equals [`read`](Self::read).
    /// The right choice for hot polling loops and monitoring probes.
    pub fn read_relaxed(&self, v: NodeId) -> Option<A::Output> {
        let reg = self.inner.registry.read();
        let st = reg.primary()?;
        match &st.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.read(v),
            Runtime::Sharded(eng) => eng.read(v),
        }
    }

    /// Evaluate a batch of reads against the primary query; result `i`
    /// answers the query at `nodes[i]` (`None` when the node has no
    /// reader).
    ///
    /// Mode-aware routing: the local modes evaluate synchronously on the
    /// shared core; [`ExecutionMode::Sharded`] fans the batch out to the
    /// shard workers owning each reader ([`ShardedEngine::read_batch`]),
    /// where push finalizes and the local part of pull trees run against
    /// the worker's own slab — epoch-consistent even under concurrent
    /// ingestion.
    pub fn read_batch(&self, nodes: &[NodeId]) -> Vec<Option<A::Output>> {
        let reg = self.inner.registry.read();
        match reg.primary() {
            Some(st) => st.runtime.read_batch(nodes),
            None => vec![None; nodes.len()],
        }
    }

    /// Expire time-window values across **every** registered query's
    /// stratum. Returns PAO updates performed, summed across strata.
    ///
    /// In [`ExecutionMode::Sharded`] the sweep is routed through the shard
    /// inboxes — each owning worker expires its own writers' windows — and
    /// drained as one epoch, so it is safe to call concurrently with
    /// ingestion (the caller thread never mutates shard-owned state). The
    /// returned count then covers everything applied while the sweep
    /// drained, including concurrently ingested writes.
    pub fn advance_time(&self, ts: u64) -> usize {
        let reg = self.inner.registry.read();
        reg.live()
            .map(|st| match &st.runtime {
                Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.advance_time(ts),
                Runtime::Sharded(eng) => transport_ok(eng.advance_time_epoch(ts)) as usize,
            })
            .sum()
    }

    /// Apply one timestamped batch through the mode's batch path and wait
    /// for it to be fully applied; returns an [`IngestReport`] of events
    /// executed (each event counted once, however many queries it feeds).
    ///
    /// * single-threaded — synchronous replay;
    /// * two-pool — writes become queued micro-tasks, fire-and-forget
    ///   reads go to the read pool, then the pools are drained;
    /// * sharded — one ingestion epoch ([`ShardedEngine::ingest_epoch`]).
    pub fn write_batch(&self, batch: &EventBatch) -> IngestReport
    where
        A: Clone,
        A::Output: Send,
    {
        self.apply_batch(&batch.events, batch.base_ts)
    }

    /// Ingest a run of events through the mode's batch path, stamping them
    /// with consecutive stream positions (continuing across calls);
    /// returns an [`IngestReport`]. Equivalent to
    /// [`write_batch`](Self::write_batch) with an automatic base
    /// timestamp. The shared stream feeds every registered query.
    pub fn ingest(&self, events: &[Event]) -> IngestReport
    where
        A: Clone,
        A::Output: Send,
    {
        let base_ts = self
            .inner
            .clock
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        self.apply_batch(events, base_ts)
    }

    /// The shared borrowing batch path behind [`write_batch`](Self::write_batch)
    /// and [`ingest`](Self::ingest); event `i` carries `base_ts + i`.
    ///
    /// The stream is split into maximal content/topology runs at the same
    /// positions in every mode: content runs go down the mode's batch
    /// path, each topology run becomes one repair epoch
    /// ([`apply_topo_run`](Self::apply_topo_run)) between them, so a write
    /// after a mutation always executes on the mutated topology.
    fn apply_batch(&self, events: &[Event], base_ts: u64) -> IngestReport
    where
        A: Clone,
        A::Output: Send,
    {
        // Keep the ingest clock ahead of explicitly timestamped batches so
        // mixed use of write_batch and ingest stays monotonic.
        self.inner
            .clock
            .fetch_max(base_ts + events.len() as u64, Ordering::Relaxed);
        let mut report = IngestReport::default();
        let mut i = 0;
        while i < events.len() {
            let topo = events[i].is_topo();
            let start = i;
            while i < events.len() && events[i].is_topo() == topo {
                i += 1;
            }
            let run = &events[start..i];
            if topo {
                report.mutations += run.len();
                self.apply_topo_run(run);
            } else {
                self.apply_content_run(run, base_ts + start as u64, &mut report);
            }
        }
        report
    }

    /// One maximal run of content (write/read) events down the mode's
    /// batch path; event `i` of the run carries `base_ts + i`.
    fn apply_content_run(&self, events: &[Event], base_ts: u64, report: &mut IngestReport)
    where
        A::Output: Send,
    {
        let reg = self.inner.registry.read();
        {
            let mut history = self.inner.history.lock();
            for (i, e) in events.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    history.record(node, value, base_ts + i as u64);
                }
            }
        }
        for e in events {
            match e {
                Event::Write { .. } => report.writes += 1,
                Event::Read { .. } => report.reads += 1,
                Event::AddEdge { .. }
                | Event::RemoveEdge { .. }
                | Event::AddNode { .. }
                | Event::RemoveNode { .. } => {
                    unreachable!("content runs contain no topology mutations")
                }
            }
        }
        for st in reg.live() {
            match &st.runtime {
                Runtime::Local(core) => {
                    for (i, e) in events.iter().enumerate() {
                        match *e {
                            Event::Write { node, value } => {
                                core.write(node, value, base_ts + i as u64);
                            }
                            Event::Read { node } => {
                                std::hint::black_box(core.read(node));
                            }
                            Event::AddEdge { .. }
                            | Event::RemoveEdge { .. }
                            | Event::AddNode { .. }
                            | Event::RemoveNode { .. } => {}
                        }
                    }
                }
                Runtime::TwoPool { engine, .. } => {
                    for (i, e) in events.iter().enumerate() {
                        match *e {
                            Event::Write { node, value } => {
                                engine.submit_write(node, value, base_ts + i as u64);
                            }
                            Event::Read { node } => {
                                engine.submit_read(node);
                            }
                            Event::AddEdge { .. }
                            | Event::RemoveEdge { .. }
                            | Event::AddNode { .. }
                            | Event::RemoveNode { .. } => {}
                        }
                    }
                    engine.drain();
                }
                Runtime::Sharded(eng) => {
                    let _ = transport_ok(eng.ingest_epoch_at(events, base_ts));
                }
            }
        }
    }

    /// Apply a run of topology mutations (edge/node churn) outside an
    /// ingest stream: the same path a mutation run embedded in
    /// [`ingest`](Self::ingest) takes. Invalid mutations — duplicate
    /// edges, dead endpoints, already-removed nodes — are counted as
    /// `skipped`, never errors, so generated churn streams replay safely.
    /// Content events in `muts` are skipped too.
    ///
    /// Returns what this run did; cumulative totals live in
    /// [`registry_stats`](Self::registry_stats) under
    /// [`RegistryStats::topo`].
    pub fn mutate_topology(&self, muts: &[Event]) -> TopoReport
    where
        A: Clone,
        A::Output: Send,
    {
        self.apply_topo_run(muts)
    }

    /// Apply one maximal run of topology mutations: validate against the
    /// shared graph, repair every stratum's overlay incrementally (§3.3
    /// via [`DynamicOverlay`]), map each repair to a plan delta
    /// ([`topo_plan_delta`] — no planner re-run), and move each runtime
    /// onto the repaired topology. The sharded engine swaps cores in
    /// place through [`ShardedEngine::apply_topo`] (workers keep running
    /// across the epoch); the local modes rebuild and re-seed from
    /// carried state.
    fn apply_topo_run(&self, muts: &[Event]) -> TopoReport
    where
        A: Clone,
        A::Output: Send,
    {
        let mut reg = self.inner.registry.write();
        let mut graph = self.inner.graph.write();
        let now = self.inner.clock.load(Ordering::Relaxed);
        let mut run = TopoReport::default();
        // Validate once against a scratch clone of the shared graph so
        // every stratum — and every execution mode — replays the same
        // applied subsequence.
        let mut probe = graph.clone();
        let mut valid: Vec<Event> = Vec::with_capacity(muts.len());
        for &e in muts {
            let ok = match e {
                Event::AddEdge { from, to } => {
                    probe.contains(from) && probe.contains(to) && probe.add_edge(from, to)
                }
                Event::RemoveEdge { from, to } => {
                    probe.contains(from) && probe.contains(to) && probe.remove_edge(from, to)
                }
                Event::AddNode { node } => {
                    // Ids are append-only; a mutation naming a bound id
                    // (live or tombstoned) is a replayed duplicate.
                    if node.idx() < probe.id_bound() {
                        false
                    } else {
                        while probe.id_bound() <= node.idx() {
                            probe.add_node();
                        }
                        true
                    }
                }
                Event::RemoveNode { node } => {
                    if probe.contains(node) {
                        probe.remove_node(node);
                        true
                    } else {
                        false
                    }
                }
                // Content events never belong in a topology run.
                Event::Write { .. } | Event::Read { .. } => false,
            };
            if ok {
                valid.push(e);
            } else {
                run.skipped += 1;
            }
        }
        run.applied = valid.len() as u64;
        if !valid.is_empty() {
            run.epochs = 1;
            for slot in reg.strata.iter_mut() {
                let Some(st) = slot.as_mut() else { continue };
                st.runtime.quiesce();
                // Each stratum replays against its own clone of the
                // pre-mutation graph: the repair diffs neighborhoods
                // before/after, so it must start from the before-state.
                let mut g = graph.clone();
                let mut dyn_ov = DynamicOverlay::new(
                    st.overlay.clone(),
                    st.neighborhood.clone(),
                    st.agg.props(),
                    DynamicConfig::default(),
                );
                let old_n = st.overlay.node_count();
                for &e in &valid {
                    match e {
                        Event::AddEdge { from, to } => {
                            dyn_ov.add_edge(&mut g, from, to);
                        }
                        Event::RemoveEdge { from, to } => {
                            dyn_ov.remove_edge(&mut g, from, to);
                        }
                        Event::AddNode { node } => {
                            while g.id_bound() <= node.idx() {
                                dyn_ov.add_node(&mut g);
                            }
                        }
                        Event::RemoveNode { node } => dyn_ov.remove_node(&mut g, node),
                        Event::Write { .. } | Event::Read { .. } => {}
                    }
                }
                let dirty = dyn_ov.take_dirty();
                let overlay = dyn_ov.into_overlay();
                let fresh: Vec<OverlayId> = (old_n..overlay.node_count())
                    .map(|i| OverlayId(i as u32))
                    .filter(|&n| !overlay.is_retired(n))
                    .collect();
                let retired = (0..old_n)
                    .map(|i| OverlayId(i as u32))
                    .filter(|&n| overlay.is_retired(n) && !st.overlay.is_retired(n))
                    .count();
                let delta = topo_plan_delta(&overlay, &st.decisions, &fresh, &dirty);
                // Writers born mid-stream answer over history they never
                // saw arrive.
                let mut backfill: Vec<(OverlayId, WindowBuffer)> = Vec::new();
                {
                    let history = self.inner.history.lock();
                    for &wid in &fresh {
                        if let OverlayKind::Writer(w) = overlay.kind(wid) {
                            let (buf, _exact) = history.backfill(w, st.window, now);
                            if !buf.is_empty() {
                                backfill.push((wid, buf));
                            }
                        }
                    }
                }
                let frozen = Arc::new(overlay.clone());
                match &st.runtime {
                    Runtime::Sharded(eng) => {
                        let rep = transport_ok(eng.apply_topo(
                            st.agg.clone(),
                            frozen,
                            &delta.decisions,
                            &backfill,
                            &delta.materialize,
                        ));
                        run.rematerialized += rep.rematerialized as u64;
                    }
                    _ => {
                        let carried = st.runtime.export_state();
                        let runtime = rebuild_runtime(
                            &self.inner.config,
                            &st.agg,
                            frozen,
                            &delta.decisions,
                            st.window,
                        );
                        runtime.seed(Some(&carried), &backfill, &delta.materialize);
                        st.runtime = runtime;
                        run.rematerialized += delta.materialize.len() as u64;
                    }
                }
                run.fresh_overlay_nodes += fresh.len() as u64;
                run.retired_overlay_nodes += retired as u64;
                st.overlay = overlay;
                st.decisions = delta.decisions;
                st.refs.ensure_len(st.overlay.node_count());
            }
        }
        // Publish to the shared graph (the probe already replayed exactly
        // the valid subsequence).
        *graph = probe;
        reg.topo.absorb(&run);
        run
    }

    /// Apply a generated event stream; returns an [`IngestReport`].
    pub fn run_events(&self, events: &[Event]) -> IngestReport
    where
        A: Clone,
        A::Output: Send,
    {
        self.ingest(events)
    }

    /// Current stream position of the [`ingest`](Self::ingest) clock: the
    /// timestamp the next auto-stamped event will receive.
    pub fn stream_position(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// The primary stratum's shared engine core (for parallel or adaptive
    /// execution).
    ///
    /// # Panics
    /// Panics in [`ExecutionMode::Sharded`], where PAO state lives in
    /// shard slabs — use [`sharded_engine`](Self::sharded_engine) instead.
    pub fn core(&self) -> Arc<EngineCore<A>> {
        let reg = self.inner.registry.read();
        let st = reg.primary().expect("no live stratum");
        match &st.runtime {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => Arc::clone(core),
            Runtime::Sharded(_) => {
                panic!("core() requires a local execution mode; use sharded_engine()")
            }
        }
    }

    /// The primary stratum's resident sharded engine, when built with
    /// [`ExecutionMode::Sharded`].
    pub fn sharded_engine(&self) -> Option<Arc<ShardedEngine<A>>> {
        let reg = self.inner.registry.read();
        match &reg.primary()?.runtime {
            Runtime::Sharded(eng) => Some(Arc::clone(eng)),
            _ => None,
        }
    }

    /// Manually trigger one live shard rebalance
    /// ([`ShardedEngine::rebalance`]): refine the node→shard map from
    /// observed load and migrate the affected PAO state with the two-phase
    /// copy-then-flip protocol — ingestion keeps running through the copy;
    /// only the final flip is epoch-fenced. `None` in the local modes
    /// (there is nothing to rebalance).
    pub fn rebalance(&self) -> Option<MigrationReport> {
        self.sharded_engine()
            .map(|eng| transport_ok(eng.rebalance()))
    }

    /// Compact the sharded PAO slabs, reclaiming slots orphaned by past
    /// migrations ([`ShardedEngine::compact`]). Returns the number of
    /// slots reclaimed; `None` in the local modes (local stores have no
    /// slabs to compact).
    pub fn compact(&self) -> Option<u64> {
        self.sharded_engine().map(|eng| transport_ok(eng.compact()))
    }

    /// Spawn a multi-threaded engine over this system's state (local
    /// modes only; see [`core`](Self::core)).
    pub fn parallel(&self, cfg: ParallelConfig) -> ParallelEngine<A>
    where
        A::Output: Send,
    {
        ParallelEngine::new(self.core(), cfg)
    }

    /// Wrap the engine with §4.8 runtime adaptation (local modes only; see
    /// [`core`](Self::core)).
    pub fn adaptive(&self, check_every: u64) -> AdaptiveEngine<A> {
        AdaptiveEngine::new(self.core(), self.cost, self.writer_window, check_every)
    }

    /// The overlay the primary query compiled to (a construction-time
    /// snapshot: live attach/detach extends the registry's copy, not
    /// this one — see [`registry_stats`](Self::registry_stats)).
    pub fn overlay(&self) -> &Overlay {
        &self.plan.overlay
    }

    /// The primary query's dataflow plan (construction-time snapshot).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bipartite writer/reader graph the primary overlay was compiled
    /// from.
    pub fn bipartite(&self) -> &BipartiteGraph {
        &self.bipartite
    }

    /// Per-iteration construction statistics (empty for `Direct`).
    pub fn construction_stats(&self) -> &[IterationStats] {
        &self.construction
    }

    /// Structural summary of the primary build.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            bipartite_edges: self.bipartite.edge_count(),
            overlay_edges: self.plan.overlay.edge_count(),
            sharing_index: self.plan.pre_split_sharing_index,
            partial_nodes: self.plan.overlay.partial_count(),
            push_nodes: self.plan.decisions.push_count(),
            splits: self.plan.splits,
            average_depth: metrics::average_depth(&self.plan.overlay),
            modeled_cost: self.plan.modeled_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NaiveOracle;
    use crate::query::EgoQuery;
    use eagr_agg::{Max, Sum, TopK, WindowSpec};
    use eagr_gen::{generate_events, social_graph, WorkloadConfig};
    use eagr_graph::Neighborhood;

    #[test]
    fn end_to_end_sum_matches_oracle() {
        let g = social_graph(200, 4, 9);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .build(&g);
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        let events = generate_events(
            200,
            &WorkloadConfig {
                events: 5000,
                ..Default::default()
            },
        );
        for (ts, e) in events.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                sys.write(node, value, ts as u64);
                oracle.write(node, value, ts as u64);
            }
        }
        for v in 0..200u32 {
            let got = sys.read(NodeId(v));
            let want = oracle.read(&g, NodeId(v));
            if let Some(got) = got {
                assert_eq!(got, want, "node {v}");
            }
        }
    }

    #[test]
    fn continuous_mode_forces_push() {
        let g = social_graph(100, 3, 1);
        let sys = EagrSystem::builder(EgoQuery::new(Sum).mode(QueryMode::Continuous)).build(&g);
        // Every overlay node must be push.
        let st = sys.stats();
        assert_eq!(st.push_nodes, sys.overlay().node_count());
    }

    #[test]
    fn duplicate_insensitive_aggregate_uses_vnmd() {
        let g = social_graph(150, 4, 2);
        let sys = EagrSystem::builder(EgoQuery::new(Max))
            .overlay(OverlayAlgorithm::Vnmd)
            .build(&g);
        assert!(sys.stats().sharing_index >= 0.0);
        sys.write(NodeId(0), 5, 0);
        let _ = sys.read(NodeId(1));
    }

    #[test]
    fn stats_are_consistent() {
        let g = social_graph(150, 4, 3);
        let sys = EagrSystem::builder(EgoQuery::new(TopK::new(5)))
            .overlay(OverlayAlgorithm::Vnmn)
            .build(&g);
        let st = sys.stats();
        assert_eq!(st.bipartite_edges, sys.bipartite().edge_count());
        assert!(st.sharing_index <= 1.0);
        assert!(st.push_nodes <= sys.overlay().node_count());
        assert!(st.average_depth >= 1.0);
    }

    #[test]
    fn sharded_mode_matches_oracle_after_epochs() {
        let g = social_graph(150, 4, 11);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .execution(ExecutionMode::Sharded { shards: 4 })
            .build(&g);
        assert!(sys.sharded_engine().is_some());
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        let events = generate_events(
            150,
            &WorkloadConfig {
                events: 4000,
                write_to_read: 1e9,
                seed: 12,
                ..Default::default()
            },
        );
        let mut ts = 0u64;
        for batch in eagr_gen::batch_events(&events, 512, 0) {
            sys.write_batch(&batch);
            for (e, _) in batch.iter_timed() {
                if let Event::Write { node, value } = *e {
                    oracle.write(node, value, ts);
                }
                ts += 1;
            }
        }
        for v in 0..150u32 {
            if let Some(got) = sys.read(NodeId(v)) {
                assert_eq!(got, oracle.read(&g, NodeId(v)), "node {v}");
            }
        }
    }

    #[test]
    fn read_batch_agrees_across_modes() {
        let g = social_graph(120, 4, 41);
        let events = generate_events(
            120,
            &WorkloadConfig {
                events: 3000,
                write_to_read: 1e9,
                seed: 42,
                ..Default::default()
            },
        );
        let nodes: Vec<NodeId> = (0..120u32).map(NodeId).collect();
        let modes = [
            ExecutionMode::SingleThreaded,
            ExecutionMode::TwoPool(ParallelConfig {
                write_threads: 2,
                read_threads: 1,
            }),
            ExecutionMode::Sharded { shards: 4 },
        ];
        let mut answers = Vec::new();
        for mode in modes {
            let sys = EagrSystem::builder(EgoQuery::new(Sum))
                .execution(mode)
                .build(&g);
            sys.ingest(&events);
            let batch = sys.read_batch(&nodes);
            // Point reads and batch reads agree within a mode.
            for (i, &v) in nodes.iter().enumerate() {
                assert_eq!(batch[i], sys.read(v), "node {v:?}");
            }
            answers.push(batch);
        }
        assert_eq!(answers[0], answers[1], "two-pool diverged from single");
        assert_eq!(answers[0], answers[2], "sharded diverged from single");
    }

    #[test]
    fn relaxed_reads_agree_after_drain() {
        let g = social_graph(80, 4, 45);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::Sharded { shards: 3 })
            .build(&g);
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 1500,
                write_to_read: 1e9,
                seed: 46,
                ..Default::default()
            },
        );
        sys.ingest(&events); // full epoch: everything drained
        for v in 0..80u32 {
            // With no in-flight writes the relaxed caller-thread path and
            // the epoch-consistent shard-executed path must agree.
            assert_eq!(sys.read_relaxed(NodeId(v)), sys.read(NodeId(v)), "{v}");
        }
    }

    #[test]
    fn landmark_window_defaults_to_push_heavy_plans() {
        // Regression for the Unbounded cost-model bug at the facade level:
        // the builder derives the writer window from the query's window
        // spec, so a landmark-window plan prices pulls at whole-history
        // scans and flips push-heavy even on write-heavy rates.
        let g = social_graph(120, 4, 43);
        let write_heavy = Rates::uniform(120, 5.0);
        let tuple = EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Tuple(1)))
            .overlay(OverlayAlgorithm::Direct)
            .rates(write_heavy.clone())
            .cost_model(CostModel::unit_sum())
            .split(false)
            .build(&g);
        let landmark = EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Unbounded))
            .overlay(OverlayAlgorithm::Direct)
            .rates(write_heavy)
            .cost_model(CostModel::unit_sum())
            .split(false)
            .build(&g);
        let n = landmark.overlay().node_count();
        assert_eq!(
            landmark.stats().push_nodes,
            n,
            "whole-history pulls must push everything"
        );
        assert!(
            tuple.stats().push_nodes < n,
            "single-value windows on write-heavy rates must leave pull nodes"
        );
    }

    #[test]
    fn two_pool_mode_ingests_batches() {
        let g = social_graph(100, 3, 13);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::TwoPool(ParallelConfig {
                write_threads: 2,
                read_threads: 1,
            }))
            .build(&g);
        let events = generate_events(
            100,
            &WorkloadConfig {
                events: 2000,
                write_to_read: 3.0,
                seed: 14,
                ..Default::default()
            },
        );
        let report = sys.ingest(&events);
        assert_eq!(report.total(), 2000);
        // Point ops remain synchronous on the shared core.
        sys.write(NodeId(0), 5, 1_000_000);
        let _ = sys.read(NodeId(1));
    }

    #[test]
    fn ingest_clock_is_monotonic_across_calls() {
        let g = social_graph(60, 3, 15);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            60,
            &WorkloadConfig {
                events: 100,
                ..Default::default()
            },
        );
        sys.ingest(&events);
        assert_eq!(sys.stream_position(), 100);
        // An explicitly timestamped batch pushes the clock forward…
        sys.write_batch(&eagr_gen::EventBatch::new(500, events.clone()));
        assert_eq!(sys.stream_position(), 600);
        // …so a later ingest never re-issues timestamps 100..200.
        sys.ingest(&events);
        assert_eq!(sys.stream_position(), 700);
    }

    #[test]
    fn point_write_advances_ingest_clock_in_every_mode() {
        let g = social_graph(60, 3, 15);
        let modes = [
            ExecutionMode::SingleThreaded,
            ExecutionMode::TwoPool(ParallelConfig {
                write_threads: 1,
                read_threads: 1,
            }),
            ExecutionMode::Sharded { shards: 2 },
        ];
        for mode in modes {
            let sys = EagrSystem::builder(EgoQuery::new(Sum))
                .execution(mode)
                .build(&g);
            // A point write with a large explicit timestamp must advance
            // the shared stream clock…
            sys.write(NodeId(0), 7, 500);
            assert_eq!(sys.stream_position(), 501, "{mode:?}");
            // …so a later ingest stamps strictly-later timestamps instead
            // of re-issuing 0..100.
            let events = generate_events(
                60,
                &WorkloadConfig {
                    events: 100,
                    ..Default::default()
                },
            );
            sys.ingest(&events);
            assert_eq!(sys.stream_position(), 601, "{mode:?}");
        }
    }

    #[test]
    fn sharded_advance_time_matches_local_expiration() {
        let g = social_graph(80, 4, 31);
        let build = |mode| {
            EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Time(50)))
                .decisions(DecisionAlgorithm::AllPush)
                .execution(mode)
                .build(&g)
        };
        let local = build(ExecutionMode::SingleThreaded);
        let sharded = build(ExecutionMode::Sharded { shards: 3 });
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 2000,
                write_to_read: 1e9,
                seed: 32,
                ..Default::default()
            },
        );
        for batch in eagr_gen::batch_events(&events, 250, 0) {
            local.write_batch(&batch);
            sharded.write_batch(&batch);
        }
        // Expire most of the stream; the sharded sweep runs on the shard
        // workers, the local one on the caller thread — same answers.
        let applied = sharded.advance_time(1900);
        assert!(applied > 0, "expirations must be applied");
        local.advance_time(1900);
        for v in 0..80u32 {
            assert_eq!(
                sharded.read(NodeId(v)),
                local.read(NodeId(v)),
                "node {v} after expiration"
            );
        }
    }

    #[test]
    fn batch_counts_agree_across_modes() {
        // paper_example_graph: node g feeds nobody, so its writes have no
        // overlay writer — they must still count as processed writes in
        // every mode.
        let g = eagr_graph::paper_example_graph();
        let events = generate_events(
            7,
            &WorkloadConfig {
                events: 500,
                write_to_read: 2.0,
                seed: 17,
                ..Default::default()
            },
        );
        let single = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let sharded = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::Sharded { shards: 3 })
            .build(&g);
        assert_eq!(single.ingest(&events), sharded.ingest(&events));
    }

    #[test]
    #[should_panic(expected = "core() requires a local execution mode")]
    fn core_access_panics_in_sharded_mode() {
        let g = social_graph(50, 3, 16);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .execution(ExecutionMode::Sharded { shards: 2 })
            .build(&g);
        let _ = sys.core();
    }

    #[test]
    fn run_events_counts() {
        let g = social_graph(80, 3, 4);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            80,
            &WorkloadConfig {
                events: 1000,
                write_to_read: 1.0,
                ..Default::default()
            },
        );
        let report = sys.run_events(&events);
        assert_eq!(report.writes + report.reads, 1000);
    }

    // --- multi-query registry ------------------------------------------

    #[test]
    fn builder_debug_prints_window_state() {
        let b = EagrSystem::builder(EgoQuery::new(Sum).window(WindowSpec::Time(30)));
        let s = format!("{b:?}");
        assert!(s.contains("Time(30)"), "{s}");
        assert!(s.contains("SystemBuilder"), "{s}");
    }

    #[test]
    fn attach_overlapping_query_shares_stratum_and_reuses_paos() {
        let g = social_graph(150, 4, 21);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            150,
            &WorkloadConfig {
                events: 2000,
                write_to_read: 1e9,
                seed: 22,
                ..Default::default()
            },
        );
        sys.ingest(&events);
        // Same window + neighborhood, narrower predicate: total overlap.
        let h = sys.attach(EgoQuery::new(Sum).filter(|v| v.0 < 50));
        let report = h.attach_report().expect("attached");
        assert!(report.shared_stratum, "{report:?}");
        assert_eq!(report.fresh_paos, 0, "total overlap needs nothing new");
        assert!(report.reused_paos > 0, "{report:?}");
        assert!(report.reuse_fraction() > 0.99, "{report:?}");
        let stats = sys.registry_stats();
        assert_eq!(stats.strata, 1);
        assert_eq!(stats.queries, 2);
        // Handle-scoped: in-set nodes answer like the primary, out-of-set
        // nodes answer None even though the stratum has their readers.
        for v in 0..150u32 {
            let got = h.read(NodeId(v));
            if v < 50 {
                assert_eq!(got, sys.read(NodeId(v)), "node {v}");
            } else {
                assert_eq!(got, None, "node {v} outside the query's readers");
            }
        }
    }

    #[test]
    fn attach_incompatible_window_compiles_cold_stratum() {
        let g = social_graph(100, 3, 23);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let h = sys.attach(EgoQuery::new(Sum).window(WindowSpec::Time(40)));
        let report = h.attach_report().expect("attached");
        assert!(!report.shared_stratum);
        assert!(report.fresh_paos > 0);
        assert_eq!(report.reused_paos, 0);
        assert_eq!(sys.registry_stats().strata, 2);
        let d = sys.detach(h);
        assert!(d.stratum_dropped);
        assert_eq!(sys.registry_stats().strata, 1);
    }

    #[test]
    fn detach_keeps_shared_state_for_remaining_queries() {
        let g = social_graph(120, 4, 25);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            120,
            &WorkloadConfig {
                events: 1500,
                write_to_read: 1e9,
                seed: 26,
                ..Default::default()
            },
        );
        sys.ingest(&events);
        let h = sys.attach(EgoQuery::new(Sum).filter(|v| v.0 < 40));
        let before: Vec<_> = (0..120u32).map(|v| sys.read(NodeId(v))).collect();
        let d = sys.detach(h.clone());
        assert!(!d.stratum_dropped, "primary query still lives here");
        assert!(!h.is_attached());
        assert_eq!(h.read(NodeId(3)), None, "detached handle answers None");
        // The primary query's answers are untouched by the detach.
        for v in 0..120u32 {
            assert_eq!(sys.read(NodeId(v)), before[v as usize], "node {v}");
        }
        // Detach twice is a harmless no-op.
        assert_eq!(sys.detach(h), DetachReport::default());
    }

    #[test]
    fn attached_query_tracks_shared_ingest() {
        let g = social_graph(90, 3, 27);
        for mode in [
            ExecutionMode::SingleThreaded,
            ExecutionMode::Sharded { shards: 3 },
        ] {
            let sys = EagrSystem::builder(EgoQuery::new(Sum))
                .execution(mode)
                .build(&g);
            let h = sys.attach(EgoQuery::new(Sum).filter(|v| v.0 % 2 == 0));
            let events = generate_events(
                90,
                &WorkloadConfig {
                    events: 1200,
                    write_to_read: 1e9,
                    seed: 28,
                    ..Default::default()
                },
            );
            sys.ingest(&events);
            // Post-attach ingest feeds both queries; where both answer,
            // the shared stratum must answer identically.
            for v in (0..90u32).step_by(2) {
                assert_eq!(h.read(NodeId(v)), sys.read(NodeId(v)), "{mode:?} node {v}");
            }
        }
    }

    #[test]
    fn attach_backfills_fresh_writers_from_history() {
        // Primary query only reads node 0's neighborhood; the attached
        // query reads everyone, so most writers are fresh at attach time
        // and must be reconstructed from the write-history ring.
        let g = social_graph(60, 3, 29);
        let sys = EagrSystem::builder(EgoQuery::new(Sum).filter(|v| v.0 == 0)).build(&g);
        let events = generate_events(
            60,
            &WorkloadConfig {
                events: 900,
                write_to_read: 1e9,
                seed: 30,
                ..Default::default()
            },
        );
        sys.ingest(&events);
        let h = sys.attach(EgoQuery::new(Sum));
        let report = h.attach_report().expect("attached");
        assert!(report.shared_stratum);
        assert!(report.backfilled_writers > 0, "{report:?}");
        assert_eq!(report.cold_writers, 0, "Tuple(1) backfill is exact");
        // Reference: a cold system replaying the same stream.
        let reference = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        reference.ingest(&events);
        for v in 0..60u32 {
            assert_eq!(h.read(NodeId(v)), reference.read(NodeId(v)), "node {v}");
        }
    }

    #[test]
    fn query_handle_read_batch_scopes_to_reader_set() {
        let g = social_graph(70, 3, 33);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let events = generate_events(
            70,
            &WorkloadConfig {
                events: 800,
                write_to_read: 1e9,
                seed: 34,
                ..Default::default()
            },
        );
        sys.ingest(&events);
        let h = sys.attach(EgoQuery::new(Sum).filter(|v| v.0 < 10));
        let nodes: Vec<NodeId> = (0..70u32).map(NodeId).collect();
        let batch = h.read_batch(&nodes);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(batch[i], h.read(v), "batch vs point at {v:?}");
        }
        assert!(batch[20..].iter().all(Option::is_none));
    }

    #[test]
    fn mutate_topology_reports_and_answers() {
        let n = 24u32;
        let g = social_graph(n as usize, 3, 5);
        let sys = EagrSystem::builder(EgoQuery::new(Sum))
            .overlay(OverlayAlgorithm::Vnma)
            .build(&g);
        let writes: Vec<Event> = (0..n)
            .map(|v| Event::Write {
                node: NodeId(v),
                value: v as i64 + 1,
            })
            .collect();
        sys.ingest(&writes);

        // Pick a non-adjacent live pair and an existing edge deterministically.
        let absent = g
            .nodes()
            .flat_map(|u| g.nodes().map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !g.has_edge(u, v))
            .expect("sparse graph has a missing edge");
        let present = g.edges().next().expect("graph has edges");
        let muts = [
            Event::AddNode { node: NodeId(n) },
            Event::AddEdge {
                from: NodeId(n),
                to: absent.1,
            },
            Event::AddEdge {
                from: absent.0,
                to: absent.1,
            },
            // Replayed duplicate: the edge now exists — skipped.
            Event::AddEdge {
                from: absent.0,
                to: absent.1,
            },
            Event::RemoveEdge {
                from: present.0,
                to: present.1,
            },
            // Dead edge: just removed — skipped.
            Event::RemoveEdge {
                from: present.0,
                to: present.1,
            },
        ];
        let rep = sys.mutate_topology(&muts);
        assert_eq!(rep.applied, 4);
        assert_eq!(rep.skipped, 2);
        assert_eq!(rep.epochs, 1);
        assert!(rep.fresh_overlay_nodes > 0, "new node grows the overlay");
        let stats = sys.registry_stats();
        assert_eq!(stats.topo.applied, 4);
        assert_eq!(stats.topo.epochs, 1);

        // The mutated graph, mirrored for the oracle.
        let mut gm = g.clone();
        let fresh = gm.add_node();
        assert_eq!(fresh, NodeId(n));
        gm.add_edge(NodeId(n), absent.1);
        gm.add_edge(absent.0, absent.1);
        gm.remove_edge(present.0, present.1);
        // The fresh writer participates immediately.
        sys.write(NodeId(n), 1000, n as u64 + 1);
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        for (ts, e) in writes.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                oracle.write(node, value, ts as u64);
            }
        }
        oracle.write(NodeId(n), 1000, n as u64 + 1);
        for v in gm.nodes() {
            if let Some(got) = sys.read(v) {
                assert_eq!(got, oracle.read(&gm, v), "node {v:?} after repair");
            }
        }
    }

    #[test]
    fn removed_node_stops_answering_and_contributing() {
        let g = social_graph(20, 3, 11);
        let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
        let writes: Vec<Event> = (0..20u32)
            .map(|v| Event::Write {
                node: NodeId(v),
                value: 1,
            })
            .collect();
        sys.ingest(&writes);
        let victim = NodeId(3);
        let rep = sys.mutate_topology(&[Event::RemoveNode { node: victim }]);
        assert_eq!(rep.applied, 1);
        assert!(rep.retired_overlay_nodes > 0);
        assert_eq!(sys.read(victim), None, "retired reader answers nothing");
        let mut gm = g.clone();
        gm.remove_node(victim);
        let mut oracle = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        for (ts, e) in writes.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                if node != victim {
                    oracle.write(node, value, ts as u64);
                }
            }
        }
        for v in gm.nodes() {
            if let Some(got) = sys.read(v) {
                assert_eq!(got, oracle.read(&gm, v), "node {v:?} after removal");
            }
        }
    }

    #[test]
    fn churn_stream_agrees_across_modes() {
        use eagr_gen::{churn_stream, ChurnConfig};
        let n = 40;
        let g = social_graph(n, 3, 7);
        let epochs = churn_stream(
            &g,
            &ChurnConfig {
                epochs: 3,
                epoch_events: 300,
                churn_fraction: 0.08,
                node_churn: 0.25,
                seed: 77,
                ..Default::default()
            },
        );
        let build = |mode| {
            EagrSystem::builder(EgoQuery::new(Sum))
                .overlay(OverlayAlgorithm::Vnma)
                .execution(mode)
                .build(&g)
        };
        let local = build(ExecutionMode::SingleThreaded);
        let pooled = build(ExecutionMode::TwoPool(ParallelConfig {
            write_threads: 2,
            read_threads: 1,
        }));
        let sharded = build(ExecutionMode::Sharded { shards: 3 });
        let mut bound = g.id_bound();
        for batch in &epochs {
            let rl = local.ingest(batch);
            let rp = pooled.ingest(batch);
            let rs = sharded.ingest(batch);
            assert_eq!(rl, rp, "local vs two-pool ingest report");
            assert_eq!(rl, rs, "local vs sharded ingest report");
            assert!(rl.mutations > 0, "churn epochs carry mutations");
            for e in batch {
                if let Event::AddNode { node } = *e {
                    bound = bound.max(node.idx() + 1);
                }
            }
            let nodes: Vec<NodeId> = (0..bound as u32).map(NodeId).collect();
            let vl = local.read_batch(&nodes);
            let vp = pooled.read_batch(&nodes);
            let vs = sharded.read_batch(&nodes);
            assert_eq!(vl, vp, "local vs two-pool answers under churn");
            assert_eq!(vl, vs, "local vs sharded answers under churn");
        }
        let tl = local.registry_stats().topo;
        let ts = sharded.registry_stats().topo;
        assert_eq!(tl, ts, "topology accounting agrees across modes");
        assert!(tl.epochs >= epochs.len() as u64);
        assert!(tl.applied > 0);
    }
}
