//! A naive reference evaluator ("on-demand traversal" of §1).
//!
//! [`NaiveOracle`] maintains per-writer windows and answers reads by
//! folding the raw in-window values of `N(v)` on every query — no sharing,
//! no pre-computation, no overlay. It is the ground truth the engine tests
//! compare against, and doubles as the conceptual model of the naive
//! approach the paper argues is "unlikely to scale".

use eagr_agg::{Aggregate, WindowBuffer, WindowSpec};
use eagr_graph::{DataGraph, Neighborhood, NodeId};
use eagr_util::FastMap;

/// Ground-truth evaluator for an ego-centric aggregate query.
pub struct NaiveOracle<A: Aggregate> {
    agg: A,
    window: WindowSpec,
    neighborhood: Neighborhood,
    windows: FastMap<u32, WindowBuffer>,
}

impl<A: Aggregate> NaiveOracle<A> {
    /// New oracle for ⟨F, w, N⟩.
    pub fn new(agg: A, window: WindowSpec, neighborhood: Neighborhood) -> Self {
        Self {
            agg,
            window,
            neighborhood,
            windows: FastMap::default(),
        }
    }

    /// Record a write.
    pub fn write(&mut self, v: NodeId, value: i64, ts: u64) {
        let mut sink = Vec::new();
        self.windows
            .entry(v.0)
            .or_insert_with(|| WindowBuffer::new(self.window))
            .push(ts, value, &mut sink);
    }

    /// Advance time (time-based windows).
    pub fn advance_time(&mut self, ts: u64) {
        let mut sink = Vec::new();
        for w in self.windows.values_mut() {
            w.advance(ts, &mut sink);
            sink.clear();
        }
    }

    /// Evaluate the query at `v` from scratch.
    pub fn read(&self, g: &DataGraph, v: NodeId) -> A::Output {
        let mut p = self.agg.empty();
        for u in self.neighborhood.select(g, v) {
            if let Some(w) = self.windows.get(&u.0) {
                for val in w.values() {
                    self.agg.insert(&mut p, val);
                }
            }
        }
        self.agg.finalize(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::{Max, Sum};
    use eagr_graph::paper_example_graph;

    #[test]
    fn oracle_reproduces_paper_numbers() {
        let g = paper_example_graph();
        let mut o = NaiveOracle::new(Sum, WindowSpec::Tuple(1), Neighborhood::In);
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut ts = 0;
        for (node, vals) in streams {
            for &v in vals {
                o.write(NodeId(node), v, ts);
                ts += 1;
            }
        }
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(o.read(&g, NodeId(v as u32)), w);
        }
    }

    #[test]
    fn oracle_with_max_and_wider_window() {
        let g = paper_example_graph();
        let mut o = NaiveOracle::new(Max, WindowSpec::Tuple(2), Neighborhood::In);
        o.write(NodeId(2), 100, 0);
        o.write(NodeId(2), 1, 1);
        o.write(NodeId(2), 2, 2); // 100 expired; window = {1, 2}
        assert_eq!(o.read(&g, NodeId(0)), Some(2));
    }

    #[test]
    fn time_advance() {
        let g = paper_example_graph();
        let mut o = NaiveOracle::new(Sum, WindowSpec::Time(10), Neighborhood::In);
        o.write(NodeId(2), 5, 0);
        o.advance_time(100);
        assert_eq!(o.read(&g, NodeId(0)), 0);
    }
}
