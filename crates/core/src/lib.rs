//! # EAGr — continuous ego-centric aggregate queries over dynamic graphs
//!
//! A from-scratch Rust implementation of *"EAGr: Supporting Continuous
//! Ego-centric Aggregate Queries over Large Dynamic Graphs"* (Mondal &
//! Deshpande, SIGMOD 2014). EAGr evaluates one aggregate query per graph
//! node — each over that node's neighborhood — against high-rate update
//! streams, by compiling the query into an **aggregation overlay graph**
//! that shares partial aggregates across overlapping neighborhoods and
//! annotates every node with an optimal **push/pull** decision.
//!
//! ## Quick start
//!
//! ```
//! use eagr::prelude::*;
//!
//! // A small social graph and the paper's running query:
//! // SUM over each node's in-neighbors' latest values.
//! let g = eagr::gen::social_graph(200, 4, 7);
//! let sys = EagrSystem::builder(EgoQuery::new(Sum)).build(&g);
//!
//! sys.write(NodeId(3), 10, 0);
//! sys.write(NodeId(5), 32, 1);
//! let trend = sys.read(NodeId(0));
//! assert!(trend.is_some());
//! println!("ego-centric sum at node 0: {:?}", trend);
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper |
//! |---|---|---|
//! | [`graph`] | dynamic data graph, neighborhoods, bipartite writer/reader graph | §2.1, §3.1 |
//! | [`agg`] | aggregate API (PAOs), built-ins, windows, cost model | §2.2.3, §4.2 |
//! | [`overlay`] | overlay structure, FP-tree mining, VNM/VNM_A/VNM_N/VNM_D, IOB, dynamic maintenance | §2.2.1, §3 |
//! | [`flow`] | push/pull frequencies, max-flow decisions, pruning, greedy, splitting, adaptation | §4 |
//! | [`exec`] | single-threaded, two-pool, and sharded engines; runtime adaptation; metrics | §2.2.2 |
//! | [`gen`] | synthetic graphs, Zipfian workloads, event batches, shifting traces | §5.1 |

#![forbid(unsafe_code)]

pub mod oracle;
pub mod query;
pub(crate) mod registry;
pub mod system;

pub use oracle::NaiveOracle;
pub use query::{EgoQuery, NodePredicate, QueryMode};
pub use registry::{AttachReport, DetachReport, IngestReport, RegistryStats, TopoReport};
pub use system::{
    EagrSystem, ExecutionMode, OverlayAlgorithm, QueryHandle, SystemBuilder, SystemStats,
};

pub use eagr_agg as agg;
pub use eagr_exec as exec;
pub use eagr_flow as flow;
pub use eagr_gen as gen;
pub use eagr_graph as graph;
pub use eagr_overlay as overlay;
pub use eagr_util as util;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::oracle::NaiveOracle;
    pub use crate::query::{EgoQuery, QueryMode};
    pub use crate::registry::{
        AttachReport, DetachReport, IngestReport, RegistryStats, TopoReport,
    };
    pub use crate::system::{
        EagrSystem, ExecutionMode, OverlayAlgorithm, QueryHandle, SystemStats,
    };
    pub use eagr_agg::{
        Aggregate, Avg, CostModel, Count, Distinct, Max, Min, Sum, TopK, WindowSpec,
    };
    pub use eagr_exec::{
        throughput, LatencyRecorder, MigrationReport, ParallelConfig, RebalancePolicy,
        ShardedConfig,
    };
    pub use eagr_flow::{DecisionAlgorithm, Rates};
    pub use eagr_gen::{batch_events, EventBatch};
    pub use eagr_graph::{DataGraph, Neighborhood, NodeId};
}
