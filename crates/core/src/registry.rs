//! The live query registry behind [`EagrSystem`](crate::system::EagrSystem):
//! multi-query serving with attach/detach over shared overlay state (the
//! §3 aggregation-sharing story exercised at *runtime*).
//!
//! Queries are grouped into **strata**: all queries with the same window
//! spec and a compatible neighborhood share one overlay + engine, because
//! within a stratum an overlay reader for data node `v` computes exactly
//! the same answer for every query (the overlay allows one reader per data
//! node). Attaching a query to an existing stratum extends the overlay *in
//! place* — ids are append-only stable — reusing existing writers, readers,
//! and partial aggregation nodes, and carries the warm engine state (window
//! buffers + PAOs) across the runtime rebuild by index. Detaching releases
//! per-node reference counts and retires exactly the nodes no remaining
//! query reads.
//!
//! Fresh writers created mid-stream are backfilled from a bounded
//! [`WriteHistory`] ring; writers whose ring has evicted in-window entries
//! are reported as *cold* in the [`AttachReport`] (they warm up as the
//! stream progresses, same as any newly deployed query would).

use eagr_agg::{Aggregate, WindowBuffer, WindowSpec};
use eagr_exec::{EngineCore, EngineState, ParallelEngine, ShardedEngine, TransportError};
use eagr_flow::Decisions;
use eagr_graph::{Neighborhood, NodeId};
use eagr_overlay::{Overlay, OverlayId, OverlayKind, RefCounts};
use eagr_util::{FastMap, FastSet};
use std::collections::VecDeque;
use std::sync::Arc;

/// What one batch-ingestion call executed, returned by
/// [`EagrSystem::ingest`](crate::system::EagrSystem::ingest) and
/// [`write_batch`](crate::system::EagrSystem::write_batch).
///
/// Counts are per *event*, not per stratum: a write feeds every registered
/// query but is still one write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Content updates applied (each fans out to all registered queries).
    pub writes: usize,
    /// Read events evaluated.
    pub reads: usize,
    /// Topology mutations in the batch (edge/node churn), counted once per
    /// event regardless of execution mode or per-stratum validity — see
    /// [`TopoReport`] for what actually applied.
    pub mutations: usize,
}

impl IngestReport {
    /// Total events processed.
    pub fn total(&self) -> usize {
        self.writes + self.reads + self.mutations
    }
}

/// What the dynamic-topology path has done so far, accumulated across
/// every mutation run ([`EagrSystem::mutate_topology`](crate::system::EagrSystem::mutate_topology)
/// and topology runs inside mixed [`ingest`](crate::system::EagrSystem::ingest)
/// batches) and reported in [`RegistryStats::topo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopoReport {
    /// Mutation runs applied (each run is one topology epoch per stratum).
    pub epochs: u64,
    /// Mutations applied to the shared data graph.
    pub applied: u64,
    /// Mutations skipped as invalid against the live graph (duplicate
    /// edge, missing endpoint, already-removed node, …).
    pub skipped: u64,
    /// Overlay nodes appended by incremental repair, summed across strata.
    pub fresh_overlay_nodes: u64,
    /// Overlay nodes retired by repair, summed across strata.
    pub retired_overlay_nodes: u64,
    /// Push nodes rematerialized after repair (fresh + upgraded + dirty
    /// closure), summed across strata.
    pub rematerialized: u64,
}

impl TopoReport {
    pub(crate) fn absorb(&mut self, other: &TopoReport) {
        self.epochs += other.epochs;
        self.applied += other.applied;
        self.skipped += other.skipped;
        self.fresh_overlay_nodes += other.fresh_overlay_nodes;
        self.retired_overlay_nodes += other.retired_overlay_nodes;
        self.rematerialized += other.rematerialized;
    }
}

/// What attaching a query reused vs. materialized, returned via
/// [`QueryHandle::attach_report`](crate::system::QueryHandle::attach_report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttachReport {
    /// Whether the query joined an existing stratum (shared overlay +
    /// engine) instead of compiling a cold one.
    pub shared_stratum: bool,
    /// Overlay nodes newly created and materialized for this attach.
    pub fresh_paos: usize,
    /// Already-materialized overlay nodes this query now reads — the
    /// numerator of the reuse fraction.
    pub reused_paos: usize,
    /// Existing partial aggregation nodes wired into the query's fresh
    /// readers (§3's sharing, found at attach time).
    pub reused_partials: usize,
    /// Pre-existing pull nodes upgraded to push by the frontier closure
    /// (their PAOs were materialized during attach).
    pub upgraded: usize,
    /// Fresh writers whose windows were exactly reconstructed from the
    /// write-history ring.
    pub backfilled_writers: usize,
    /// Fresh writers whose ring had evicted in-window entries — they start
    /// cold and warm up as the stream progresses.
    pub cold_writers: usize,
}

impl AttachReport {
    /// Overlay nodes whose PAOs had to be (re)materialized by this attach:
    /// fresh nodes plus pull→push upgrades. A warm attach of an
    /// overlapping query materializes strictly fewer than its cold build
    /// would.
    pub fn materialized(&self) -> usize {
        self.fresh_paos + self.upgraded
    }

    /// Fraction of the overlay nodes this query reads that were already
    /// materialized before the attach (`0` for a cold build).
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.reused_paos + self.materialized();
        if total == 0 {
            0.0
        } else {
            self.reused_paos as f64 / total as f64
        }
    }
}

/// What detaching a query tore down vs. left for others, returned by
/// [`EagrSystem::detach`](crate::system::EagrSystem::detach).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetachReport {
    /// Overlay nodes whose reference count hit zero and were retired.
    pub retired_paos: usize,
    /// Overlay nodes the query read that remain alive for other queries.
    pub retained_paos: usize,
    /// Whether the whole stratum (overlay + engine) was dropped because
    /// this was its last query.
    pub stratum_dropped: bool,
}

/// Registry-level summary, via
/// [`EagrSystem::registry_stats`](crate::system::EagrSystem::registry_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Live strata (distinct window/neighborhood groups with ≥1 query).
    pub strata: usize,
    /// Attached queries.
    pub queries: usize,
    /// Live overlay nodes summed across strata.
    pub live_nodes: usize,
    /// Committed live migrations summed across sharded strata (see
    /// [`ShardedEngine::rebalances`](eagr_exec::ShardedEngine::rebalances)).
    pub rebalances: u64,
    /// Overlay nodes moved across shards by those migrations.
    pub nodes_migrated: u64,
    /// Slab slots currently orphaned by migration, awaiting compaction.
    pub orphaned_pao_slots: u64,
    /// Orphaned slab slots reclaimed by compaction so far.
    pub slots_reclaimed: u64,
    /// Cumulative dynamic-topology activity (mutation runs, churn applied,
    /// overlay repair volume).
    pub topo: TopoReport,
}

// ---------------------------------------------------------------------------
// Write history (attach-time window backfill)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct NodeHistory {
    /// `(ts, value)` in arrival order; bounded by the ring capacity.
    entries: VecDeque<(u64, i64)>,
    /// Whether any entry has been evicted (the ring is lossy for this node).
    evicted: bool,
}

/// A bounded per-node ring of recent writes, fed by every facade write
/// path. Attaching a query whose overlay extension creates a *fresh*
/// writer replays this ring into the writer's window buffer so the new
/// query answers over history it never observed live.
#[derive(Clone, Debug)]
pub(crate) struct WriteHistory {
    cap: usize,
    rings: FastMap<NodeId, NodeHistory>,
}

impl WriteHistory {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            cap,
            rings: FastMap::default(),
        }
    }

    /// Record one write. `O(1)`; a no-op when backfill is disabled
    /// (`cap == 0`).
    pub(crate) fn record(&mut self, v: NodeId, value: i64, ts: u64) {
        if self.cap == 0 {
            return;
        }
        let h = self.rings.entry(v).or_default();
        h.entries.push_back((ts, value));
        if h.entries.len() > self.cap {
            h.entries.pop_front();
            h.evicted = true;
        }
    }

    /// Reconstruct `v`'s window as of stream position `now`. The second
    /// component reports whether the reconstruction is *exact* — i.e. the
    /// ring provably retained every write still inside the window.
    pub(crate) fn backfill(&self, v: NodeId, spec: WindowSpec, now: u64) -> (WindowBuffer, bool) {
        let mut buf = WindowBuffer::new(spec);
        let Some(h) = self.rings.get(&v) else {
            // Node never written (exact) — or history disabled (cold).
            return (buf, self.cap > 0);
        };
        let mut entries: Vec<(u64, i64)> = h.entries.iter().copied().collect();
        entries.sort_by_key(|e| e.0);
        let oldest_retained = entries.first().map(|e| e.0);
        let mut expired = Vec::new();
        for (ts, value) in entries {
            buf.push(ts, value, &mut expired);
        }
        let exact = !h.evicted
            || match spec {
                WindowSpec::Tuple(c) => buf.len() >= c,
                WindowSpec::Time(t) => {
                    // Every evicted entry is at least as old as the oldest
                    // retained one; if that is already outside the window,
                    // nothing in-window was lost.
                    oldest_retained.is_some_and(|ts| ts <= now.saturating_sub(t))
                }
                WindowSpec::Unbounded => false,
            };
        (buf, exact)
    }
}

// ---------------------------------------------------------------------------
// Strata
// ---------------------------------------------------------------------------

/// The engine a stratum dispatches to, per
/// [`ExecutionMode`](crate::system::ExecutionMode). Engines sit behind
/// `Arc` so attach/detach can rebuild a stratum's runtime while handles
/// hold clones of the registry lock only, never of the engine.
/// The facade's transport-failure policy: the sharded engine reports
/// shard-peer loss as a typed [`TransportError`], and callers that can
/// recover handle the `Result` on [`ShardedEngine`] directly. The facade's
/// own synchronous API has no error channel, so it treats a dead shard
/// runtime as fatal — with the transport's first-cause diagnostics, unlike
/// the blind per-send panics this replaced.
pub(crate) fn transport_ok<T>(r: Result<T, TransportError>) -> T {
    r.unwrap_or_else(|e| panic!("sharded runtime lost its shard transport: {e}"))
}

pub(crate) enum Runtime<A: Aggregate> {
    /// Synchronous execution on the shared core.
    Local(Arc<EngineCore<A>>),
    /// Shared core + resident two-pool engine for batch ingestion.
    TwoPool {
        core: Arc<EngineCore<A>>,
        engine: ParallelEngine<A>,
    },
    /// Shard-owned runtime (PAOs live in shard slabs inside the engine).
    Sharded(Arc<ShardedEngine<A>>),
}

impl<A: Aggregate> Runtime<A> {
    /// Wait until all in-flight asynchronous work is applied (no-op for
    /// the synchronous local runtime). Attach/detach quiesce before
    /// snapshotting state.
    pub(crate) fn quiesce(&self) {
        match self {
            Runtime::Local(_) => {}
            Runtime::TwoPool { engine, .. } => engine.drain(),
            Runtime::Sharded(eng) => transport_ok(eng.drain()),
        }
    }

    /// Epoch-consistent point read (shard-executed in sharded mode).
    pub(crate) fn read(&self, v: NodeId) -> Option<A::Output> {
        match self {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.read(v),
            Runtime::Sharded(eng) => transport_ok(eng.read_service(v)),
        }
    }

    /// Epoch-consistent batch read (fanned out through the shard inboxes
    /// in sharded mode).
    pub(crate) fn read_batch(&self, nodes: &[NodeId]) -> Vec<Option<A::Output>> {
        match self {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => {
                nodes.iter().map(|&v| core.read(v)).collect()
            }
            Runtime::Sharded(eng) => transport_ok(eng.read_batch(nodes)),
        }
    }

    /// Snapshot window + PAO state for a rebuild (quiesce first).
    pub(crate) fn export_state(&self) -> EngineState<A::Partial> {
        match self {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => core.export_state(),
            Runtime::Sharded(eng) => eng.core().export_state(),
        }
    }

    /// Seed a freshly built runtime: install carried state, backfill fresh
    /// writers, then materialize fresh/upgraded push nodes in topological
    /// order (writers before the partials and readers they feed).
    pub(crate) fn seed(
        &self,
        carried: Option<&EngineState<A::Partial>>,
        backfill: &[(OverlayId, WindowBuffer)],
        fresh_push: &FastSet<OverlayId>,
    ) {
        match self {
            Runtime::Local(core) | Runtime::TwoPool { core, .. } => {
                seed_core(core, carried, backfill, fresh_push)
            }
            Runtime::Sharded(eng) => seed_core(&eng.core(), carried, backfill, fresh_push),
        }
    }
}

fn seed_core<A: Aggregate, S: eagr_exec::PaoStore<A::Partial>>(
    core: &EngineCore<A, S>,
    carried: Option<&EngineState<A::Partial>>,
    backfill: &[(OverlayId, WindowBuffer)],
    fresh_push: &FastSet<OverlayId>,
) {
    if let Some(state) = carried {
        core.install_state(state);
    }
    for (wid, buf) in backfill {
        core.install_window(*wid, buf);
    }
    if fresh_push.is_empty() && backfill.is_empty() {
        return;
    }
    let overlay = core.overlay();
    for n in overlay.topo_order() {
        if overlay.is_retired(n) || !core.is_push(n) {
            continue;
        }
        let backfilled = backfill.iter().any(|(wid, _)| *wid == n);
        if !fresh_push.contains(&n) && !backfilled {
            continue;
        }
        if matches!(overlay.kind(n), OverlayKind::Writer(_)) {
            core.rebuild_writer_pao(n);
        } else {
            core.materialize(n);
        }
    }
}

/// One window/neighborhood group: a shared overlay + engine serving every
/// query attached to it.
pub(crate) struct Stratum<A: Aggregate> {
    pub(crate) agg: A,
    pub(crate) window: WindowSpec,
    pub(crate) neighborhood: Neighborhood,
    /// Mutable master copy of the overlay (the runtime holds a frozen
    /// `Arc` clone of it; rebuilds re-freeze after extension/retirement).
    pub(crate) overlay: Overlay,
    pub(crate) decisions: Decisions,
    pub(crate) runtime: Runtime<A>,
    /// Per-node query reference counts over [`eagr_overlay::used_subtree`]
    /// sets.
    pub(crate) refs: RefCounts,
    /// Attached queries.
    pub(crate) queries: usize,
}

impl<A: Aggregate> Stratum<A> {
    /// Whether a query's shape can share this stratum: identical window,
    /// compatible neighborhood. [`Neighborhood`] has no `Eq` (filters are
    /// opaque closures) — filtered neighborhoods compare by base shape and
    /// filter *pointer* identity, so reusing one `Neighborhood` value
    /// across queries shares a stratum while distinct closures stay apart.
    pub(crate) fn compatible(&self, window: WindowSpec, n: &Neighborhood) -> bool {
        self.window == window && neighborhood_compatible(&self.neighborhood, n)
    }
}

pub(crate) fn neighborhood_compatible(a: &Neighborhood, b: &Neighborhood) -> bool {
    match (a, b) {
        (Neighborhood::In, Neighborhood::In)
        | (Neighborhood::Out, Neighborhood::Out)
        | (Neighborhood::Undirected, Neighborhood::Undirected) => true,
        (Neighborhood::KHopIn(x), Neighborhood::KHopIn(y))
        | (Neighborhood::KHopOut(x), Neighborhood::KHopOut(y)) => x == y,
        (
            Neighborhood::Filtered {
                base: ba,
                filter: fa,
            },
            Neighborhood::Filtered {
                base: bb,
                filter: fb,
            },
        ) => Arc::ptr_eq(fa, fb) && neighborhood_compatible(ba, bb),
        _ => false,
    }
}

/// One attached query.
pub(crate) struct QueryEntry {
    /// Index into [`Registry::strata`].
    pub(crate) stratum: usize,
    /// The query's reader data nodes (sorted; membership check for
    /// handle-scoped reads).
    pub(crate) readers: Vec<NodeId>,
    /// The query's [`eagr_overlay::used_subtree`] — the nodes it holds
    /// references on.
    pub(crate) used: Vec<OverlayId>,
    pub(crate) report: AttachReport,
}

/// All live strata + queries. Lives behind the system's registry lock.
pub(crate) struct Registry<A: Aggregate> {
    /// Slot per stratum; `None` once dropped (indices stay stable).
    pub(crate) strata: Vec<Option<Stratum<A>>>,
    pub(crate) queries: FastMap<u64, QueryEntry>,
    /// Cumulative dynamic-topology activity.
    pub(crate) topo: TopoReport,
}

impl<A: Aggregate> Registry<A> {
    pub(crate) fn new() -> Self {
        Self {
            strata: Vec::new(),
            queries: FastMap::default(),
            topo: TopoReport::default(),
        }
    }

    /// The first live stratum — the target of the legacy single-query
    /// facade methods (`read`, `advance_time`, …).
    pub(crate) fn primary(&self) -> Option<&Stratum<A>> {
        self.strata.iter().flatten().next()
    }

    /// All live strata.
    pub(crate) fn live(&self) -> impl Iterator<Item = &Stratum<A>> {
        self.strata.iter().flatten()
    }

    /// Index of a stratum compatible with `(window, neighborhood)`.
    pub(crate) fn find_compatible(&self, window: WindowSpec, n: &Neighborhood) -> Option<usize> {
        self.strata
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.compatible(window, n)))
    }

    pub(crate) fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats {
            strata: self.live().count(),
            queries: self.queries.len(),
            live_nodes: self.live().map(|s| s.overlay.live_node_count()).sum(),
            topo: self.topo,
            ..RegistryStats::default()
        };
        for s in self.live() {
            if let Runtime::Sharded(eng) = &s.runtime {
                stats.rebalances += eng.rebalances();
                stats.nodes_migrated += eng.nodes_migrated();
                stats.orphaned_pao_slots += eng.orphaned_pao_slots();
                stats.slots_reclaimed += eng.slots_reclaimed();
            }
        }
        stats
    }
}
