//! The ego-centric aggregate query ⟨F, w, N, pred⟩ (paper §2.1).

use eagr_agg::{Aggregate, WindowSpec};
use eagr_graph::{Neighborhood, NodeId};
use std::sync::Arc;

/// Continuous vs quasi-continuous execution (§1 draws this distinction:
/// continuous results must track every update; quasi-continuous results are
/// only needed on reads, enabling *selective* pre-computation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Results kept up to date on every update (anomaly detection). Maps to
    /// all-push execution over the shared overlay.
    Continuous,
    /// Results produced on demand (trend feeds); the §4 planner chooses
    /// push/pull per node.
    QuasiContinuous,
}

/// Node predicate selecting which nodes get readers.
pub type NodePredicate = Arc<dyn Fn(NodeId) -> bool + Send + Sync>;

/// An ego-centric aggregate query: aggregate function `F`, sliding window
/// `w`, neighborhood function `N`, and reader predicate `pred`.
#[derive(Clone)]
pub struct EgoQuery<A: Aggregate> {
    /// The aggregate function `F`.
    pub aggregate: A,
    /// Sliding window over each content stream.
    pub window: WindowSpec,
    /// Neighborhood selection function `N`.
    pub neighborhood: Neighborhood,
    /// Which nodes the aggregate is computed for.
    pub predicate: NodePredicate,
    /// Continuous or quasi-continuous.
    pub mode: QueryMode,
}

impl<A: Aggregate> std::fmt::Debug for EgoQuery<A> {
    /// Manual impl: the predicate is an opaque `Arc<dyn Fn>`; the aggregate
    /// prints by name. Registered queries are loggable this way.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EgoQuery")
            .field("aggregate", &self.aggregate.name())
            .field("window", &self.window)
            .field("neighborhood", &self.neighborhood)
            .field("predicate", &"<pred>")
            .field("mode", &self.mode)
            .finish()
    }
}

impl<A: Aggregate> EgoQuery<A> {
    /// A query over every node's 1-hop in-neighborhood with the latest
    /// value per neighbor (the paper's running example ⟨F, c=1, N, true⟩).
    pub fn new(aggregate: A) -> Self {
        Self {
            aggregate,
            window: WindowSpec::Tuple(1),
            neighborhood: Neighborhood::In,
            predicate: Arc::new(|_| true),
            mode: QueryMode::QuasiContinuous,
        }
    }

    /// Set the sliding window.
    pub fn window(mut self, w: WindowSpec) -> Self {
        self.window = w;
        self
    }

    /// Set the neighborhood function.
    pub fn neighborhood(mut self, n: Neighborhood) -> Self {
        self.neighborhood = n;
        self
    }

    /// Restrict the readers.
    pub fn filter(mut self, pred: impl Fn(NodeId) -> bool + Send + Sync + 'static) -> Self {
        self.predicate = Arc::new(pred);
        self
    }

    /// Set continuous/quasi-continuous execution.
    pub fn mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::Sum;

    #[test]
    fn builder_defaults_match_paper_example() {
        let q = EgoQuery::new(Sum);
        assert_eq!(q.window, WindowSpec::Tuple(1));
        assert!(matches!(q.neighborhood, Neighborhood::In));
        assert_eq!(q.mode, QueryMode::QuasiContinuous);
        assert!((q.predicate)(NodeId(5)));
    }

    #[test]
    fn builder_overrides() {
        let q = EgoQuery::new(Sum)
            .window(WindowSpec::Time(60))
            .neighborhood(Neighborhood::KHopIn(2))
            .filter(|v| v.0 < 10)
            .mode(QueryMode::Continuous);
        assert_eq!(q.window, WindowSpec::Time(60));
        assert_eq!(q.mode, QueryMode::Continuous);
        assert!((q.predicate)(NodeId(9)));
        assert!(!(q.predicate)(NodeId(10)));
    }
}
