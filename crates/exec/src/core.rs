//! The shared execution core (paper §2.2.2).
//!
//! [`EngineCore`] holds the frozen overlay plus all runtime state:
//!
//! * one [`WindowBuffer`] per writer (the content streams `S_v` under the
//!   query's sliding window),
//! * one PAO slot per overlay node in a pluggable [`PaoStore`] backend —
//!   per-PAO `RwLock`s ([`LockedStore`], the paper's "explicit
//!   synchronization" choice) for the single-threaded and two-pool engines,
//!   or shard slabs ([`crate::store::ShardedStore`]) for the sharded
//!   runtime,
//! * an atomic push/pull flag per node — dataflow decisions are consulted
//!   on every op and flipped rarely (§4.8), so they live in `AtomicBool`s
//!   rather than under a lock,
//! * observed push/pull counters per node feeding the adaptive controller.
//!
//! A write shifts the writer's window into `Insert`/`Remove` delta ops and
//! propagates them through push-annotated consumers (negative edges flip
//! the op, §2.2.1); a read finalizes a push reader's PAO directly or
//! recursively merges upstream PAOs for pull readers. Reads may observe
//! slightly stale state under concurrency — the paper explicitly accepts
//! this ("we ignore the potential for such inconsistencies").

use crate::store::{LockedStore, PaoReader, PaoStore, StoreReader};
use eagr_agg::{Aggregate, DeltaOp, Sign, WindowBuffer, WindowSpec};
use eagr_flow::{Decision, Decisions, Frequencies};
use eagr_graph::NodeId;
use eagr_overlay::{Overlay, OverlayId, OverlayKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared engine state, generic over the PAO storage backend `S`. The
/// single-threaded [`Engine`](crate::Engine), the two-pool
/// [`ParallelEngine`](crate::ParallelEngine), and the shard-owned
/// [`ShardedEngine`](crate::ShardedEngine) all run on top of it — the first
/// two over the default [`LockedStore`], the last over a
/// [`crate::store::ShardedStore`].
pub struct EngineCore<
    A: Aggregate,
    S: PaoStore<A::Partial> = LockedStore<<A as Aggregate>::Partial>,
> {
    agg: A,
    overlay: Arc<Overlay>,
    push_flag: Vec<AtomicBool>,
    store: S,
    windows: Vec<Option<Mutex<WindowBuffer>>>,
    /// Ops applied at each node (observed push activity).
    pushed: Vec<AtomicU64>,
    /// Times each node was read/evaluated (observed pull activity).
    pulled: Vec<AtomicU64>,
}

impl<A: Aggregate> EngineCore<A> {
    /// Build the runtime state for an overlay + decisions over the default
    /// per-PAO-lock storage.
    pub fn new(agg: A, overlay: Arc<Overlay>, decisions: &Decisions, window: WindowSpec) -> Self {
        let store = LockedStore::new(overlay.node_count(), || agg.empty());
        Self::with_store(agg, overlay, decisions, window, store)
    }
}

impl<A: Aggregate, S: PaoStore<A::Partial>> EngineCore<A, S> {
    /// Build the runtime state over an explicit PAO storage backend.
    ///
    /// # Panics
    /// Panics if `decisions` or `store` do not cover every overlay node.
    pub fn with_store(
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        window: WindowSpec,
        store: S,
    ) -> Self {
        let n = overlay.node_count();
        assert_eq!(decisions.of.len(), n, "decisions must cover every node");
        assert_eq!(store.len(), n, "store must cover every node");
        let push_flag = decisions
            .of
            .iter()
            .map(|&d| AtomicBool::new(d == Decision::Push))
            .collect();
        let windows = (0..n as u32)
            .map(|i| {
                let id = OverlayId(i);
                if !overlay.is_retired(id) && matches!(overlay.kind(id), OverlayKind::Writer(_)) {
                    Some(Mutex::new(WindowBuffer::new(window)))
                } else {
                    None
                }
            })
            .collect();
        let pushed = (0..n).map(|_| AtomicU64::new(0)).collect();
        let pulled = (0..n).map(|_| AtomicU64::new(0)).collect();
        Self {
            agg,
            overlay,
            push_flag,
            store,
            windows,
            pushed,
            pulled,
        }
    }

    /// The aggregate function.
    pub fn aggregate(&self) -> &A {
        &self.agg
    }

    /// The overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The PAO storage backend (e.g. for shard-scoped batch access).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Is node `n` currently push-annotated?
    #[inline]
    pub fn is_push(&self, n: OverlayId) -> bool {
        self.push_flag[n.idx()].load(Ordering::Relaxed)
    }

    /// Record one PAO update at `n` in the observed-push counters. Callers
    /// that bypass [`apply_op`](Self::apply_op) by mutating PAOs through a
    /// shard guard must call this per applied op so §4.8 adaptation keeps
    /// seeing true frequencies.
    #[inline]
    pub fn record_push(&self, n: OverlayId) {
        self.pushed[n.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Apply one delta op at a node's PAO and return it ready for further
    /// propagation. Increments the observed-push counter.
    #[inline]
    fn apply_at(&self, n: OverlayId, op: DeltaOp) {
        self.store.with_mut(n.idx(), |p| op.apply(&self.agg, p));
        self.record_push(n);
    }

    /// Process a write at data node `v` fully (uni-thread model): shift the
    /// window, apply the deltas at the writer, and propagate through every
    /// push-annotated downstream node. Returns the number of PAO updates
    /// performed (micro-tasks executed).
    pub fn write(&self, v: NodeId, value: i64, ts: u64) -> usize {
        let Some(wid) = self.overlay.writer(v) else {
            return 0; // writer feeds no reader: drop the update
        };
        let ops = self.window_ops(wid, value, ts);
        let mut done = 0;
        let mut stack: Vec<(OverlayId, DeltaOp)> = Vec::with_capacity(8);
        for op in ops {
            self.apply_at(wid, op);
            done += 1;
            self.fan_out(wid, op, &mut stack);
            while let Some((n, op)) = stack.pop() {
                self.apply_at(n, op);
                done += 1;
                self.fan_out(n, op, &mut stack);
            }
        }
        done
    }

    /// Shift the writer's window and return the delta ops (insert + any
    /// expirations). Public so shard-owning workers can ingest windows for
    /// their own writers; callers must keep per-writer submission order.
    pub fn window_ops(&self, wid: OverlayId, value: i64, ts: u64) -> Vec<DeltaOp> {
        let mut expired = Vec::new();
        let mut win = self.windows[wid.idx()]
            .as_ref()
            .expect("writer has a window")
            .lock();
        win.push(ts, value, &mut expired);
        drop(win);
        let mut ops = Vec::with_capacity(1 + expired.len());
        ops.push(DeltaOp::Insert(value));
        ops.extend(expired.into_iter().map(DeltaOp::Remove));
        ops
    }

    /// Queue-model entry point: ingest the write at the writer node only
    /// and return the micro-tasks for its push consumers.
    pub fn write_local(&self, v: NodeId, value: i64, ts: u64) -> Vec<(OverlayId, DeltaOp)> {
        let Some(wid) = self.overlay.writer(v) else {
            return Vec::new();
        };
        let ops = self.window_ops(wid, value, ts);
        let mut tasks = Vec::new();
        for op in ops {
            self.apply_at(wid, op);
            self.fan_out(wid, op, &mut tasks);
        }
        tasks
    }

    /// Queue-model micro-task: apply `op` at `n`, returning follow-on
    /// micro-tasks for `n`'s push consumers.
    pub fn apply_op(&self, n: OverlayId, op: DeltaOp, out: &mut Vec<(OverlayId, DeltaOp)>) {
        self.apply_at(n, op);
        self.fan_out(n, op, out);
    }

    #[inline]
    fn fan_out(&self, n: OverlayId, op: DeltaOp, out: &mut Vec<(OverlayId, DeltaOp)>) {
        for &(t, sign) in self.overlay.outputs(n) {
            if self.is_push(t) {
                out.push((t, op.signed(sign)));
            }
        }
    }

    /// Replay buffered migration deltas into a staged PAO (phase 2 of the
    /// two-phase migration): apply each op in arrival order to `pao`,
    /// which lives *outside* the store — it is the copy the rebalancer
    /// extracted from the old owner's slab in phase 1, about to be
    /// installed at the new owner via `relocate`. The observed-push
    /// counters are deliberately not touched: the old owner already
    /// recorded each of these ops when it applied them to the live slot,
    /// so re-recording would double-count §4.8 affinity evidence. Returns
    /// the number of ops replayed.
    pub fn replay_ops(&self, pao: &mut A::Partial, ops: impl IntoIterator<Item = DeltaOp>) -> u64 {
        let mut n = 0;
        for op in ops {
            op.apply(&self.agg, pao);
            n += 1;
        }
        n
    }

    /// Advance one writer's window to `ts` and return the expirations as
    /// `Remove` delta ops, *without* applying them. Public so shard-owning
    /// workers can expire the windows of their own writers and route the
    /// removals through their shard-local cascade — the caller-thread
    /// equivalent is [`advance_time`](Self::advance_time).
    pub fn expire_ops(&self, wid: OverlayId, ts: u64) -> Vec<DeltaOp> {
        let mut expired = Vec::new();
        self.windows[wid.idx()]
            .as_ref()
            .expect("writer has a window")
            .lock()
            .advance(ts, &mut expired);
        expired.into_iter().map(DeltaOp::Remove).collect()
    }

    /// Advance time to `ts` (time-based windows): expire stale values at
    /// every writer and propagate the removals. Returns PAO updates done.
    pub fn advance_time(&self, ts: u64) -> usize {
        let mut done = 0;
        let mut stack = Vec::new();
        for (wid, _) in self.overlay.writers() {
            for op in self.expire_ops(wid, ts) {
                self.apply_at(wid, op);
                done += 1;
                self.fan_out(wid, op, &mut stack);
                while let Some((n, op)) = stack.pop() {
                    self.apply_at(n, op);
                    done += 1;
                    self.fan_out(n, op, &mut stack);
                }
            }
        }
        done
    }

    /// Evaluate a read at data node `v` (uni-thread model). `None` if `v`
    /// has no reader in the overlay.
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        self.read_via(v, &StoreReader(&self.store))
    }

    /// Evaluate a read at data node `v`, resolving PAOs through an explicit
    /// [`PaoReader`]. This is the shard-executed read entry point: a shard
    /// worker hands a [`crate::store::ShardSnapshot`] of its own slab so
    /// push finalizes and the local portion of a pull subtree read with
    /// plain indexed access, while cross-shard pull fan-out falls through
    /// to the foreign slabs' read locks. Semantics (including the observed
    /// pull counters) are identical to [`read`](Self::read).
    pub fn read_via<Rd: PaoReader<A::Partial>>(&self, v: NodeId, pao: &Rd) -> Option<A::Output> {
        let rid = self.overlay.reader(v)?;
        self.pulled[rid.idx()].fetch_add(1, Ordering::Relaxed);
        if self.is_push(rid) {
            Some(pao.with_pao(rid.idx(), |p| self.agg.finalize(p)))
        } else {
            let p = self.eval_pull_via(rid, pao);
            Some(self.agg.finalize(&p))
        }
    }

    /// Recursively compute the PAO of a pull node by merging its upstream
    /// PAOs (§2.2.2's execution flow for pull nodes).
    fn eval_pull(&self, n: OverlayId) -> A::Partial {
        self.eval_pull_via(n, &StoreReader(&self.store))
    }

    /// [`eval_pull`](Self::eval_pull) over an explicit [`PaoReader`] (see
    /// [`read_via`](Self::read_via)).
    fn eval_pull_via<Rd: PaoReader<A::Partial>>(&self, n: OverlayId, pao: &Rd) -> A::Partial {
        let mut acc = self.agg.empty();
        for &(f, sign) in self.overlay.inputs(n) {
            self.pulled[f.idx()].fetch_add(1, Ordering::Relaxed);
            if self.is_push(f) {
                pao.with_pao(f.idx(), |p| match sign {
                    Sign::Pos => self.agg.merge(&mut acc, p),
                    Sign::Neg => self.agg.unmerge(&mut acc, p),
                });
            } else {
                let p = self.eval_pull_via(f, pao);
                match sign {
                    Sign::Pos => self.agg.merge(&mut acc, &p),
                    Sign::Neg => self.agg.unmerge(&mut acc, &p),
                }
            }
        }
        acc
    }

    /// Snapshot the current decisions.
    pub fn decisions(&self) -> Decisions {
        Decisions {
            of: self
                .push_flag
                .iter()
                .map(|f| {
                    if f.load(Ordering::Relaxed) {
                        Decision::Push
                    } else {
                        Decision::Pull
                    }
                })
                .collect(),
        }
    }

    /// Flip a node's decision at runtime (§4.8). A pull→push flip
    /// materializes the node's PAO from upstream; a push→pull flip clears
    /// it. The caller must respect the frontier constraint (use
    /// [`crate::AdaptiveEngine`] for a safe wrapper).
    pub fn set_decision(&self, n: OverlayId, push: bool) {
        let was = self.push_flag[n.idx()].swap(push, Ordering::SeqCst);
        if was == push {
            return;
        }
        if push {
            // Materialize: compute the PAO as a pull would, then install.
            let fresh = self.eval_pull(n);
            self.store.with_mut(n.idx(), |p| *p = fresh);
        } else {
            let empty = self.agg.empty();
            self.store.with_mut(n.idx(), |p| *p = empty);
        }
    }

    /// Observed push/pull frequencies since the last
    /// [`reset_observed`](Self::reset_observed): the inputs to §4.8
    /// adaptation. For pull nodes (which receive no pushes) the would-be
    /// push frequency is the sum of their inputs' observed activity.
    pub fn observed_frequencies(&self) -> Frequencies {
        let n = self.overlay.node_count();
        let mut fh = vec![0.0; n];
        let mut fl = vec![0.0; n];
        for id in self.overlay.ids() {
            fl[id.idx()] = self.pulled[id.idx()].load(Ordering::Relaxed) as f64;
            fh[id.idx()] = if self.is_push(id) {
                self.pushed[id.idx()].load(Ordering::Relaxed) as f64
            } else {
                self.overlay
                    .inputs(id)
                    .iter()
                    .map(|&(f, _)| self.pushed[f.idx()].load(Ordering::Relaxed) as f64)
                    .sum()
            };
        }
        Frequencies { fh, fl }
    }

    /// Per-node applied-op counts since the last
    /// [`reset_observed`](Self::reset_observed), indexed by overlay node:
    /// the raw §4.8 observables live shard rebalancing weighs its affinity
    /// view with (each applied op at `n` is re-emitted along every
    /// outgoing push edge of `n`).
    pub fn observed_push_counts(&self) -> Vec<u64> {
        self.pushed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-node read/evaluation counts since the last
    /// [`reset_observed`](Self::reset_observed), indexed by overlay node —
    /// the `reads_served` observable. Together with
    /// [`observed_push_counts`](Self::observed_push_counts) this feeds the
    /// read-aware rebalance affinity view
    /// ([`eagr_overlay::PushEdgeView::observed_with_reads`]).
    pub fn observed_pull_counts(&self) -> Vec<u64> {
        self.pulled
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Reset the observation window.
    pub fn reset_observed(&self) {
        for c in &self.pushed {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.pulled {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Exponentially decay the observation window: every push/pull counter
    /// is scaled by `factor` (clamped to `[0, 1]`). Rebalancing uses this
    /// instead of a hard [`reset_observed`](Self::reset_observed) so the
    /// affinity view keeps a fading memory of older traffic — slow drift
    /// accumulates evidence across windows instead of re-deciding from a
    /// blank slate each epoch, which is what caused rebalance thrash.
    pub fn decay_observed(&self, factor: f64) {
        let factor = factor.clamp(0.0, 1.0);
        for c in self.pushed.iter().chain(self.pulled.iter()) {
            let v = c.load(Ordering::Relaxed);
            c.store((v as f64 * factor) as u64, Ordering::Relaxed);
        }
    }

    /// Total PAO updates applied so far (micro-task count).
    pub fn total_pushes(&self) -> u64 {
        self.pushed.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot every live node's runtime state — writer window buffers
    /// and PAO slots — for carrying across an engine rebuild (multi-query
    /// attach/detach re-instantiates the runtime over an extended overlay;
    /// ids are append-only stable, so state transfers by index).
    pub fn export_state(&self) -> EngineState<A::Partial> {
        let windows = self
            .windows
            .iter()
            .map(|w| w.as_ref().map(|m| m.lock().clone()))
            .collect();
        let paos = (0..self.overlay.node_count())
            .map(|i| {
                if self.overlay.is_retired(OverlayId(i as u32)) {
                    None
                } else {
                    Some(self.store.with_read(i, |p| p.clone()))
                }
            })
            .collect();
        EngineState { windows, paos }
    }

    /// Install a previously [`export_state`](Self::export_state)ed
    /// snapshot. Slots the snapshot lacks (or that this engine has no
    /// window for — non-writers, retired nodes) are left at their initial
    /// state. The snapshot may be shorter than this engine's arena (an
    /// extension appended nodes); extra nodes keep their fresh state.
    pub fn install_state(&self, state: &EngineState<A::Partial>) {
        for (idx, buf) in state.windows.iter().enumerate() {
            if let (Some(buf), Some(slot)) = (buf, self.windows.get(idx).and_then(Option::as_ref)) {
                *slot.lock() = buf.clone();
            }
        }
        for (idx, pao) in state.paos.iter().enumerate() {
            if idx >= self.store.len() {
                break;
            }
            if let Some(pao) = pao {
                if !self.overlay.is_retired(OverlayId(idx as u32)) {
                    self.store.with_mut(idx, |p| *p = pao.clone());
                }
            }
        }
    }

    /// Replace a writer's window buffer (attach-time backfill from the
    /// write history ring). No-op if `wid` has no window (not a live
    /// writer).
    pub fn install_window(&self, wid: OverlayId, buf: &WindowBuffer) {
        if let Some(slot) = self.windows.get(wid.idx()).and_then(Option::as_ref) {
            *slot.lock() = buf.clone();
        }
    }

    /// Clone one writer's window buffer (`None` if `wid` has no window) —
    /// the per-slot counterpart of [`export_state`](Self::export_state),
    /// used when migrating a single slot between shard hosts.
    pub fn export_window(&self, wid: OverlayId) -> Option<WindowBuffer> {
        self.windows
            .get(wid.idx())
            .and_then(Option::as_ref)
            .map(|slot| slot.lock().clone())
    }

    /// Rebuild a writer's PAO from its current window contents (after a
    /// backfill installed the window). The PAO of a push writer is exactly
    /// the fold of `Insert` over its in-window values.
    pub fn rebuild_writer_pao(&self, wid: OverlayId) {
        let Some(slot) = self.windows.get(wid.idx()).and_then(Option::as_ref) else {
            return;
        };
        let values: Vec<i64> = slot.lock().values().collect();
        let mut fresh = self.agg.empty();
        for v in values {
            self.agg.insert(&mut fresh, v);
        }
        self.store.with_mut(wid.idx(), |p| *p = fresh);
    }

    /// Materialize a non-writer push node's PAO from its upstream state
    /// (same computation a pull read would do). Attach materializes fresh
    /// and pull→push-upgraded nodes in topological order with this.
    pub fn materialize(&self, n: OverlayId) {
        let fresh = self.eval_pull(n);
        self.store.with_mut(n.idx(), |p| *p = fresh);
    }
}

/// A by-index snapshot of an engine's mutable runtime state (window
/// buffers + PAOs), produced by [`EngineCore::export_state`] and consumed
/// by [`EngineCore::install_state`] on a freshly built engine over the
/// same (or an extended) overlay arena.
pub struct EngineState<P> {
    /// Per-slot window buffers (`None` for non-writers / retired nodes).
    pub windows: Vec<Option<WindowBuffer>>,
    /// Per-slot PAO clones (`None` for retired nodes).
    pub paos: Vec<Option<P>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::Sum;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};

    fn paper_core(decisions: fn(&Overlay) -> Decisions) -> EngineCore<Sum> {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = decisions(&ov);
        EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1))
    }

    /// Replay the paper's Fig 1 content streams; the final values are the
    /// `c = 1` window contents.
    fn replay_paper_streams(core: &EngineCore<Sum>) {
        // Streams (Fig 1a): a:[1,4] b:[3,7] c:[6,9] d:[8,4,3] e:[5,9,1]
        // f:[3,6,6] g:[5] — final values a=4 b=7 c=9 d=3 e=1 f=6 g=5.
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut ts = 0;
        for (node, vals) in streams {
            for &v in vals {
                core.write(NodeId(node), v, ts);
                ts += 1;
            }
        }
    }

    #[test]
    fn paper_example_results_all_push() {
        let core = paper_core(Decisions::all_push);
        replay_paper_streams(&core);
        // Fig 1(b) read results: a=19 b=10 c=30 d=30 e=23 f=30 g=30.
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(core.read(NodeId(v as u32)), Some(w), "reader {v}");
        }
    }

    #[test]
    fn paper_example_results_all_pull() {
        let core = paper_core(Decisions::all_pull);
        replay_paper_streams(&core);
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(core.read(NodeId(v as u32)), Some(w), "reader {v}");
        }
    }

    #[test]
    fn window_expiry_propagates() {
        let core = paper_core(Decisions::all_push);
        // c=1 window: the second write replaces the first.
        core.write(NodeId(2), 6, 0);
        core.write(NodeId(2), 9, 1);
        // Reader a = sum over {c,d,e,f}; only c has written.
        assert_eq!(core.read(NodeId(0)), Some(9));
    }

    #[test]
    fn write_to_unconnected_writer_is_noop() {
        let core = paper_core(Decisions::all_push);
        // Node g writes but feeds nobody in this overlay... g feeds
        // every reader actually; use a node id with no writer instead.
        assert_eq!(core.write(NodeId(1000), 5, 0), 0);
    }

    #[test]
    fn read_without_reader_is_none() {
        let core = paper_core(Decisions::all_push);
        assert_eq!(core.read(NodeId(1000)), None);
    }

    #[test]
    fn decision_flip_materializes_state() {
        let core = paper_core(Decisions::all_pull);
        replay_paper_streams(&core);
        let rid = core.overlay().reader(NodeId(0)).unwrap();
        assert!(!core.is_push(rid));
        core.set_decision(rid, true);
        // The PAO must have been materialized: a push-side read gives the
        // same answer.
        assert_eq!(core.read(NodeId(0)), Some(19));
        // New writes keep it up to date (c: 9 → 11 ⇒ 19 + 2).
        core.write(NodeId(2), 11, 100);
        assert_eq!(core.read(NodeId(0)), Some(21));
        // Flip back: state cleared, pull recomputes identically.
        core.set_decision(rid, false);
        assert_eq!(core.read(NodeId(0)), Some(21));
    }

    #[test]
    fn observed_counters_track_activity() {
        let core = paper_core(Decisions::all_pull);
        replay_paper_streams(&core);
        for _ in 0..5 {
            core.read(NodeId(0));
        }
        let obs = core.observed_frequencies();
        let rid = core.overlay().reader(NodeId(0)).unwrap();
        assert_eq!(obs.fl[rid.idx()], 5.0);
        // Reader a's would-be push frequency = total ops at its 4 inputs
        // (writers c,d,e,f wrote 2+3+3+3 = 11 ops... each write is 1 insert
        // + possibly 1 expiry remove).
        assert!(obs.fh[rid.idx()] > 0.0);
        core.reset_observed();
        let obs2 = core.observed_frequencies();
        assert_eq!(obs2.fl[rid.idx()], 0.0);
    }

    #[test]
    fn decay_scales_counters_instead_of_clearing() {
        let core = paper_core(Decisions::all_pull);
        replay_paper_streams(&core);
        for _ in 0..8 {
            core.read(NodeId(0));
        }
        let rid = core.overlay().reader(NodeId(0)).unwrap();
        assert_eq!(core.observed_pull_counts()[rid.idx()], 8);
        core.decay_observed(0.5);
        // Half the window survives — the fading memory that keeps slow
        // drift visible across rebalance epochs.
        assert_eq!(core.observed_pull_counts()[rid.idx()], 4);
        // Out-of-range factors clamp: 2.0 acts like 1.0 (no growth)…
        core.decay_observed(2.0);
        assert_eq!(core.observed_pull_counts()[rid.idx()], 4);
        // …and 0.0 is the old reset behavior.
        core.decay_observed(0.0);
        assert_eq!(core.observed_pull_counts()[rid.idx()], 0);
    }

    #[test]
    fn replay_ops_applies_in_order_without_recording() {
        let core = paper_core(Decisions::all_push);
        let before = core.total_pushes();
        let mut pao = 10i64;
        let n = core.replay_ops(
            &mut pao,
            [DeltaOp::Insert(5), DeltaOp::Remove(3), DeltaOp::Insert(1)],
        );
        assert_eq!(n, 3);
        assert_eq!(pao, 13);
        // Replay must not re-bump the observed-push counters.
        assert_eq!(core.total_pushes(), before);
    }

    #[test]
    fn time_window_advance() {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = Decisions::all_push(&ov);
        let core = EngineCore::new(Sum, ov, &d, WindowSpec::Time(10));
        core.write(NodeId(2), 5, 0);
        core.write(NodeId(3), 7, 5);
        assert_eq!(core.read(NodeId(0)), Some(12));
        // t = 11: the t=0 write expires; t=5 survives (cutoff 1).
        core.advance_time(11);
        assert_eq!(core.read(NodeId(0)), Some(7));
        core.advance_time(100);
        assert_eq!(core.read(NodeId(0)), Some(0));
    }
}
