//! The shard-owned, batch-ingesting engine runtime.
//!
//! The two-pool engine of [`crate::parallel`] follows the paper's queueing
//! model literally: every write is subdivided into PAO-granularity
//! micro-tasks over one shared MPMC channel, and every micro-task takes a
//! per-PAO lock. That is faithful to §2.2.2 but leaves throughput on the
//! table: one channel round-trip and one lock acquisition *per PAO update*.
//!
//! [`ShardedEngine`] restructures the write path around partitioning and
//! batching instead:
//!
//! * overlay nodes are partitioned into shards (see
//!   [`eagr_graph::partition`]); one worker thread **owns** each shard and
//!   is the only thread that mutates its PAOs;
//! * writes arrive as [`EventBatch`]es and are routed to the shard owning
//!   the writer node; the worker locks its shard slab once per batch and
//!   applies every op with plain indexed access — no per-PAO locking on the
//!   hot path;
//! * push propagation that crosses a shard boundary is *not* sent op by op:
//!   each worker accumulates per-destination-shard delta outboxes while
//!   processing a batch and flushes them as single messages over bounded
//!   channels (backpressure instead of unbounded queue growth);
//! * [`drain`](ShardedEngine::drain) is an epoch barrier: it returns once
//!   every routed batch and every transitively generated cross-shard delta
//!   batch has been applied, at which point the engine state equals the
//!   single-threaded reference replay of the same stream;
//! * time-window expiration ([`advance_time`](ShardedEngine::advance_time))
//!   travels through the same inboxes as writes: each shard's worker
//!   expires the windows of the writers *it owns* and cascades the
//!   removals through its own slab — the caller thread never mutates
//!   shard-owned PAOs, preserving the single-writer invariant;
//! * the node→shard map can be structure-aware: with
//!   [`PartitionStrategy::EdgeCut`] the engine derives an affinity
//!   partition from the overlay's push topology (or accepts a precomputed
//!   one from the planner via [`ShardedEngine::from_plan`] /
//!   [`ShardedEngine::with_partition`]), and per-shard
//!   [`ShardStats`] counters make the resulting cross-shard delta
//!   reduction measurable.
//!
//! Reads are shard-executed too: [`read_batch`](ShardedEngine::read_batch)
//! routes read requests through the same inboxes, so the owning worker
//! evaluates push-side finalizes and the local portion of pull trees
//! against its own slab (one read lock per batch, plain indexed access),
//! with cross-shard pull fan-out falling through to the foreign slabs' read
//! locks. An epoch gate makes the batch **epoch-consistent**: the batch is
//! stamped at entry, pins the epoch (ingestion submitted concurrently
//! waits), and drains in-flight deltas first, so a read never observes a
//! torn epoch — every answer equals the single-threaded reference replay of
//! the exact stream prefix ingested before the batch. The caller-thread
//! [`read`](ShardedEngine::read) escape hatch remains for relaxed
//! mid-epoch probes (the consistency the paper accepts for the two-pool
//! engine), and reads inside a mixed [`ingest`](ShardedEngine::ingest)
//! batch are shipped to their owning shard fire-and-forget — the caller
//! thread never evaluates shard-owned PAO state on the batch path.
//!
//! The node→shard map itself is **live**: whatever map the engine starts
//! from (planner-derived or index-based), write rates drift away from the
//! rates it was derived under, so [`ShardedEngine::rebalance`] refines the
//! map against the *observed* per-node delta counters and migrates the
//! affected PAO state between slabs with a **two-phase, nearly
//! pause-free** protocol: phase 1 copies departing PAOs out of the old
//! owners' slabs while ingestion keeps flowing (deltas landing on
//! in-flight nodes are buffered in bounded per-worker side-logs), and
//! phase 2 takes the epoch gate exclusively only for the flip — drain,
//! replay the side-logs into the staged copies, republish slot locations
//! and the routing map atomically, release. Epoch-consistent reads
//! serialize with the flip, and relaxed reads resolve through atomically
//! republished slot locations, so answers are identical before, during,
//! and after a migration. Slab compaction piggybacks on the same fence so
//! orphaned slots are reclaimed. A [`RebalancePolicy`] on
//! [`ShardedConfig`] can fire the loop automatically every N ingestion
//! epochs, committing only when the modeled cut improvement clears a
//! threshold; a trigger that fires while a migration is already in flight
//! coalesces into it instead of stacking a second fence.

use crate::core::{EngineCore, EngineState};
use crate::store::{PaoReader, PaoStore, ShardedStore};
use crate::transport::{PlanUpdate, ShardTransport, SlotState, TransportError, TransportKind};
use crossbeam::channel::{bounded, Receiver, Sender};
use eagr_agg::{Aggregate, DeltaOp, WindowBuffer, WindowSpec};
use eagr_flow::{Decisions, Plan};
use eagr_gen::{Event, EventBatch};
use eagr_graph::{
    edge_cut_partition, hash_shard, refine_partition, EdgeCutConfig, NodeId, Partition,
    PartitionStrategy, Partitioner, RefineConfig, ShardId, DEFAULT_CHUNK_SIZE,
};
use eagr_overlay::{Overlay, OverlayId, OverlayKind, PushEdgeView};
use eagr_util::{FastMap, FastSet};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// When and how aggressively the engine re-partitions itself from observed
/// load (§4.8: the planning-time partition drifts out of date as write
/// rates move; the observed push counters feed a periodic re-partition).
///
/// The refinement is *incremental*: it keeps the current map and migrates
/// only a bounded set of highest-gain nodes ([`refine_partition`]), and it
/// only commits when the modeled cut improvement clears
/// [`min_cut_gain`](Self::min_cut_gain) — a rebalance that would barely
/// help is skipped before any state moves.
///
/// Migration is two-phase ([`ShardedEngine::rebalance`]): the copy runs
/// concurrently with ingestion, and the epoch gate is held exclusively
/// only for the flip. Deltas that land on in-flight nodes during the copy
/// are buffered in per-worker side-logs bounded by
/// [`side_log_bound`](Self::side_log_bound); each migrated node orphans
/// one PAO slot in its old slab, reclaimed by slab compaction inside the
/// flip fence once [`compact_after_orphans`](Self::compact_after_orphans)
/// slots have accumulated (or on demand via
/// [`ShardedEngine::compact`]).
#[derive(Clone, Copy, Debug)]
pub struct RebalancePolicy {
    /// Trigger a rebalance automatically after every `every_epochs`
    /// ingestion epochs ([`ShardedEngine::ingest`] calls). `0` disables
    /// the automatic trigger; [`ShardedEngine::rebalance`] stays available
    /// manually. A trigger that fires while a migration is already in
    /// flight coalesces into it (see
    /// [`ShardedEngine::coalesced_rebalances`]).
    pub every_epochs: u64,
    /// Required relative cut improvement (fraction of the current observed
    /// cut weight) for a refinement to be committed. Below it the
    /// rebalance is a no-op and no state migrates.
    pub min_cut_gain: f64,
    /// Bound on the fraction of overlay nodes migrated per rebalance
    /// (forwarded to [`RefineConfig::max_move_fraction`]).
    pub max_move_fraction: f64,
    /// Shard-load balance cap, as a multiple of the perfectly balanced
    /// load (forwarded to [`RefineConfig::balance`]).
    pub balance: f64,
    /// Observation-window decay applied after a committed rebalance:
    /// counters are scaled by this factor ([`EngineCore::decay_observed`])
    /// instead of zeroed, so the affinity view keeps a fading memory of
    /// older traffic and slow drift doesn't thrash the rebalancer. `0.0`
    /// recovers the old reset-on-rebalance behavior; `1.0` never forgets.
    pub decay: f64,
    /// Per-worker bound on the migration side-log, in buffered delta ops.
    /// During a phase-1 copy, ops that land on departing nodes are
    /// buffered so phase 2 can replay them into the staged copies; a
    /// worker whose log fills stops buffering, and the flip falls back to
    /// re-copying that worker's departing PAOs under the fence (correct,
    /// just a longer fence for that shard).
    pub side_log_bound: usize,
    /// Auto-compaction trigger: when a committed flip leaves at least this
    /// many orphaned PAO slots ([`ShardedEngine::orphaned_pao_slots`]),
    /// slab compaction runs inside the same fence and reclaims them all.
    /// `0` disables auto-compaction ([`ShardedEngine::compact`] stays
    /// available manually).
    pub compact_after_orphans: u64,
}

impl RebalancePolicy {
    /// Automatic rebalancing after every `epochs` ingestion epochs, with
    /// the default thresholds.
    pub fn every(epochs: u64) -> Self {
        Self {
            every_epochs: epochs,
            ..Self::default()
        }
    }

    /// Manual-only policy (the default): `rebalance()` works, nothing
    /// fires on its own.
    pub fn manual() -> Self {
        Self::default()
    }
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        Self {
            every_epochs: 0,
            min_cut_gain: 0.05,
            max_move_fraction: 0.15,
            balance: 1.1,
            decay: 0.5,
            side_log_bound: 1 << 16,
            compact_after_orphans: 4096,
        }
    }
}

/// What one [`ShardedEngine::rebalance`] (or
/// [`migrate_to`](ShardedEngine::migrate_to)) call did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationReport {
    /// Nodes whose PAO state was copied to a new owning shard (0 when the
    /// refinement found nothing worth moving, the gain threshold was not
    /// met, or the call coalesced into an in-flight migration).
    pub nodes_copied: usize,
    /// Side-logged delta ops replayed into the staged copies at the flip —
    /// the write traffic that landed on in-flight nodes while the phase-1
    /// copy ran concurrently with ingestion.
    pub deltas_replayed: u64,
    /// Exclusive epoch-gate acquisitions the migration needed: `1` for a
    /// committed flip (compaction piggybacks inside it), `0` otherwise.
    /// The old stop-the-world protocol held the gate for the entire
    /// drain + copy + flip; now only the flip is fenced.
    pub fence_epochs: u64,
    /// Ingestion epochs admitted *during* the concurrent phase-1 copy —
    /// direct evidence the copy did not stall writers.
    pub copy_epochs: u64,
    /// Orphaned PAO slots reclaimed by the compaction pass piggybacked on
    /// the flip fence (0 when below the policy trigger).
    pub slots_reclaimed: u64,
    /// Observed-traffic cut weight of the map before refinement (0 for
    /// [`migrate_to`](ShardedEngine::migrate_to), which skips refinement).
    pub cut_before: f64,
    /// Observed-traffic cut weight of the refined map (equals the final
    /// map only when `committed`).
    pub cut_after: f64,
    /// Whether a flip was installed and state migrated.
    pub committed: bool,
}

impl MigrationReport {
    /// A report for a call that migrated nothing.
    fn skipped(cut_before: f64, cut_after: f64) -> Self {
        Self {
            nodes_copied: 0,
            deltas_replayed: 0,
            fence_epochs: 0,
            copy_epochs: 0,
            slots_reclaimed: 0,
            cut_before,
            cut_after,
            committed: false,
        }
    }
}

/// Configuration of the sharded runtime.
///
/// Prefer [`ShardedConfig::builder`] over struct literals: the builder
/// starts from the defaults, so configs stay source-compatible when new
/// knobs (like [`transport`](Self::transport)) are added.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Number of shards = number of owning worker threads (or shard-host
    /// processes under [`TransportKind::Process`]).
    pub shards: usize,
    /// Node→shard assignment strategy.
    pub strategy: PartitionStrategy,
    /// Capacity of each shard's inbox (messages, each carrying a batch).
    /// Senders block when an inbox is full — bounded-channel backpressure.
    /// (The socket transport queues frames instead of blocking; the bound
    /// applies to the in-process mesh.)
    pub channel_capacity: usize,
    /// Live rebalancing policy (default: manual-only).
    pub rebalance: RebalancePolicy,
    /// Which [`ShardTransport`] the engine launches the shard mesh on
    /// (default: [`TransportKind::InProcess`]).
    pub transport: TransportKind,
}

impl ShardedConfig {
    /// `shards` shards with the default chunk-locality strategy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Start a builder pre-populated with the defaults.
    pub fn builder() -> ShardedConfigBuilder {
        ShardedConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`ShardedConfig`] (see [`ShardedConfig::builder`]): set only
/// the knobs you care about, inherit defaults for the rest.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfigBuilder {
    cfg: ShardedConfig,
}

impl ShardedConfigBuilder {
    /// Number of shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Node→shard assignment strategy.
    pub fn strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Per-shard inbox capacity.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.cfg.channel_capacity = capacity;
        self
    }

    /// Live rebalancing policy.
    pub fn rebalance(mut self, policy: RebalancePolicy) -> Self {
        self.cfg.rebalance = policy;
        self
    }

    /// Transport kind (in-process worker threads vs shard-host processes).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> ShardedConfig {
        self.cfg
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            shards: cores.clamp(2, 16),
            // Overlay construction allocates chunk-mates consecutively, so
            // chunked partitioning co-locates partials with their readers.
            strategy: PartitionStrategy::Chunk {
                chunk_size: DEFAULT_CHUNK_SIZE,
            },
            channel_capacity: 1 << 12,
            rebalance: RebalancePolicy::default(),
            transport: TransportKind::default(),
        }
    }
}

/// The engine's *live* node→shard map: one atomic word per node, so the
/// routing layer, the shard workers, and the rebalancer share a single map
/// that migration can republish entry by entry without locking the hot
/// path.
///
/// Reads are `Relaxed` — every mutation happens with the epoch gate held
/// exclusively and all workers drained, and the gate/channel
/// release–acquire pairs that resume traffic afterwards carry the updated
/// entries to every thread that routes with them.
pub struct LivePartition {
    of: Vec<AtomicU32>,
    shards: usize,
    strategy: PartitionStrategy,
    /// Immutable copy of the map, rebuilt by [`publish`](Self::publish)
    /// after every flip, so batch routing resolves the whole batch against
    /// one `Arc` snapshot instead of one atomic load per event.
    cached: RwLock<Arc<Vec<u32>>>,
    /// Bumped by every [`publish`](Self::publish): lets a routing loop
    /// assert its snapshot stayed current for the whole batch.
    generation: AtomicU64,
}

impl LivePartition {
    fn new(p: &Partition) -> Self {
        Self {
            of: p.of.iter().map(|s| AtomicU32::new(s.0)).collect(),
            shards: p.shards,
            strategy: p.strategy,
            cached: RwLock::named(Arc::new(p.of.iter().map(|s| s.0).collect()), "cached"),
            generation: AtomicU64::new(0),
        }
    }

    /// Shard currently owning node index `idx`. An index beyond the map —
    /// a node added to the topology that the map has not been extended to
    /// cover yet — falls back to the deterministic hash assignment
    /// ([`hash_shard`]), the same fallback [`Partition::shard_of`] uses, so
    /// routing never panics on a fresh node and every router agrees on its
    /// owner.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        match self.of.get(idx) {
            Some(s) => ShardId(s.load(Ordering::Relaxed)),
            None => hash_shard(idx, self.shards),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.of.len()
    }

    /// Whether the map covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Reassign node `idx` (rebalancer only: callers must hold the epoch
    /// gate exclusively over a drained engine, and call
    /// [`publish`](Self::publish) before releasing it).
    fn set(&self, idx: usize, dest: ShardId) {
        self.of[idx].store(dest.0, Ordering::Release);
    }

    /// Rebuild the cached snapshot from the live entries and bump the map
    /// generation. Rebalancer only, same locking contract as
    /// [`set`](Self::set).
    fn publish(&self) {
        let snap: Arc<Vec<u32>> =
            Arc::new(self.of.iter().map(|s| s.load(Ordering::Acquire)).collect());
        *self.cached.write() = snap;
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The current map generation (bumped by every committed flip).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// One `Arc` snapshot of the whole map, pinned to its generation.
    /// Batch routing resolves every event against this instead of issuing
    /// one atomic load per event; under the shared epoch gate the map
    /// cannot change, so the snapshot stays exact for the whole batch
    /// (asserted via [`MapSnapshot::generation`]).
    pub fn load(&self) -> MapSnapshot {
        MapSnapshot {
            of: Arc::clone(&self.cached.read()),
            shards: self.shards,
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    /// Materialize the current map as a plain [`Partition`].
    pub fn snapshot(&self) -> Partition {
        Partition {
            of: (0..self.of.len()).map(|i| self.shard_of(i)).collect(),
            shards: self.shards,
            strategy: self.strategy,
        }
    }

    /// Node count per shard under the current map.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.shards];
        for s in &self.of {
            sizes[s.load(Ordering::Relaxed) as usize] += 1;
        }
        sizes
    }
}

/// An immutable, generation-stamped snapshot of a [`LivePartition`] (see
/// [`LivePartition::load`]).
pub struct MapSnapshot {
    of: Arc<Vec<u32>>,
    shards: usize,
    generation: u64,
}

impl MapSnapshot {
    /// Shard owning node index `idx` under this snapshot, with the same
    /// out-of-range hash fallback as [`LivePartition::shard_of`].
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        match self.of.get(idx) {
            Some(&s) => ShardId(s),
            None => hash_shard(idx, self.shards),
        }
    }

    /// The map generation this snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// One shard's answers to a read batch: `(result slot, answer)` pairs.
pub type ReadReplies<A> = Vec<(usize, Option<<A as Aggregate>::Output>)>;

/// One shard's reply to a phase-1 [`ShardMsg::Copy`]: the origin shard
/// plus `(node, destination, staged PAO clone)` for every departing node.
pub type CopyReply<A> = (
    ShardId,
    Vec<(OverlayId, ShardId, <A as Aggregate>::Partial)>,
);

/// One shard's reply to a phase-2 [`ShardMsg::EndCopy`]: the origin
/// shard, its side-log in arrival order, and whether the log overflowed
/// (in which case it is empty and the staged copies from that shard must
/// be re-copied under the fence).
pub type SideLogReply = (ShardId, Vec<(OverlayId, DeltaOp)>, bool);

/// Per-worker migration side-log, active between a [`ShardMsg::Copy`] and
/// the matching [`ShardMsg::EndCopy`]: every delta op the worker applies
/// to a departing node is buffered (bounded) so the flip can replay it
/// into the staged copy.
struct SideLog {
    /// Departing nodes this worker is the current owner of.
    nodes: std::collections::HashSet<u32>,
    /// Buffered `(node, op)` in arrival order.
    log: Vec<(OverlayId, DeltaOp)>,
    /// Capacity bound ([`RebalancePolicy::side_log_bound`]).
    bound: usize,
    /// Set once the bound is hit; the log is discarded and phase 2 falls
    /// back to re-copying this shard's departing PAOs under the fence.
    overflowed: bool,
}

/// Messages flowing into one shard's inbox — the protocol a
/// [`ShardTransport`] carries. The in-process transport moves these
/// values over crossbeam channels untouched; the socket transport maps
/// the data-plane variants onto [`crate::transport::codec`] frames (reply
/// channels become request-id correlation tokens) and rejects the
/// migration-protocol variants, which have no meaning across processes
/// (the engine drives process-mode migration through the transport's
/// state-plane methods instead).
pub enum ShardMsg<A: Aggregate> {
    /// Writes whose *writer node* the shard owns: `(writer, value, ts)` in
    /// submission order.
    Writes(Vec<(OverlayId, i64, u64)>),
    /// Propagated delta ops targeting nodes the shard owns.
    Deltas(Vec<(OverlayId, DeltaOp)>),
    /// Read requests whose *reader node* the shard owns: `(result slot,
    /// data node)`. The worker evaluates them against a read snapshot of
    /// its own slab (push finalizes and the local part of pull trees read
    /// lock-free; cross-shard pull inputs go through the foreign slabs'
    /// read locks) and sends the answers back over `reply`. `None` marks a
    /// fire-and-forget read (a read event inside a mixed ingest batch):
    /// evaluated and dropped, like [`crate::ParallelEngine`]'s read pool.
    Reads {
        /// `(slot in the caller's result vector, data node to read)`.
        targets: Vec<(usize, NodeId)>,
        /// Completion channel for [`ShardedEngine::read_batch`].
        reply: Option<Sender<ReadReplies<A>>>,
    },
    /// Expire time windows up to `ts` for every writer the shard owns and
    /// cascade the removals (the sharded form of
    /// [`EngineCore::advance_time`]).
    Expire(u64),
    /// Migration phase 1 (sent by the rebalancer to each departing node's
    /// *current* owner, with ingestion still flowing): clone the listed
    /// nodes' PAOs out of this shard's slab and reply with the staged
    /// copies, then start side-logging every subsequent op applied to
    /// them. Snapshot and side-log activation happen inside one message
    /// handler on the owning worker, so every op is either in the copy or
    /// in the log — never both, never neither.
    Copy {
        /// `(departing node, destination shard)` for nodes this shard owns.
        moves: Vec<(OverlayId, ShardId)>,
        /// Staged-copy return channel (sized so the send never blocks).
        reply: Sender<CopyReply<A>>,
    },
    /// Migration phase 2 (sent under the exclusive epoch gate over a
    /// drained engine): stop side-logging and reply with the buffered
    /// deltas. On `commit`, also drop window-expiration ownership of the
    /// departing writers (their new owners receive
    /// [`Adopt`](Self::Adopt)); an aborted migration keeps them.
    EndCopy {
        /// Whether the flip is going ahead.
        commit: bool,
        /// Side-log return channel (sized so the send never blocks).
        reply: Sender<SideLogReply>,
    },
    /// Migration phase 2, after the flip: adopt window-expiration
    /// ownership of the listed writers (their PAOs were already installed
    /// by the rebalancer via [`ShardedStore::relocate`]).
    Adopt(Vec<OverlayId>),
    /// Topology epoch ([`ShardedEngine::apply_topo`], sent under the
    /// exclusive epoch gate over a drained engine): swap the worker's core
    /// and routing-map handles for the rebuilt ones and take over the new
    /// window-expiration writer set. Travels through the same inbox +
    /// `pending` protocol as every other message, so the topology change
    /// drains like an epoch — no worker restart, no re-plan.
    Topo(Arc<TopoSwap<A>>),
    /// Terminate the worker.
    Stop,
}

/// The payload of a [`ShardMsg::Topo`]: everything a worker holds that a
/// topology epoch replaces. One `Arc` shared by all shards; each worker
/// clones its own writer list out of it.
pub struct TopoSwap<A: Aggregate> {
    core: Arc<ShardedCore<A>>,
    partition: Arc<LivePartition>,
    /// Window-expiration ownership under the new map, indexed by shard.
    writers_by_shard: Vec<Vec<OverlayId>>,
}

/// Per-shard runtime counters ([`ShardedEngine::shard_stats`]): how much
/// work stayed local and how much was shipped to peers — the observable the
/// partition strategies compete on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard.
    pub shard: ShardId,
    /// Overlay nodes the shard owns.
    pub nodes: usize,
    /// Delta ops this shard's worker applied to its own slab (local work,
    /// including ops that arrived from peers).
    pub local_applies: u64,
    /// Delta ops this shard's worker shipped to *other* shards' inboxes.
    pub cross_deltas_out: u64,
    /// Read requests this shard's worker evaluated (both
    /// [`ShardedEngine::read_batch`] requests and fire-and-forget reads
    /// inside mixed ingest batches). Trustworthy per-shard read load for
    /// §4.8-style re-partitioning.
    pub reads_served: u64,
}

/// The sharded core type: an [`EngineCore`] over shard-slab PAO storage.
pub type ShardedCore<A> = EngineCore<A, ShardedStore<<A as Aggregate>::Partial>>;

/// What one [`ShardedEngine::apply_topo`] call changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopoEpochReport {
    /// Overlay ids appended since the previous topology (live or not).
    pub fresh_nodes: usize,
    /// Nodes retired by this epoch (includes nodes added and removed
    /// within the same mutation run).
    pub retired_nodes: usize,
    /// Push nodes whose PAOs were rebuilt before workers resumed (fresh,
    /// upgraded, and repair-dirtied nodes plus backfilled writers).
    pub rematerialized: usize,
    /// Slab slots orphaned by retirement into the compaction path.
    pub orphaned_slots: u64,
    /// Orphans reclaimed by the compaction pass piggybacked on this
    /// epoch's fence (0 when below the policy trigger).
    pub slots_reclaimed: u64,
}

/// Shard-owned, batch-ingesting multi-threaded engine.
pub struct ShardedEngine<A: Aggregate> {
    /// The live core. Replaced wholesale by a topology epoch
    /// ([`apply_topo`](Self::apply_topo)) under the exclusive epoch gate;
    /// every entry point clones the `Arc` once per call, so in-flight work
    /// always sees one consistent core/map pair.
    core: RwLock<Arc<ShardedCore<A>>>,
    /// The live node→shard map, swapped together with the core.
    partition: RwLock<Arc<LivePartition>>,
    window: WindowSpec,
    policy: RebalancePolicy,
    /// The communication backend: the in-process channel mesh or the
    /// multi-process socket star ([`ShardTransport`]).
    transport: Box<dyn ShardTransport<A>>,
    pending: Arc<AtomicU64>,
    /// Per-shard deltas shipped to peers (indexed by sending shard).
    cross_out: Arc<Vec<AtomicU64>>,
    /// Per-shard delta ops applied locally (indexed by owning shard).
    local: Arc<Vec<AtomicU64>>,
    /// Per-shard read requests served (indexed by owning shard).
    reads: Arc<Vec<AtomicU64>>,
    /// Epoch gate for shard-executed reads *and* the migration flip:
    /// write submission holds it shared; [`read_batch`](Self::read_batch)
    /// holds it exclusively while it drains and reads, and a migration
    /// holds it exclusively *only for phase 2* (drain, side-log replay,
    /// map flip, optional compaction) — the phase-1 copy runs concurrently
    /// with ingestion.
    epoch_gate: RwLock<()>,
    epochs: AtomicU64,
    /// Committed rebalances so far.
    rebalances: AtomicU64,
    /// Nodes migrated across all committed rebalances.
    nodes_migrated: AtomicU64,
    /// Single-flight migration guard: set for the duration of one
    /// `rebalance`/`migrate_to` call; losers coalesce instead of stacking.
    migrating: AtomicBool,
    /// Rebalance calls (manual or auto-trigger) that coalesced into an
    /// in-flight migration instead of running.
    coalesced: AtomicU64,
    /// Orphaned PAO slots reclaimed by compaction across the engine's
    /// lifetime.
    slots_reclaimed: AtomicU64,
    /// Topology epochs applied ([`apply_topo`](Self::apply_topo)).
    topo_epochs: AtomicU64,
}

impl<A: Aggregate> ShardedEngine<A> {
    /// Build the sharded runtime for an overlay + decisions and spawn one
    /// owning worker per shard. [`PartitionStrategy::EdgeCut`] derives the
    /// node→shard map from the overlay's push topology under `decisions`
    /// (uniform rate prior — hand a planner-weighted map to
    /// [`with_partition`](Self::with_partition) for rate-aware cuts); the
    /// index-based strategies go through a plain [`Partitioner`].
    pub fn new(
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        window: WindowSpec,
        cfg: &ShardedConfig,
    ) -> Self {
        let partition = match cfg.strategy {
            PartitionStrategy::EdgeCut => {
                let view = PushEdgeView::new(&overlay, |n| decisions.is_push(n));
                edge_cut_partition(&view, cfg.shards, &EdgeCutConfig::default())
            }
            strategy => Partitioner::new(cfg.shards, strategy).partition(overlay.node_count()),
        };
        Self::with_partition(agg, overlay, decisions, window, partition, cfg)
    }

    /// Build from a dataflow [`Plan`]. Reuses the partition the plan
    /// carries when it matches `cfg.shards`; otherwise derives a fresh one
    /// from `cfg`.
    pub fn from_plan(plan: &Plan, agg: A, window: WindowSpec, cfg: &ShardedConfig) -> Self {
        let overlay = Arc::new(plan.overlay.clone());
        match &plan.partition {
            Some(p) if p.shards == cfg.shards && p.len() == overlay.node_count() => {
                Self::with_partition(agg, overlay, &plan.decisions, window, p.clone(), cfg)
            }
            Some(_) | None => Self::new(agg, overlay, &plan.decisions, window, cfg),
        }
    }

    /// Build over an explicit node partition (`cfg.shards` and
    /// `cfg.strategy` are ignored — the partition *is* the map).
    ///
    /// # Panics
    /// Panics if the partition does not cover every overlay node, if
    /// `cfg.channel_capacity` is smaller than the shard count (the
    /// migration handoff needs one inbox slot per peer), or if the
    /// configured transport fails to launch (e.g.
    /// [`TransportKind::Process`] for an aggregate without
    /// [`Aggregate::wire_hooks`], or an unreachable host binary) — use
    /// [`try_with_partition`](Self::try_with_partition) to surface launch
    /// failures as a [`TransportError`] instead.
    pub fn with_partition(
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        window: WindowSpec,
        partition: Partition,
        cfg: &ShardedConfig,
    ) -> Self {
        match Self::try_with_partition(agg, overlay, decisions, window, partition, cfg) {
            Ok(engine) => engine,
            // lint: allow(panic-free, the documented infallible constructor surface; try_with_partition is the Result-returning form)
            Err(e) => panic!("sharded engine transport launch failed: {e}"),
        }
    }

    /// Fallible form of [`with_partition`](Self::with_partition): transport
    /// launch failures (host spawn/connect errors, missing wire hooks)
    /// come back as a [`TransportError`] instead of panicking. The
    /// partition-coverage and channel-capacity preconditions still panic —
    /// those are caller bugs, not runtime conditions.
    pub fn try_with_partition(
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        window: WindowSpec,
        partition: Partition,
        cfg: &ShardedConfig,
    ) -> Result<Self, TransportError> {
        assert_eq!(
            partition.len(),
            overlay.node_count(),
            "partition must cover every overlay node"
        );
        let channel_capacity = cfg.channel_capacity;
        assert!(
            channel_capacity >= partition.shards.max(1),
            "channel capacity must be at least the shard count"
        );
        let store = ShardedStore::new(&partition, || agg.empty());
        let core = Arc::new(EngineCore::with_store(
            agg, overlay, decisions, window, store,
        ));
        let shards = partition.shards;
        let plain = partition;
        let partition = Arc::new(LivePartition::new(&plain));
        let pending = Arc::new(AtomicU64::new(0));
        let cross_out: Arc<Vec<AtomicU64>> =
            Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        let local: Arc<Vec<AtomicU64>> = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        let reads: Arc<Vec<AtomicU64>> = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        // Each worker expires the windows of exactly the writers it owns,
        // so window mutation follows the same single-writer discipline as
        // PAO mutation.
        let mut writers_by_shard: Vec<Vec<OverlayId>> = vec![Vec::new(); shards];
        for (wid, _) in core.overlay().writers() {
            writers_by_shard[partition.shard_of(wid.idx()).idx()].push(wid);
        }
        let transport: Box<dyn ShardTransport<A>> = match cfg.transport {
            TransportKind::InProcess => Box::new(InProcessTransport::launch(
                Arc::clone(&core),
                Arc::clone(&partition),
                writers_by_shard,
                Arc::clone(&pending),
                Arc::clone(&cross_out),
                Arc::clone(&local),
                Arc::clone(&reads),
                channel_capacity,
                cfg.rebalance.side_log_bound,
            )),
            #[cfg(unix)]
            TransportKind::Process => {
                Box::new(crate::transport::process::ProcessTransport::launch(
                    &core,
                    &plain,
                    window,
                    Arc::clone(&pending),
                    Arc::clone(&cross_out),
                    Arc::clone(&local),
                    Arc::clone(&reads),
                )?)
            }
            #[cfg(not(unix))]
            TransportKind::Process => {
                return Err(TransportError::Unsupported(
                    "process transport requires Unix-domain sockets",
                ))
            }
        };
        Ok(Self {
            core: RwLock::named(core, "core"),
            partition: RwLock::named(partition, "partition"),
            window,
            policy: cfg.rebalance,
            transport,
            pending,
            cross_out,
            local,
            reads,
            epoch_gate: RwLock::named((), "epoch_gate"),
            epochs: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            nodes_migrated: AtomicU64::new(0),
            migrating: AtomicBool::new(false),
            coalesced: AtomicU64::new(0),
            slots_reclaimed: AtomicU64::new(0),
            topo_epochs: AtomicU64::new(0),
        })
    }

    /// The shared core (shard-slab storage) — an owned handle, since a
    /// topology epoch can replace the core under callers holding one.
    pub fn core(&self) -> Arc<ShardedCore<A>> {
        Arc::clone(&self.core.read())
    }

    /// The live node→shard map shared with the workers — an owned handle,
    /// like [`core`](Self::core).
    fn partition_ref(&self) -> Arc<LivePartition> {
        Arc::clone(&self.partition.read())
    }

    /// A snapshot of the node→shard assignment currently in use (live
    /// rebalancing mutates the map, so this is a copy, not a reference).
    pub fn partition(&self) -> Partition {
        self.partition_ref().snapshot()
    }

    /// The live node→shard map shared with the workers.
    pub fn live_partition(&self) -> Arc<LivePartition> {
        self.partition_ref()
    }

    /// Number of shards (fixed for the engine's lifetime — topology epochs
    /// replace the map, never the shard count).
    pub fn shard_count(&self) -> usize {
        self.transport.shards()
    }

    /// Which transport the engine is running on.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// OS process ids of the shard host peers, one per shard — empty on
    /// the in-process transport (workers are threads of this process).
    pub fn host_pids(&self) -> Vec<u32> {
        self.transport.host_pids()
    }

    /// Send one pending-counted message: the counter is incremented
    /// *before* the message becomes visible to the receiver (its decrement
    /// must never race ahead) and rolled back if the transport rejects it.
    fn send_counted(&self, shard: usize, msg: ShardMsg<A>) -> Result<(), TransportError> {
        self.pending.fetch_add(1, Ordering::AcqRel);
        match self.transport.send(shard, msg) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Route one batch of events into the shards and return
    /// `(writes, reads)` processed — a write counts even when its node has
    /// no overlay writer (the event is consumed and dropped, exactly like
    /// [`EngineCore::write`]), so counts agree across execution modes.
    /// Writes are grouped per owning shard and enqueued as one message per
    /// shard; read events are shipped to the shard owning their reader as
    /// fire-and-forget requests (evaluated by the owning worker, relaxed
    /// mid-epoch consistency) — the caller thread never evaluates
    /// shard-owned PAO state. Call [`drain`](Self::drain) to close the
    /// epoch. For reads whose answers you need, use
    /// [`read_batch`](Self::read_batch).
    ///
    /// Per-writer ordering is preserved for batches submitted from one
    /// thread: a writer's updates always travel to the same shard inbox in
    /// submission order.
    ///
    /// # Errors
    /// [`TransportError`] when a shard peer is unreachable (a worker
    /// thread exited, or a shard-host process died). The in-process
    /// transport only fails during shutdown races; the socket transport
    /// surfaces real process/socket failures here instead of panicking.
    pub fn ingest(&self, batch: &EventBatch) -> Result<(usize, usize), TransportError> {
        self.ingest_at(&batch.events, batch.base_ts)
    }

    /// Borrowing equivalent of [`ingest`](Self::ingest): event `i` carries
    /// timestamp `base_ts + i`.
    pub fn ingest_at(
        &self,
        events: &[Event],
        base_ts: u64,
    ) -> Result<(usize, usize), TransportError> {
        let mut per_shard: Vec<Vec<(OverlayId, i64, u64)>> = vec![Vec::new(); self.shard_count()];
        let mut reads_per_shard: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); self.shard_count()];
        let mut writes = 0;
        let mut reads = 0;
        // Hold the epoch gate shared through routing *and* submission: the
        // live node→shard map only changes under the exclusive gate, so a
        // batch can never be routed with a map that a concurrent rebalance
        // is rewriting, and an epoch-consistent read_batch never
        // interleaves mid-epoch. Cloning the core/map handles under the
        // gate also pins one consistent pair against topology epochs.
        let gate = self.epoch_gate.read();
        let core = self.core();
        let partition = self.partition_ref();
        let overlay = core.overlay();
        // One map snapshot for the whole batch instead of one atomic load
        // per event; the generation assert below pins that every event was
        // routed against a single published map.
        let map = partition.load();
        for (i, e) in events.iter().enumerate() {
            let ts = base_ts + i as u64;
            match *e {
                Event::Write { node, value } => {
                    if let Some(wid) = overlay.writer(node) {
                        per_shard[map.shard_of(wid.idx()).idx()].push((wid, value, ts));
                    }
                    writes += 1;
                }
                Event::Read { node } => {
                    if let Some(rid) = overlay.reader(node) {
                        reads_per_shard[map.shard_of(rid.idx()).idx()].push((i, node));
                    }
                    reads += 1;
                }
                Event::AddEdge { .. }
                | Event::RemoveEdge { .. }
                | Event::AddNode { .. }
                | Event::RemoveNode { .. } => {
                    // Topology mutations never ride the shared-gate hot
                    // path: the facade splits them out of the stream and
                    // applies them through `apply_topo` (an exclusive topo
                    // epoch). A mutation reaching this routing loop is
                    // consumed and dropped, mirroring how a write to a
                    // writerless node is consumed.
                }
            }
        }
        assert_eq!(
            map.generation(),
            partition.generation(),
            "partition map flipped while a routing batch held the shared epoch gate"
        );
        for (shard, group) in per_shard.into_iter().enumerate() {
            if !group.is_empty() {
                self.send_counted(shard, ShardMsg::Writes(group))?;
            }
        }
        for (shard, targets) in reads_per_shard.into_iter().enumerate() {
            if !targets.is_empty() {
                self.send_counted(
                    shard,
                    ShardMsg::Reads {
                        targets,
                        reply: None,
                    },
                )?;
            }
        }
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        drop(gate);
        // Automatic §4.8 trigger: the flip re-takes the gate exclusively,
        // so it must run after this epoch's shared hold is released. If
        // another thread's migration is already in flight, rebalance()
        // coalesces into it instead of stacking a second fence.
        if self.policy.every_epochs > 0 && epoch % self.policy.every_epochs == 0 {
            self.rebalance()?;
        }
        Ok((writes, reads))
    }

    /// Ingest a batch and drain it — one full epoch.
    pub fn ingest_epoch(&self, batch: &EventBatch) -> Result<(usize, usize), TransportError> {
        let counts = self.ingest(batch)?;
        self.drain()?;
        Ok(counts)
    }

    /// Borrowing equivalent of [`ingest_epoch`](Self::ingest_epoch).
    pub fn ingest_epoch_at(
        &self,
        events: &[Event],
        base_ts: u64,
    ) -> Result<(usize, usize), TransportError> {
        let counts = self.ingest_at(events, base_ts)?;
        self.drain()?;
        Ok(counts)
    }

    /// Route a single write (convenience; prefer [`ingest`](Self::ingest)
    /// for throughput).
    pub fn submit_write(&self, v: NodeId, value: i64, ts: u64) -> Result<(), TransportError> {
        let _gate = self.epoch_gate.read();
        let core = self.core();
        if let Some(wid) = core.overlay().writer(v) {
            let shard = self.partition_ref().shard_of(wid.idx()).idx();
            self.send_counted(shard, ShardMsg::Writes(vec![(wid, value, ts)]))?;
        }
        Ok(())
    }

    /// Evaluate a read on the calling thread. Between
    /// [`drain`](Self::drain)s this may observe partially propagated
    /// writes (the paper's relaxed consistency). For shard-executed,
    /// epoch-consistent reads use [`read_batch`](Self::read_batch) /
    /// [`read_service`](Self::read_service).
    ///
    /// Under [`TransportKind::Process`] the PAO state lives in the shard
    /// hosts, so this delegates to [`try_read`](Self::try_read) and maps a
    /// transport failure to `None`; call `try_read` directly to
    /// distinguish "no reader" from "host died".
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        match self.transport.kind() {
            TransportKind::InProcess => self.core().read(v),
            TransportKind::Process => self.try_read(v).unwrap_or(None),
        }
    }

    /// Fallible form of [`read`](Self::read) (same relaxed mid-epoch
    /// consistency). In-process it cannot fail; under
    /// [`TransportKind::Process`] the needed push PAOs are fetched from
    /// their owning hosts ([`ShardTransport::fetch_paos`]) and the
    /// finalize/pull evaluation runs on the calling thread.
    pub fn try_read(&self, v: NodeId) -> Result<Option<A::Output>, TransportError> {
        let core = self.core();
        match self.transport.kind() {
            TransportKind::InProcess => Ok(core.read(v)),
            TransportKind::Process => {
                let Some(rid) = core.overlay().reader(v) else {
                    return Ok(None);
                };
                let mut needed: FastSet<u32> = FastSet::default();
                if core.is_push(rid) {
                    needed.insert(rid.0);
                } else {
                    collect_pull_slots(&core, rid, &mut needed);
                }
                let reader = self.fetch_pao_reader(&core, &needed)?;
                Ok(core.read_via(v, &reader))
            }
        }
    }

    /// Fetch the listed push-PAO slots from their owning shard hosts and
    /// wrap them in a [`PaoReader`] for coordinator-side evaluation
    /// (process transport only).
    fn fetch_pao_reader(
        &self,
        core: &ShardedCore<A>,
        needed: &FastSet<u32>,
    ) -> Result<FetchedPaos<A::Partial>, TransportError> {
        let partition = self.partition_ref();
        let mut by_owner: Vec<Vec<u32>> = vec![Vec::new(); self.shard_count()];
        for &slot in needed.iter() {
            by_owner[partition.shard_of(slot as usize).idx()].push(slot);
        }
        let mut paos: FastMap<u32, A::Partial> = FastMap::default();
        for (shard, slots) in by_owner.into_iter().enumerate() {
            if !slots.is_empty() {
                for (slot, pao) in self.transport.fetch_paos(shard, &slots)? {
                    paos.insert(slot, pao);
                }
            }
        }
        Ok(FetchedPaos {
            paos,
            empty: core.aggregate().empty(),
        })
    }

    /// Evaluate a batch of reads **on the shard workers**, epoch-
    /// consistently: result `i` answers the query at `nodes[i]` (`None`
    /// when the node has no reader in the overlay).
    ///
    /// The batch follows the epoch-stamped snapshot rule: it takes the
    /// epoch gate exclusively (concurrently submitted ingestion waits at
    /// the gate), drains every in-flight batch and cross-shard delta, then
    /// fans the requests out to the shards owning each reader. Every
    /// answer therefore equals the single-threaded reference replay of the
    /// exact event-stream prefix ingested before the batch — a read can
    /// never observe a torn epoch, no matter how many threads are
    /// ingesting.
    ///
    /// Each owning worker serves its requests against a read snapshot of
    /// its own slab (one lock per batch, plain indexed access — the read
    /// analog of the batched write path) and resolves cross-shard pull
    /// subtrees through the foreign slabs' read locks. The caller thread
    /// only routes requests and collects replies; it never evaluates
    /// shard-owned PAO state.
    pub fn read_batch(&self, nodes: &[NodeId]) -> Result<Vec<Option<A::Output>>, TransportError> {
        let _gate = self.epoch_gate.write();
        self.drain()?;
        let core = self.core();
        let partition = self.partition_ref();
        let overlay = core.overlay();
        let mut results: Vec<Option<A::Output>> = vec![None; nodes.len()];
        // Under the process transport, pull-decided readers are evaluated
        // on the coordinator over fetched push PAOs (a shard host holds
        // only its own slots, so it cannot resolve a cross-shard pull
        // tree); push-decided readers ship to their owning host like any
        // in-process read. The engine is drained under the exclusive gate
        // either way, so both paths answer from the same epoch boundary.
        let process = self.transport.kind() == TransportKind::Process;
        let mut per_shard: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); self.shard_count()];
        let mut pull_targets: Vec<(usize, NodeId)> = Vec::new();
        for (i, &v) in nodes.iter().enumerate() {
            if let Some(rid) = overlay.reader(v) {
                if process && !core.is_push(rid) {
                    pull_targets.push((i, v));
                } else {
                    per_shard[partition.shard_of(rid.idx()).idx()].push((i, v));
                }
            }
        }
        let (reply, replies) = bounded::<ReadReplies<A>>(self.shard_count());
        let mut outstanding = 0usize;
        for (shard, targets) in per_shard.into_iter().enumerate() {
            if !targets.is_empty() {
                self.send_counted(
                    shard,
                    ShardMsg::Reads {
                        targets,
                        reply: Some(reply.clone()),
                    },
                )?;
                outstanding += 1;
            }
        }
        drop(reply);
        for _ in 0..outstanding {
            let answers = replies.recv().map_err(|_| TransportError::Closed {
                shard: None,
                detail: "shard peer dropped a read-reply channel".to_string(),
            })?;
            for (slot, answer) in answers {
                results[slot] = answer;
            }
        }
        if !pull_targets.is_empty() {
            let mut needed: FastSet<u32> = FastSet::default();
            for &(_, v) in &pull_targets {
                if let Some(rid) = overlay.reader(v) {
                    collect_pull_slots(&core, rid, &mut needed);
                }
            }
            let reader = self.fetch_pao_reader(&core, &needed)?;
            for (i, v) in pull_targets {
                results[i] = core.read_via(v, &reader);
            }
        }
        Ok(results)
    }

    /// Evaluate one read on the shard worker owning its reader — the
    /// single-request form of [`read_batch`](Self::read_batch), with the
    /// same epoch-consistent semantics.
    pub fn read_service(&self, v: NodeId) -> Result<Option<A::Output>, TransportError> {
        Ok(self
            .read_batch(std::slice::from_ref(&v))?
            .pop()
            .unwrap_or(None))
    }

    /// Total read requests served by the shard workers so far.
    pub fn reads_served(&self) -> u64 {
        self.reads.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// Route a window-expiration sweep up to `ts` through every shard's
    /// inbox. Each owning worker expires the windows of its own writers
    /// and cascades the removals — the caller thread touches no shard
    /// state, so this is safe to call concurrently with
    /// [`ingest`](Self::ingest). Per-writer ordering against writes holds
    /// for a single submitting thread: the expiration lands in each inbox
    /// after the writes submitted before it. Call [`drain`](Self::drain)
    /// (or use [`advance_time_epoch`](Self::advance_time_epoch)) to wait
    /// for the sweep to be fully applied.
    pub fn advance_time(&self, ts: u64) -> Result<(), TransportError> {
        // Only time windows ever expire by clock (WindowBuffer::advance is
        // a no-op otherwise): skip the slab-locking per-writer sweep
        // entirely for tuple/unbounded windows.
        if !matches!(self.window, WindowSpec::Time(_)) {
            return Ok(());
        }
        let _gate = self.epoch_gate.read();
        for shard in 0..self.shard_count() {
            self.send_counted(shard, ShardMsg::Expire(ts))?;
        }
        Ok(())
    }

    /// [`advance_time`](Self::advance_time) followed by a drain; returns
    /// the PAO updates applied while the sweep drained (includes any
    /// concurrently ingested writes — an exact per-sweep count would
    /// require stopping the world).
    pub fn advance_time_epoch(&self, ts: u64) -> Result<u64, TransportError> {
        let before = self.local_applies();
        self.advance_time(ts)?;
        self.drain()?;
        Ok(self.local_applies() - before)
    }

    /// Re-partition the engine from **observed** load and live-migrate the
    /// affected PAO state — the §4.8 loop closed: planning-time maps drift
    /// as write rates move, so the map is refined against the traffic the
    /// engine actually saw.
    ///
    /// Migration is **two-phase** and nearly pause-free:
    ///
    /// 1. *Refine (no gate).* Settle in-flight work ([`drain`](Self::drain)
    ///    — concurrent submitters are not blocked; this is not the fence),
    ///    build the observed-rate affinity view
    ///    ([`PushEdgeView::observed_with_reads`] over the core's applied-op
    ///    and read counters) and run the bounded incremental refinement
    ///    ([`refine_partition`]) off the *current* map. Commit only if the
    ///    modeled cut improvement clears the policy's
    ///    [`min_cut_gain`](RebalancePolicy::min_cut_gain).
    /// 2. *Phase-1 copy (no gate — ingestion keeps flowing).* Each
    ///    departing node's current owner clones its PAO out of the slab
    ///    and starts side-logging every subsequent op applied to it
    ///    (bounded by [`RebalancePolicy::side_log_bound`]). Snapshot and
    ///    log activation happen inside one inbox message on the owning
    ///    worker, so each op lands in exactly one of copy or log.
    /// 3. *Phase-2 flip (the only fence).* Take the epoch gate
    ///    exclusively, drain, collect the side-logs, replay them into the
    ///    staged copies ([`EngineCore::replay_ops`]; an overflowed shard's
    ///    nodes are re-copied exactly instead), install every copy at its
    ///    new owner ([`ShardedStore::relocate`]), publish the new routing
    ///    map, hand window-expiration ownership of moved writers to their
    ///    new owners, optionally compact the slabs
    ///    ([`RebalancePolicy::compact_after_orphans`]), release.
    ///
    /// Differential answers are preserved through the whole dance: during
    /// the copy the routing map is unchanged, so old owners keep applying
    /// (and logging) every op; epoch-consistent reads serialize with the
    /// flip and therefore only ever observe the pre- or post-migration map
    /// over identical values; and relaxed caller-thread reads resolve
    /// slots through the store's atomically republished (and revalidated)
    /// locations, so no read can observe a torn PAO.
    ///
    /// Only one migration can be in flight: a call racing another —
    /// including the automatic every-N-epochs trigger firing mid-copy —
    /// returns immediately with an uncommitted [`MigrationReport`] and
    /// bumps [`coalesced_rebalances`](Self::coalesced_rebalances), so
    /// fences never stack and nothing is double-drained.
    ///
    /// Committed rebalances *decay* the observation window
    /// ([`EngineCore::decay_observed`] by [`RebalancePolicy::decay`])
    /// rather than zeroing it, so the next interval blends fresh drift
    /// with a fading memory of history.
    pub fn rebalance(&self) -> Result<MigrationReport, TransportError> {
        let Some(flight) = MigrationFlight::begin(self) else {
            return Ok(MigrationReport::skipped(0.0, 0.0));
        };
        // The single-flight guard keeps topology epochs out, so this pair
        // stays current for the whole migration.
        let core = self.core();
        // Observed counters live where the ops are applied: on the
        // coordinator core in-process, on the shard hosts over the socket
        // transport (summed element-wise here).
        let (counts, pulls) = match self.transport.kind() {
            TransportKind::InProcess => (core.observed_push_counts(), core.observed_pull_counts()),
            TransportKind::Process => self.transport.observed_counts()?,
        };
        let view =
            PushEdgeView::observed_with_reads(core.overlay(), |n| core.is_push(n), &counts, &pulls);
        let current = self.partition_ref().snapshot();
        let (refined, stats) = refine_partition(
            &view,
            &current,
            &RefineConfig {
                balance: self.policy.balance,
                max_move_fraction: self.policy.max_move_fraction,
                ..RefineConfig::default()
            },
        );
        let committed = stats.moved > 0
            && stats.cut_before > 0.0
            && stats.gain_fraction() >= self.policy.min_cut_gain;
        if !committed {
            return Ok(MigrationReport::skipped(stats.cut_before, stats.cut_after));
        }
        let moves: Vec<(OverlayId, ShardId)> = (0..refined.len())
            .filter_map(|idx| {
                let dest = refined.shard_of(idx);
                (dest != current.shard_of(idx)).then_some((OverlayId(idx as u32), dest))
            })
            .collect();
        let mut report = flight.execute(moves)?;
        report.cut_before = stats.cut_before;
        report.cut_after = stats.cut_after;
        match self.transport.kind() {
            TransportKind::InProcess => core.decay_observed(self.policy.decay),
            TransportKind::Process => self.transport.decay_observed(self.policy.decay)?,
        }
        Ok(report)
    }

    /// Migrate the engine to an **explicit** target node→shard map with
    /// the same two-phase protocol as [`rebalance`](Self::rebalance),
    /// skipping the observed-load refinement: every node whose current
    /// owner differs from `target`'s is copied concurrently with
    /// ingestion and flipped under the single phase-2 fence. Commits
    /// whenever at least one node moves (`cut_before`/`cut_after` are 0 —
    /// no affinity view is consulted), and does not decay the observation
    /// window. This is the planner-driven entry point (and what the drift
    /// bench uses to keep a migration continuously in flight).
    ///
    /// Coalesces exactly like `rebalance` when another migration is
    /// already in flight.
    ///
    /// # Panics
    /// Panics if `target` does not cover every overlay node or names a
    /// shard outside the engine's shard count.
    pub fn migrate_to(&self, target: &Partition) -> Result<MigrationReport, TransportError> {
        let Some(flight) = MigrationFlight::begin(self) else {
            return Ok(MigrationReport::skipped(0.0, 0.0));
        };
        let current = self.partition_ref().snapshot();
        assert_eq!(
            target.len(),
            current.len(),
            "target partition must cover every overlay node"
        );
        let moves: Vec<(OverlayId, ShardId)> = (0..target.len())
            .filter_map(|idx| {
                let dest = target.shard_of(idx);
                assert!(dest.idx() < self.shard_count(), "target shard out of range");
                (dest != current.shard_of(idx)).then_some((OverlayId(idx as u32), dest))
            })
            .collect();
        flight.execute(moves)
    }

    /// Gather the slots a process-mode resync or epoch needs: under the
    /// socket transport the coordinator core is a stale mirror between
    /// fences, so state-rewriting paths first pull every shard's owned
    /// state back in ([`ShardTransport::fetch_state`]) before exporting.
    fn resync_from_hosts(&self, core: &ShardedCore<A>) -> Result<(), TransportError> {
        for shard in 0..self.shard_count() {
            let st = self.transport.fetch_state(shard)?;
            core.install_state(&st);
        }
        Ok(())
    }

    /// Apply one **topology epoch**: swap the engine onto a repaired
    /// overlay + extended decisions without restarting workers or
    /// re-running the planner.
    ///
    /// `overlay` is the incrementally repaired overlay (ids append-only:
    /// it must extend the current one — retirements tombstone in place,
    /// they never renumber). `decisions` covers every id (see
    /// [`eagr_flow::topo_plan_delta`]); `backfill` carries window history
    /// for fresh writers; `materialize` is the plan delta's stale-PAO set.
    ///
    /// Protocol: acquire the migration single-flight guard (topology
    /// epochs and live migrations serialize — both rewrite the map), take
    /// the epoch gate exclusively, drain, then
    ///
    /// 1. export the old core's window + PAO state;
    /// 2. extend the node→shard map: each fresh node is assigned online by
    ///    its overlay-neighbor affinity ([`Partition::assign_online`]) —
    ///    no global re-partition;
    /// 3. build the new core over fresh slabs, reinstall carried state,
    ///    backfill fresh writers, and rematerialize the `materialize` set
    ///    in topological order;
    /// 4. tombstone every retired node's slab slot
    ///    ([`ShardedStore::retire_slot`]) so compaction reclaims it;
    /// 5. publish the new core/map pair and ship a `ShardMsg::Topo` swap
    ///    through every shard inbox — drained like an epoch, so when this
    ///    returns every worker routes against the new topology.
    ///
    /// Compaction piggybacks on the fence exactly like a migration flip
    /// when the orphan count clears the policy trigger.
    ///
    /// # Panics
    /// Panics if `overlay` has fewer ids than the current one or
    /// `decisions` does not cover it.
    pub fn apply_topo(
        &self,
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        backfill: &[(OverlayId, WindowBuffer)],
        materialize: &FastSet<OverlayId>,
    ) -> Result<TopoEpochReport, TransportError> {
        let flight = MigrationFlight::acquire(self);
        let gate = self.epoch_gate.write();
        self.drain()?;
        let old_core = self.core();
        if self.transport.kind() == TransportKind::Process {
            // The hosts hold the live PAO/window state; pull it into the
            // coordinator mirror so export_state below carries reality.
            self.resync_from_hosts(&old_core)?;
        }
        let old_partition = self.partition_ref();
        let old_overlay = old_core.overlay();
        let old_n = old_overlay.node_count();
        let new_n = overlay.node_count();
        assert!(
            new_n >= old_n,
            "overlay ids are append-only: the repaired overlay must extend the current one"
        );
        let carried = old_core.export_state();
        // Extend the map online: score each fresh node against the shards
        // of its already-assigned overlay neighbors (LDG-style streaming
        // assignment) instead of re-partitioning globally.
        let mut part = old_partition.snapshot();
        for idx in old_n..new_n {
            let id = OverlayId(idx as u32);
            let affinity: Vec<(u32, f32)> = if overlay.is_retired(id) {
                Vec::new()
            } else {
                overlay
                    .inputs(id)
                    .iter()
                    .chain(overlay.outputs(id).iter())
                    .filter(|&&(nb, _)| nb.idx() < idx)
                    .map(|&(nb, _)| (nb.0, 1.0))
                    .collect()
            };
            part.assign_online(idx, &affinity);
        }
        let store = ShardedStore::new(&part, || agg.empty());
        let new_core = Arc::new(EngineCore::with_store(
            agg,
            Arc::clone(&overlay),
            decisions,
            self.window,
            store,
        ));
        // Seed exactly like a registry rebuild: carried state, fresh-writer
        // backfill, then rematerialize the stale-PAO set writers-first.
        new_core.install_state(&carried);
        let mut backfilled: FastSet<OverlayId> = FastSet::default();
        for (wid, buf) in backfill {
            if !overlay.is_retired(*wid) {
                new_core.install_window(*wid, buf);
                backfilled.insert(*wid);
            }
        }
        let mut rematerialized = 0usize;
        if !materialize.is_empty() || !backfilled.is_empty() {
            for n in overlay.topo_order() {
                if overlay.is_retired(n) || !new_core.is_push(n) {
                    continue;
                }
                if !materialize.contains(&n) && !backfilled.contains(&n) {
                    continue;
                }
                if matches!(overlay.kind(n), OverlayKind::Writer(_)) {
                    new_core.rebuild_writer_pao(n);
                } else {
                    new_core.materialize(n);
                }
                rematerialized += 1;
            }
        }
        // Tombstone retired slots so compaction sweeps them; the fresh
        // store re-allocated a slot for every id, including long-retired
        // ones, so all of them orphan again here.
        let mut orphaned = 0u64;
        let mut retired_nodes = 0usize;
        for idx in 0..new_n {
            let id = OverlayId(idx as u32);
            if overlay.is_retired(id) {
                new_core.store().retire_slot(idx);
                orphaned += 1;
                if idx >= old_n || !old_overlay.is_retired(id) {
                    retired_nodes += 1;
                }
            }
        }
        let new_partition = Arc::new(LivePartition::new(&part));
        let mut writers_by_shard: Vec<Vec<OverlayId>> = vec![Vec::new(); self.shard_count()];
        for (wid, _) in overlay.writers() {
            writers_by_shard[new_partition.shard_of(wid.idx()).idx()].push(wid);
        }
        *self.core.write() = Arc::clone(&new_core);
        *self.partition.write() = Arc::clone(&new_partition);
        match self.transport.kind() {
            TransportKind::InProcess => {
                // Swap the worker-held handles through the inboxes. Under
                // the exclusive gate over a drained engine the inboxes are
                // otherwise empty (ingest needs the shared gate, epoch
                // reads the exclusive one, migrations the flight guard we
                // hold), so the swap is the only message each worker sees
                // this epoch.
                let swap = Arc::new(TopoSwap {
                    core: Arc::clone(&new_core),
                    partition: new_partition,
                    writers_by_shard,
                });
                for shard in 0..self.shard_count() {
                    self.send_counted(shard, ShardMsg::Topo(Arc::clone(&swap)))?;
                }
                self.drain()?;
            }
            TransportKind::Process => {
                // Hosts can't share the Arc-swapped core: ship each one a
                // serialized plan plus the slice of rebuilt state it owns
                // under the new map, and let it rebuild its engine locally.
                let mut full = new_core.export_state();
                let map_vec: Vec<u32> = (0..part.len()).map(|i| part.shard_of(i).0).collect();
                for shard in 0..self.shard_count() {
                    let owned = EngineState {
                        windows: full
                            .windows
                            .iter_mut()
                            .enumerate()
                            .map(|(i, w)| {
                                (map_vec.get(i).copied() == Some(shard as u32))
                                    .then(|| w.take())
                                    .flatten()
                            })
                            .collect(),
                        paos: full
                            .paos
                            .iter_mut()
                            .enumerate()
                            .map(|(i, p)| {
                                (map_vec.get(i).copied() == Some(shard as u32))
                                    .then(|| p.take())
                                    .flatten()
                            })
                            .collect(),
                    };
                    let plan = PlanUpdate {
                        overlay: Arc::clone(&overlay),
                        decisions: new_core.decisions(),
                        window: self.window,
                        map: map_vec.clone(),
                        state: owned,
                    };
                    self.transport.swap_plan(shard, &plan)?;
                }
            }
        }
        let slots_reclaimed = match self.transport.kind() {
            TransportKind::InProcess => {
                let store = new_core.store();
                if self.policy.compact_after_orphans > 0
                    && store.orphaned_slots() >= self.policy.compact_after_orphans
                {
                    let r = store.compact();
                    self.slots_reclaimed.fetch_add(r, Ordering::AcqRel);
                    r
                } else {
                    0
                }
            }
            TransportKind::Process => {
                if self.policy.compact_after_orphans > 0
                    && self.transport.orphaned_slots()? >= self.policy.compact_after_orphans
                {
                    let r = self.transport.compact_shards()?;
                    self.slots_reclaimed.fetch_add(r, Ordering::AcqRel);
                    r
                } else {
                    0
                }
            }
        };
        drop(gate);
        drop(flight);
        self.topo_epochs.fetch_add(1, Ordering::AcqRel);
        Ok(TopoEpochReport {
            fresh_nodes: new_n - old_n,
            retired_nodes,
            rematerialized,
            orphaned_slots: orphaned,
            slots_reclaimed,
        })
    }

    /// Topology epochs applied so far ([`apply_topo`](Self::apply_topo)).
    pub fn topo_epochs(&self) -> u64 {
        self.topo_epochs.load(Ordering::Acquire)
    }

    /// The two-phase migration body (phase-1 concurrent copy + phase-2
    /// fenced flip) for an explicit move set. Caller holds the
    /// single-flight guard; `moves` lists `(node, destination)` pairs
    /// whose destination differs from the current owner.
    fn execute_migration(
        &self,
        moves: Vec<(OverlayId, ShardId)>,
    ) -> Result<MigrationReport, TransportError> {
        if moves.is_empty() {
            return Ok(MigrationReport::skipped(0.0, 0.0));
        }
        if self.transport.kind() == TransportKind::Process {
            return self.execute_migration_fenced(moves);
        }
        // The caller holds the single-flight guard, so topology epochs
        // cannot replace this pair mid-migration.
        let core = self.core();
        let partition = self.partition_ref();
        // Settle in-flight work so the staged copies start from an epoch
        // boundary; concurrent submitters are not blocked.
        self.drain()?;
        let epochs_at_copy = self.epochs();
        // ---- Phase 1: copy + side-log, concurrent with ingestion. ----
        let mut by_owner: Vec<Vec<(OverlayId, ShardId)>> = vec![Vec::new(); self.shard_count()];
        for &(n, dest) in &moves {
            by_owner[partition.shard_of(n.idx()).idx()].push((n, dest));
        }
        let (copy_tx, copy_rx) = bounded::<CopyReply<A>>(self.shard_count());
        let mut involved = Vec::new();
        for (owner, group) in by_owner.into_iter().enumerate() {
            if !group.is_empty() {
                involved.push(owner);
                self.send_counted(
                    owner,
                    ShardMsg::Copy {
                        moves: group,
                        reply: copy_tx.clone(),
                    },
                )?;
            }
        }
        drop(copy_tx);
        // (origin shard, node, destination, staged PAO)
        let mut staged: Vec<(ShardId, OverlayId, ShardId, A::Partial)> =
            Vec::with_capacity(moves.len());
        for _ in 0..involved.len() {
            let (origin, group) = copy_rx.recv().map_err(|_| TransportError::Closed {
                shard: None,
                detail: "shard worker dropped its Copy reply".to_string(),
            })?;
            staged.extend(
                group
                    .into_iter()
                    .map(|(n, dest, pao)| (origin, n, dest, pao)),
            );
        }
        let copy_epochs = self.epochs() - epochs_at_copy;
        // ---- Phase 2: the flip — the only fenced section. ----
        let gate = self.epoch_gate.write();
        self.drain()?;
        let (log_tx, log_rx) = bounded::<SideLogReply>(self.shard_count());
        for &owner in &involved {
            self.send_counted(
                owner,
                ShardMsg::EndCopy {
                    commit: true,
                    reply: log_tx.clone(),
                },
            )?;
        }
        drop(log_tx);
        let mut log_by_node: std::collections::HashMap<u32, Vec<DeltaOp>> =
            std::collections::HashMap::new();
        let mut overflowed: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for _ in 0..involved.len() {
            let (origin, log, over) = log_rx.recv().map_err(|_| TransportError::Closed {
                shard: None,
                detail: "shard worker dropped its EndCopy reply".to_string(),
            })?;
            if over {
                overflowed.insert(origin.0);
            } else {
                for (n, op) in log {
                    log_by_node.entry(n.0).or_default().push(op);
                }
            }
        }
        self.drain()?;
        let store = core.store();
        let mut deltas_replayed = 0u64;
        let nodes_copied = staged.len();
        for (origin, n, dest, mut pao) in staged {
            if overflowed.contains(&origin.0) {
                // The side-log was dropped: the live slot (fully applied,
                // engine drained under the fence) is the exact value.
                pao = store.with_read(n.idx(), |p| p.clone());
            } else if let Some(ops) = log_by_node.remove(&n.0) {
                deltas_replayed += core.replay_ops(&mut pao, ops);
            }
            store.relocate(n.idx(), dest, pao);
            partition.set(n.idx(), dest);
        }
        partition.publish();
        // Hand window-expiration ownership to the new owners (old owners
        // dropped theirs at EndCopy). Expirations can't interleave: they
        // need the shared gate.
        let overlay = core.overlay();
        let mut adopt: Vec<Vec<OverlayId>> = vec![Vec::new(); self.shard_count()];
        for &(n, dest) in &moves {
            if !overlay.is_retired(n) && matches!(overlay.kind(n), OverlayKind::Writer(_)) {
                adopt[dest.idx()].push(n);
            }
        }
        for (dest, writers) in adopt.into_iter().enumerate() {
            if !writers.is_empty() {
                self.send_counted(dest, ShardMsg::Adopt(writers))?;
            }
        }
        self.drain()?;
        let slots_reclaimed = if self.policy.compact_after_orphans > 0
            && store.orphaned_slots() >= self.policy.compact_after_orphans
        {
            let r = store.compact();
            self.slots_reclaimed.fetch_add(r, Ordering::AcqRel);
            r
        } else {
            0
        };
        drop(gate);
        self.rebalances.fetch_add(1, Ordering::AcqRel);
        self.nodes_migrated
            .fetch_add(nodes_copied as u64, Ordering::AcqRel);
        Ok(MigrationReport {
            nodes_copied,
            deltas_replayed,
            fence_epochs: 1,
            copy_epochs,
            slots_reclaimed,
            cut_before: 0.0,
            cut_after: 0.0,
            committed: true,
        })
    }

    /// Process-transport migration: a **single-phase fenced** move. The
    /// concurrent copy + side-log protocol needs shared-memory side-log
    /// handoff, so over sockets the engine instead takes the exclusive
    /// gate, drains, pulls each moving slot's full state from its owner
    /// ([`ShardTransport::fetch_slots`]), installs it at the destination
    /// host ([`ShardTransport::install_slots`]), republishes the routing
    /// map everywhere ([`ShardTransport::map_update`] — which also hands
    /// over window-expiration ownership), and releases. Drained under the
    /// fence, the fetched state is exact — no deltas ever need replaying
    /// (`deltas_replayed` is always 0 in process mode), at the cost of a
    /// longer fence than the in-process two-phase flip.
    fn execute_migration_fenced(
        &self,
        moves: Vec<(OverlayId, ShardId)>,
    ) -> Result<MigrationReport, TransportError> {
        let partition = self.partition_ref();
        let gate = self.epoch_gate.write();
        self.drain()?;
        let mut by_owner: Vec<Vec<(OverlayId, ShardId)>> = vec![Vec::new(); self.shard_count()];
        for &(n, dest) in &moves {
            by_owner[partition.shard_of(n.idx()).idx()].push((n, dest));
        }
        let mut by_dest: Vec<Vec<SlotState<A>>> = vec![Vec::new(); self.shard_count()];
        for (owner, group) in by_owner.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let slots: Vec<u32> = group.iter().map(|&(n, _)| n.0).collect();
            let fetched = self.transport.fetch_slots(owner, &slots)?;
            for (slot, pao, win) in fetched {
                let dest = group
                    .iter()
                    .find(|&&(n, _)| n.0 == slot)
                    .map(|&(_, d)| d)
                    .expect("fetched slot is one we asked for");
                by_dest[dest.idx()].push((slot, pao, win));
            }
        }
        let nodes_copied = by_dest.iter().map(Vec::len).sum::<usize>();
        for (dest, slots) in by_dest.into_iter().enumerate() {
            if !slots.is_empty() {
                self.transport.install_slots(dest, slots)?;
            }
        }
        // Publish the new map locally (coordinator routing) and remotely
        // (host routing + expiration-writer recompute) only after every
        // destination holds the state.
        let pairs: Vec<(u32, u32)> = moves.iter().map(|&(n, d)| (n.0, d.0)).collect();
        for &(n, dest) in &moves {
            partition.set(n.idx(), dest);
        }
        partition.publish();
        self.transport.map_update(&pairs)?;
        let slots_reclaimed = if self.policy.compact_after_orphans > 0
            && self.transport.orphaned_slots()? >= self.policy.compact_after_orphans
        {
            let r = self.transport.compact_shards()?;
            self.slots_reclaimed.fetch_add(r, Ordering::AcqRel);
            r
        } else {
            0
        };
        drop(gate);
        self.rebalances.fetch_add(1, Ordering::AcqRel);
        self.nodes_migrated
            .fetch_add(nodes_copied as u64, Ordering::AcqRel);
        Ok(MigrationReport {
            nodes_copied,
            deltas_replayed: 0,
            fence_epochs: 1,
            copy_epochs: 0,
            slots_reclaimed,
            cut_before: 0.0,
            cut_after: 0.0,
            committed: true,
        })
    }

    /// Committed rebalances so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Acquire)
    }

    /// Total nodes live-migrated across all committed rebalances.
    pub fn nodes_migrated(&self) -> u64 {
        self.nodes_migrated.load(Ordering::Acquire)
    }

    /// Rebalance calls (manual or every-N-epochs auto-trigger) that found
    /// another migration already in flight and coalesced into it instead
    /// of running — the re-entry discipline that keeps fences from
    /// stacking.
    pub fn coalesced_rebalances(&self) -> u64 {
        self.coalesced.load(Ordering::Acquire)
    }

    /// Whether a migration (phase 1 or 2) is currently in flight.
    pub fn migration_in_flight(&self) -> bool {
        self.migrating.load(Ordering::Acquire)
    }

    /// PAO slots orphaned by migrations since the last compaction
    /// ([`ShardedStore::orphaned_slots`]): each migrated node leaves its
    /// old slab slot in place (tear-free handoff for concurrent relaxed
    /// readers) until a compaction pass — automatic once
    /// [`RebalancePolicy::compact_after_orphans`] accumulate, or manual
    /// via [`compact`](Self::compact) — reclaims them.
    pub fn orphaned_pao_slots(&self) -> u64 {
        match self.transport.kind() {
            TransportKind::InProcess => self.core().store().orphaned_slots(),
            TransportKind::Process => self.transport.orphaned_slots().unwrap_or(0),
        }
    }

    /// Orphaned PAO slots reclaimed by compaction across the engine's
    /// lifetime (auto-compactions piggybacked on migration fences plus
    /// manual [`compact`](Self::compact) calls).
    pub fn slots_reclaimed(&self) -> u64 {
        self.slots_reclaimed.load(Ordering::Acquire)
    }

    /// Compact the PAO slabs now: take the epoch gate exclusively, drain,
    /// repack every slab in place ([`ShardedStore::compact`]) and release.
    /// Returns the orphaned slots reclaimed;
    /// [`orphaned_pao_slots`](Self::orphaned_pao_slots) is 0 afterwards.
    /// Concurrent relaxed readers are safe throughout: they revalidate
    /// slot locations under the slab locks.
    pub fn compact(&self) -> Result<u64, TransportError> {
        let _gate = self.epoch_gate.write();
        self.drain()?;
        let r = match self.transport.kind() {
            TransportKind::InProcess => self.core().store().compact(),
            TransportKind::Process => self.transport.compact_shards()?,
        };
        self.slots_reclaimed.fetch_add(r, Ordering::AcqRel);
        Ok(r)
    }

    /// The rebalance policy the engine runs under.
    pub fn rebalance_policy(&self) -> RebalancePolicy {
        self.policy
    }

    /// Epoch barrier: block until every routed batch and all transitively
    /// generated cross-shard deltas have been applied. A dead shard peer
    /// (worker thread or host process) surfaces as
    /// [`TransportError::Closed`] instead of an infinite spin — the
    /// barrier polls [`ShardTransport::healthy`] while it waits.
    pub fn drain(&self) -> Result<(), TransportError> {
        while self.pending.load(Ordering::Acquire) != 0 {
            self.transport.healthy()?;
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Number of [`ingest`](Self::ingest) calls so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Total delta ops shipped across shard boundaries so far.
    pub fn cross_shard_deltas(&self) -> u64 {
        self.cross_out
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }

    /// Total delta ops applied to shard slabs so far.
    pub fn local_applies(&self) -> u64 {
        self.local.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// Per-shard work counters: slab applies, deltas shipped to peers, and
    /// reads served, plus the node count each shard owns. Meaningful after
    /// a [`drain`](Self::drain); between epochs the numbers are in flight.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let sizes = self.partition_ref().shard_sizes();
        (0..self.shard_count())
            .map(|s| ShardStats {
                shard: ShardId(s as u32),
                nodes: sizes[s],
                local_applies: self.local[s].load(Ordering::Acquire),
                cross_deltas_out: self.cross_out[s].load(Ordering::Acquire),
                reads_served: self.reads[s].load(Ordering::Acquire),
            })
            .collect()
    }

    /// Drain (best effort — a dead peer can't be drained), stop every
    /// shard peer, and wait for it to exit.
    pub fn shutdown(self) {
        let _ = self.drain();
        self.transport.shutdown();
    }
}

/// RAII single-flight migration guard: [`begin`](Self::begin) wins the
/// CAS on [`ShardedEngine::migrating`] or records a coalesced call;
/// dropping the guard releases the flag (unwind-safe, so a panicking
/// migration doesn't wedge every later rebalance into coalescing).
struct MigrationFlight<'a, A: Aggregate> {
    eng: &'a ShardedEngine<A>,
}

impl<'a, A: Aggregate> MigrationFlight<'a, A> {
    fn begin(eng: &'a ShardedEngine<A>) -> Option<Self> {
        if eng
            .migrating
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Some(Self { eng })
        } else {
            eng.coalesced.fetch_add(1, Ordering::AcqRel);
            None
        }
    }

    /// Win the flag unconditionally, spinning until any in-flight
    /// migration finishes — the topology-epoch entry point, which must
    /// serialize with migrations rather than coalesce into them. Safe to
    /// spin here: the engine's gate is not held, so an in-flight
    /// migration's fenced phase can complete.
    fn acquire(eng: &'a ShardedEngine<A>) -> Self {
        while eng
            .migrating
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            std::thread::yield_now();
        }
        Self { eng }
    }

    fn execute(&self, moves: Vec<(OverlayId, ShardId)>) -> Result<MigrationReport, TransportError> {
        self.eng.execute_migration(moves)
    }
}

impl<A: Aggregate> Drop for MigrationFlight<'_, A> {
    fn drop(&mut self) {
        self.eng.migrating.store(false, Ordering::Release);
    }
}

impl<A: Aggregate> Drop for ShardedEngine<A> {
    /// In-process workers hold each other's senders, so dropping the
    /// engine's own channel ends alone would never disconnect the inboxes
    /// (and host processes would linger); send explicit stops (without
    /// joining) so every peer exits. Idempotent after
    /// [`shutdown`](Self::shutdown) — transports ignore stops to peers
    /// that are already gone.
    fn drop(&mut self) {
        self.transport.stop();
    }
}

/// Per-shard worker state.
struct ShardWorker<A: Aggregate> {
    core: Arc<ShardedCore<A>>,
    partition: Arc<LivePartition>,
    shard: ShardId,
    /// Writer nodes this shard owns (window expiration targets). Live
    /// migration hands entries off between workers via
    /// [`ShardMsg::EndCopy`] (disown) and [`ShardMsg::Adopt`].
    writers: Vec<OverlayId>,
    rx: Receiver<ShardMsg<A>>,
    txs: Vec<Sender<ShardMsg<A>>>,
    pending: Arc<AtomicU64>,
    cross_out: Arc<Vec<AtomicU64>>,
    local: Arc<Vec<AtomicU64>>,
    reads: Arc<Vec<AtomicU64>>,
    /// Active migration side-log (between [`ShardMsg::Copy`] and
    /// [`ShardMsg::EndCopy`]); `None` outside a phase-1 copy.
    side: Option<SideLog>,
    /// [`RebalancePolicy::side_log_bound`], captured at construction.
    side_log_bound: usize,
}

impl<A: Aggregate> ShardWorker<A> {
    fn run(mut self) {
        let shards = self.partition.shards;
        // Per-destination-shard outboxes, reused across messages.
        let mut outbox: Vec<Vec<(OverlayId, DeltaOp)>> = vec![Vec::new(); shards];
        let mut stack: Vec<(OverlayId, DeltaOp)> = Vec::with_capacity(32);
        let mut stopping = false;
        while !stopping {
            let Ok(msg) = self.rx.recv() else { break };
            // `owed` counts pending-counted messages applied but whose
            // decrement is deferred until their cross-shard deltas are
            // shipped — so `pending` can never hit zero while deltas sit
            // in an outbox.
            let mut owed = 0u64;
            stopping = self.handle(msg, &mut owed, &mut stack, &mut outbox);
            // Ship every outbox batch without ever blocking on a full
            // peer inbox: two workers blocked sending to each other's
            // full queues would deadlock, so on backpressure this worker
            // services its *own* inbox instead and retries.
            loop {
                let mut shipped_all = true;
                for (dest, buf) in outbox.iter_mut().enumerate() {
                    if buf.is_empty() {
                        continue;
                    }
                    let batch = std::mem::take(buf);
                    let n = batch.len() as u64;
                    // Count the message before it becomes visible to the
                    // receiver (its decrement must never race ahead).
                    self.pending.fetch_add(1, Ordering::AcqRel);
                    match self.txs[dest].try_send(ShardMsg::Deltas(batch)) {
                        Ok(()) => {
                            self.cross_out[self.shard.idx()].fetch_add(n, Ordering::AcqRel);
                        }
                        Err(e) if e.is_full() => {
                            self.pending.fetch_sub(1, Ordering::AcqRel);
                            let ShardMsg::Deltas(batch) = e.into_inner() else {
                                // lint: allow(panic-free, into_inner returns the message this very arm failed to send, which is the Deltas constructed four lines up)
                                unreachable!("only deltas are flushed")
                            };
                            *buf = batch;
                            shipped_all = false;
                        }
                        Err(_) => {
                            // Receiver gone: the engine is shutting down
                            // and the delta can no longer be delivered.
                            self.pending.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                }
                if shipped_all {
                    break;
                }
                match self.rx.try_recv() {
                    Ok(m) => {
                        if self.handle(m, &mut owed, &mut stack, &mut outbox) {
                            stopping = true;
                        }
                    }
                    Err(_) => std::thread::yield_now(),
                }
            }
            if owed > 0 {
                self.pending.fetch_sub(owed, Ordering::AcqRel);
            }
        }
    }

    /// Apply one inbox message; returns `true` for [`ShardMsg::Stop`].
    fn handle(
        &mut self,
        msg: ShardMsg<A>,
        owed: &mut u64,
        stack: &mut Vec<(OverlayId, DeltaOp)>,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
    ) -> bool {
        match msg {
            ShardMsg::Writes(group) => {
                *owed += 1;
                let core = Arc::clone(&self.core);
                let mut slab = core.store().lock_shard(self.shard);
                for (wid, value, ts) in group {
                    for op in core.window_ops(wid, value, ts) {
                        stack.push((wid, op));
                        self.cascade(&mut slab, stack, outbox);
                    }
                }
                false
            }
            ShardMsg::Deltas(group) => {
                *owed += 1;
                let core = Arc::clone(&self.core);
                let mut slab = core.store().lock_shard(self.shard);
                for (n, op) in group {
                    stack.push((n, op));
                    self.cascade(&mut slab, stack, outbox);
                }
                false
            }
            ShardMsg::Reads { targets, reply } => {
                *owed += 1;
                // One slab read lock per request batch: local PAOs (push
                // finalizes, the local part of pull trees) resolve with
                // plain indexed access; cross-shard pull inputs fall
                // through to the foreign slabs' read locks. This worker is
                // the only writer of its slab, so snapshotting it cannot
                // self-deadlock, and foreign access takes exactly one lock
                // at a time, so no lock cycle can form.
                let snap = self.core.store().snapshot_shard(self.shard);
                self.reads[self.shard.idx()].fetch_add(targets.len() as u64, Ordering::AcqRel);
                match reply {
                    Some(tx) => {
                        let answers: ReadReplies<A> = targets
                            .into_iter()
                            .map(|(slot, v)| (slot, self.core.read_via(v, &snap)))
                            .collect();
                        // A dropped receiver means the requesting thread
                        // gave up (engine shutdown) — nothing to deliver.
                        // lint: allow(channel-discipline, rendezvous reply to a blocked engine caller outside the shard mesh — the engine never holds an inbox while waiting, so no cycle)
                        let _ = tx.send(answers);
                    }
                    None => {
                        // Fire-and-forget reads from a mixed ingest batch.
                        for (_, v) in targets {
                            std::hint::black_box(self.core.read_via(v, &snap));
                        }
                    }
                }
                false
            }
            ShardMsg::Expire(ts) => {
                *owed += 1;
                let core = Arc::clone(&self.core);
                let mut slab = core.store().lock_shard(self.shard);
                let writers = self.writers.clone();
                for wid in writers {
                    for op in core.expire_ops(wid, ts) {
                        stack.push((wid, op));
                        self.cascade(&mut slab, stack, outbox);
                    }
                }
                false
            }
            ShardMsg::Copy { moves, reply } => {
                *owed += 1;
                // Phase-1 copy: clone the departing PAOs under one read
                // snapshot of this worker's own slab (this worker is its
                // only writer, so the snapshot is exact), then activate
                // the side-log — all inside this one handler, so every op
                // at a departing node lands in exactly one of copy or log.
                let mut paos = Vec::with_capacity(moves.len());
                {
                    let snap = self.core.store().snapshot_shard(self.shard);
                    for &(n, dest) in &moves {
                        paos.push((n, dest, snap.with_pao(n.idx(), |p| p.clone())));
                    }
                }
                self.side = Some(SideLog {
                    nodes: moves.iter().map(|&(n, _)| n.0).collect(),
                    log: Vec::new(),
                    bound: self.side_log_bound,
                    overflowed: false,
                });
                // The rebalancer's reply channel holds one slot per shard,
                // so this send can't block; a dropped receiver means the
                // migration was abandoned.
                // lint: allow(channel-discipline, reply channel is sized one-slot-per-shard so the send never blocks)
                let _ = reply.send((self.shard, paos));
                false
            }
            ShardMsg::EndCopy { commit, reply } => {
                *owed += 1;
                let side = self.side.take();
                let (log, overflowed) = match side {
                    Some(side) => {
                        if commit && !self.writers.is_empty() {
                            // Disown window expiration for the departing
                            // writers; their new owners Adopt them under
                            // the same fence.
                            self.writers.retain(|w| !side.nodes.contains(&w.0));
                        }
                        (side.log, side.overflowed)
                    }
                    None => (Vec::new(), false),
                };
                // lint: allow(channel-discipline, reply channel is sized one-slot-per-shard so the send never blocks)
                let _ = reply.send((self.shard, log, overflowed));
                false
            }
            ShardMsg::Adopt(writers) => {
                *owed += 1;
                let overlay = self.core.overlay();
                for n in writers {
                    if !overlay.is_retired(n) && matches!(overlay.kind(n), OverlayKind::Writer(_)) {
                        self.writers.push(n);
                    }
                }
                false
            }
            ShardMsg::Topo(up) => {
                *owed += 1;
                // Swap onto the rebuilt topology. Any active side-log is
                // void: a topology epoch serializes with migrations via the
                // single-flight guard, so none can be mid-copy here.
                self.core = Arc::clone(&up.core);
                self.partition = Arc::clone(&up.partition);
                self.writers = up.writers_by_shard[self.shard.idx()].clone();
                self.side = None;
                false
            }
            ShardMsg::Stop => true,
        }
    }

    /// Apply every stacked op owned by this shard, following push edges:
    /// same-shard consumers are applied in the same slab pass, cross-shard
    /// consumers accumulate in the outboxes. During a phase-1 copy, ops
    /// applied to departing nodes are additionally buffered in the
    /// side-log (bounded) so the flip can replay them into the staged
    /// copies.
    fn cascade(
        &mut self,
        slab: &mut crate::store::ShardGuard<'_, A::Partial>,
        stack: &mut Vec<(OverlayId, DeltaOp)>,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
    ) {
        let core = Arc::clone(&self.core);
        let agg = core.aggregate();
        let overlay = core.overlay();
        while let Some((n, op)) = stack.pop() {
            op.apply(agg, slab.get_mut(n.idx()));
            core.record_push(n);
            self.local[self.shard.idx()].fetch_add(1, Ordering::Relaxed);
            if let Some(side) = self.side.as_mut() {
                if !side.overflowed && side.nodes.contains(&n.0) {
                    if side.log.len() < side.bound {
                        side.log.push((n, op));
                    } else {
                        // Bound hit: stop buffering — the flip falls back
                        // to re-copying this shard's departing PAOs under
                        // the fence.
                        side.overflowed = true;
                        side.log = Vec::new();
                    }
                }
            }
            for &(t, sign) in overlay.outputs(n) {
                if core.is_push(t) {
                    let routed = op.signed(sign);
                    let dest = self.partition.shard_of(t.idx());
                    if dest == self.shard {
                        stack.push((t, routed));
                    } else {
                        outbox[dest.idx()].push((t, routed));
                    }
                }
            }
        }
    }
}

/// Collect every **push** PAO slot a pull-decided node transitively reads
/// from — the slot set [`ShardedEngine::try_read`] must fetch from the
/// owning shard hosts before evaluating the pull tree coordinator-side.
/// Mirrors [`EngineCore::read_via`]'s recursion without evaluating.
fn collect_pull_slots<A: Aggregate>(core: &ShardedCore<A>, n: OverlayId, out: &mut FastSet<u32>) {
    for &(f, _) in core.overlay().inputs(n) {
        if core.is_push(f) {
            out.insert(f.0);
        } else {
            collect_pull_slots(core, f, out);
        }
    }
}

/// A [`PaoReader`] over PAOs fetched from shard hosts
/// ([`ShardTransport::fetch_paos`]); slots outside the fetched set resolve
/// to the aggregate's empty partial (they only arise for untouched inputs,
/// whose slab state is also empty).
struct FetchedPaos<P> {
    paos: FastMap<u32, P>,
    empty: P,
}

impl<P> PaoReader<P> for FetchedPaos<P> {
    fn with_pao<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R {
        f(self.paos.get(&(idx as u32)).unwrap_or(&self.empty))
    }
}

/// The in-process [`ShardTransport`]: one owning worker thread per shard,
/// crossbeam bounded channels in between — the pre-trait engine runtime,
/// verbatim, behind the transport seam. All state-plane methods return
/// [`TransportError::Unsupported`]; the engine reaches its shared store
/// directly in this mode.
struct InProcessTransport<A: Aggregate> {
    txs: Vec<Sender<ShardMsg<A>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<A: Aggregate> InProcessTransport<A> {
    /// Spawn one [`ShardWorker`] per shard over a fresh channel mesh.
    /// Workers hold each other's senders (cross-shard delta forwarding),
    /// so they never disconnect by dropping alone — `stop` sends explicit
    /// [`ShardMsg::Stop`]s.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        core: Arc<ShardedCore<A>>,
        partition: Arc<LivePartition>,
        mut writers_by_shard: Vec<Vec<OverlayId>>,
        pending: Arc<AtomicU64>,
        cross_out: Arc<Vec<AtomicU64>>,
        local: Arc<Vec<AtomicU64>>,
        reads: Arc<Vec<AtomicU64>>,
        channel_capacity: usize,
        side_log_bound: usize,
    ) -> Self {
        let shards = writers_by_shard.len();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..shards)
            .map(|_| bounded::<ShardMsg<A>>(channel_capacity))
            .unzip();
        let mut handles = Vec::with_capacity(shards);
        for (shard, rx) in rxs.into_iter().enumerate() {
            let worker = ShardWorker {
                core: Arc::clone(&core),
                partition: Arc::clone(&partition),
                shard: ShardId(shard as u32),
                writers: std::mem::take(&mut writers_by_shard[shard]),
                rx,
                txs: txs.clone(),
                pending: Arc::clone(&pending),
                cross_out: Arc::clone(&cross_out),
                local: Arc::clone(&local),
                reads: Arc::clone(&reads),
                side: None,
                side_log_bound,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("eagr-shard-{shard}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker thread"),
            );
        }
        Self {
            txs,
            handles: Mutex::named(handles, "inproc_handles"),
        }
    }
}

impl<A: Aggregate> ShardTransport<A> for InProcessTransport<A> {
    fn kind(&self) -> TransportKind {
        TransportKind::InProcess
    }

    fn shards(&self) -> usize {
        self.txs.len()
    }

    fn send(&self, shard: usize, msg: ShardMsg<A>) -> Result<(), TransportError> {
        self.txs[shard]
            .send(msg)
            .map_err(|_| TransportError::Closed {
                shard: Some(shard),
                detail: "shard worker exited".to_string(),
            })
    }

    fn healthy(&self) -> Result<(), TransportError> {
        // Workers only exit on Stop; a full inbox is backpressure, not
        // death. Nothing to probe.
        Ok(())
    }

    fn stop(&self) {
        for tx in &self.txs {
            let _ = tx.send(ShardMsg::Stop);
        }
    }

    fn shutdown(&self) {
        self.stop();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::Sum;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};
    use eagr_util::SplitMix64;

    fn paper_parts() -> (Arc<Overlay>, Decisions) {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = Decisions::all_push(&ov);
        (ov, d)
    }

    fn sharded(shards: usize) -> ShardedEngine<Sum> {
        let (ov, d) = paper_parts();
        ShardedEngine::new(
            Sum,
            ov,
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(shards)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .build(),
        )
    }

    #[test]
    fn paper_example_matches_reference_after_drain() {
        let eng = sharded(4);
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut events = Vec::new();
        for (node, vals) in streams {
            for &v in vals {
                events.push(Event::Write {
                    node: NodeId(node),
                    value: v,
                });
            }
        }
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(eng.read(NodeId(v as u32)), Some(w), "reader {v}");
        }
        assert_eq!(eng.epochs(), 1);
        eng.shutdown();
    }

    #[test]
    fn random_batches_converge_to_sequential_replay() {
        let eng = sharded(3);
        let (ov, d) = paper_parts();
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1));
        let mut rng = SplitMix64::new(99);
        let mut ts = 0u64;
        for _ in 0..20 {
            let events: Vec<Event> = (0..50)
                .map(|_| Event::Write {
                    node: NodeId(rng.index(7) as u32),
                    value: rng.range(0, 50) as i64,
                })
                .collect();
            for (i, e) in events.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, ts + i as u64);
                }
            }
            eng.ingest(&EventBatch::new(ts, events)).unwrap();
            ts += 50;
        }
        eng.drain().unwrap();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        eng.shutdown();
    }

    #[test]
    fn cross_shard_deltas_are_counted() {
        // 4 shards over 13 overlay nodes: some writer→reader push edge must
        // cross a shard boundary.
        let eng = sharded(4);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 1,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        assert!(eng.cross_shard_deltas() > 0, "expected cross-shard traffic");
        eng.shutdown();
    }

    #[test]
    fn single_shard_degenerates_to_local_execution() {
        let eng = sharded(1);
        eng.submit_write(NodeId(2), 6, 0).unwrap();
        eng.submit_write(NodeId(2), 9, 1).unwrap();
        eng.drain().unwrap();
        assert_eq!(eng.read(NodeId(0)), Some(9));
        assert_eq!(eng.cross_shard_deltas(), 0);
        eng.shutdown();
    }

    #[test]
    fn drop_without_shutdown_stops_workers() {
        let eng = sharded(2);
        eng.submit_write(NodeId(2), 6, 0).unwrap();
        eng.drain().unwrap();
        drop(eng); // must not hang or leak a deadlocked worker
    }

    #[test]
    fn edge_cut_strategy_builds_and_matches_reference() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(3)
                .strategy(PartitionStrategy::EdgeCut)
                .channel_capacity(64)
                .build(),
        );
        assert_eq!(eng.partition().strategy, PartitionStrategy::EdgeCut);
        assert_eq!(eng.partition().len(), ov.node_count());
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1));
        for (ts, (node, value)) in [(2u32, 6i64), (3, 8), (4, 5), (2, 9), (5, 3)]
            .into_iter()
            .enumerate()
        {
            reference.write(NodeId(node), value, ts as u64);
            eng.submit_write(NodeId(node), value, ts as u64).unwrap();
        }
        eng.drain().unwrap();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        eng.shutdown();
    }

    #[test]
    fn advance_time_expires_through_shard_inboxes() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Time(10),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .build(),
        );
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Time(10));
        for (node, value, ts) in [(2u32, 5i64, 0u64), (3, 7, 5)] {
            eng.submit_write(NodeId(node), value, ts).unwrap();
            reference.write(NodeId(node), value, ts);
        }
        eng.drain().unwrap();
        assert_eq!(eng.read(NodeId(0)), Some(12));
        // t = 11: the t=0 write expires everywhere, including across shards.
        let applied = eng.advance_time_epoch(11).unwrap();
        reference.advance_time(11);
        assert!(applied > 0, "expiration must apply PAO updates");
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        // Advancing past everything empties the windows identically.
        eng.advance_time_epoch(1000).unwrap();
        reference.advance_time(1000);
        assert_eq!(eng.read(NodeId(0)), Some(0));
        assert_eq!(eng.read(NodeId(0)), reference.read(NodeId(0)));
        eng.shutdown();
    }

    #[test]
    fn shard_stats_account_all_work() {
        let eng = sharded(4);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 1,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        let stats = eng.shard_stats();
        assert_eq!(stats.len(), 4);
        let nodes: usize = stats.iter().map(|s| s.nodes).sum();
        assert_eq!(nodes, eng.partition().len());
        let local: u64 = stats.iter().map(|s| s.local_applies).sum();
        let cross: u64 = stats.iter().map(|s| s.cross_deltas_out).sum();
        assert_eq!(local, eng.local_applies());
        assert_eq!(cross, eng.cross_shard_deltas());
        // Every op lands in some slab; cross-shard ops are a subset.
        assert!(local >= cross);
        assert!(local > 0);
        eng.shutdown();
    }

    #[test]
    fn read_batch_matches_point_reads_after_drain() {
        let eng = sharded(4);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 2 * n as i64 + 1,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        let nodes: Vec<NodeId> = (0..7u32).map(NodeId).collect();
        let batch = eng.read_batch(&nodes).unwrap();
        assert_eq!(batch.len(), 7);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(batch[i], eng.read(v), "node {v:?}");
            assert_eq!(eng.read_service(v).unwrap(), eng.read(v), "node {v:?}");
        }
        // Every answered request was served by a shard worker.
        assert!(eng.reads_served() > 0);
        let per_shard: u64 = eng.shard_stats().iter().map(|s| s.reads_served).sum();
        assert_eq!(per_shard, eng.reads_served());
        eng.shutdown();
    }

    #[test]
    fn read_batch_drains_pending_epochs_first() {
        let eng = sharded(3);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 10,
            })
            .collect();
        // No explicit drain: read_batch must settle the epoch itself.
        eng.ingest(&EventBatch::new(0, events)).unwrap();
        let answers = eng.read_batch(&[NodeId(0)]).unwrap();
        assert_eq!(answers, vec![Some(40)]); // a sums {c, d, e, f}, 10 each
        eng.shutdown();
    }

    #[test]
    fn read_batch_reports_none_for_nodes_without_reader() {
        let eng = sharded(2);
        let answers = eng.read_batch(&[NodeId(1000), NodeId(0)]).unwrap();
        assert_eq!(answers[0], None);
        assert_eq!(answers[1], Some(0));
        eng.shutdown();
    }

    #[test]
    fn mixed_ingest_routes_reads_to_shard_workers() {
        let eng = sharded(4);
        let mut events = Vec::new();
        for n in 0..7u32 {
            events.push(Event::Write {
                node: NodeId(n),
                value: 1,
            });
            events.push(Event::Read { node: NodeId(n) });
        }
        let (w, r) = eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        assert_eq!((w, r), (7, 7));
        // Every read event was evaluated by its owning worker, not the
        // caller thread.
        assert_eq!(eng.reads_served(), 7);
        eng.shutdown();
    }

    #[test]
    fn rebalance_preserves_answers_and_migrates_state() {
        // Hash-partition the paper overlay (structure-blind, so observed
        // traffic leaves plenty of cut to recover), ingest a stream, then
        // force a rebalance and require identical answers afterwards —
        // including through new writes applied by the *new* owners.
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
        let mut rng = SplitMix64::new(7);
        let mut events = Vec::new();
        for _ in 0..200 {
            events.push(Event::Write {
                node: NodeId(rng.index(7) as u32),
                value: rng.range(0, 40) as i64,
            });
        }
        for (ts, e) in events.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts as u64);
            }
        }
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        let before = eng.partition();
        let outcome = eng.rebalance().unwrap();
        assert_eq!(outcome.committed, outcome.nodes_copied > 0);
        if outcome.committed {
            assert!(outcome.cut_after < outcome.cut_before);
            // Only the flip is fenced.
            assert_eq!(outcome.fence_epochs, 1);
            assert_eq!(eng.rebalances(), 1);
            assert_eq!(eng.nodes_migrated(), outcome.nodes_copied as u64);
            // Each migration orphans exactly one slot in the old slab
            // (nothing ingested mid-copy, so no deltas were replayed and
            // the default policy doesn't compact at this scale).
            assert_eq!(outcome.deltas_replayed, 0);
            assert_eq!(outcome.slots_reclaimed, 0);
            assert_eq!(eng.orphaned_pao_slots(), outcome.nodes_copied as u64);
            assert_ne!(eng.partition(), before, "committed map must differ");
        }
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v}");
            assert_eq!(
                eng.read_service(NodeId(v)).unwrap(),
                reference.read(NodeId(v))
            );
        }
        // Post-migration writes are applied by the new owners.
        for (ts, (node, value)) in [(2u32, 6i64), (4, 8), (5, 1)].into_iter().enumerate() {
            eng.submit_write(NodeId(node), value, 1000 + ts as u64)
                .unwrap();
            reference.write(NodeId(node), value, 1000 + ts as u64);
        }
        eng.drain().unwrap();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v} post");
        }
        eng.shutdown();
    }

    #[test]
    fn rebalance_below_gain_threshold_is_a_noop() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(2)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    // An impossible bar: nothing may commit.
                    min_cut_gain: 2.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        eng.submit_write(NodeId(2), 6, 0).unwrap();
        eng.drain().unwrap();
        let before = eng.partition();
        let outcome = eng.rebalance().unwrap();
        assert!(!outcome.committed);
        assert_eq!(outcome.nodes_copied, 0);
        // An uncommitted rebalance never takes the exclusive gate at all.
        assert_eq!(outcome.fence_epochs, 0);
        assert_eq!(eng.rebalances(), 0);
        assert_eq!(eng.nodes_migrated(), 0);
        assert_eq!(
            eng.partition(),
            before,
            "uncommitted rebalance must not move"
        );
        eng.shutdown();
    }

    #[test]
    fn compact_reclaims_migration_orphans_and_preserves_answers() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
        let mut rng = SplitMix64::new(11);
        let mut events = Vec::new();
        for _ in 0..150 {
            events.push(Event::Write {
                node: NodeId(rng.index(7) as u32),
                value: rng.range(0, 30) as i64,
            });
        }
        for (ts, e) in events.iter().enumerate() {
            if let Event::Write { node, value } = *e {
                reference.write(node, value, ts as u64);
            }
        }
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        let report = eng.rebalance().unwrap();
        assert!(report.committed, "forced policy must commit on a hash map");
        assert!(eng.orphaned_pao_slots() > 0);
        let reclaimed = eng.compact().unwrap();
        assert_eq!(reclaimed, report.nodes_copied as u64);
        assert_eq!(
            eng.orphaned_pao_slots(),
            0,
            "compaction reclaims all orphans"
        );
        assert_eq!(eng.slots_reclaimed(), reclaimed);
        // Answers and post-compaction writes are unaffected.
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v}");
            assert_eq!(
                eng.read_service(NodeId(v)).unwrap(),
                reference.read(NodeId(v))
            );
        }
        for (ts, (node, value)) in [(2u32, 6i64), (4, 8), (5, 1)].into_iter().enumerate() {
            eng.submit_write(NodeId(node), value, 1000 + ts as u64)
                .unwrap();
            reference.write(NodeId(node), value, 1000 + ts as u64);
        }
        eng.drain().unwrap();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v} post");
        }
        eng.shutdown();
    }

    #[test]
    fn auto_compaction_piggybacks_on_the_flip_fence() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    // Any orphan triggers compaction inside the fence.
                    compact_after_orphans: 1,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        for n in 0..7u32 {
            eng.submit_write(NodeId(n), n as i64 + 1, n as u64).unwrap();
        }
        eng.drain().unwrap();
        let report = eng.rebalance().unwrap();
        assert!(report.committed);
        assert_eq!(report.slots_reclaimed, report.nodes_copied as u64);
        assert_eq!(eng.orphaned_pao_slots(), 0);
        assert_eq!(eng.slots_reclaimed(), report.slots_reclaimed);
        eng.shutdown();
    }

    #[test]
    fn migrate_to_explicit_target_and_back_preserves_answers() {
        let (ov, d) = paper_parts();
        let eng = sharded(3);
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
        for n in 0..7u32 {
            eng.submit_write(NodeId(n), 3 * n as i64 + 2, n as u64)
                .unwrap();
            reference.write(NodeId(n), 3 * n as i64 + 2, n as u64);
        }
        eng.drain().unwrap();
        let original = eng.partition();
        // Rotate every node to the next shard.
        let mut rotated = original.clone();
        for s in rotated.of.iter_mut() {
            *s = ShardId((s.0 + 1) % 3);
        }
        let there = eng.migrate_to(&rotated).unwrap();
        assert!(there.committed);
        assert_eq!(there.nodes_copied, original.len());
        assert_eq!(there.fence_epochs, 1);
        assert_eq!(eng.partition(), rotated);
        let back = eng.migrate_to(&original).unwrap();
        assert!(back.committed);
        assert_eq!(eng.partition(), original);
        // Same target again: nothing to move, nothing fenced.
        let noop = eng.migrate_to(&original).unwrap();
        assert!(!noop.committed);
        assert_eq!(noop.fence_epochs, 0);
        // State survived the round trip, including new writes.
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v}");
        }
        for n in 0..7u32 {
            eng.submit_write(NodeId(n), 100 + n as i64, 1000 + n as u64)
                .unwrap();
            reference.write(NodeId(n), 100 + n as i64, 1000 + n as u64);
        }
        eng.drain().unwrap();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v} post");
        }
        eng.shutdown();
    }

    #[test]
    fn rebalance_coalesces_while_a_migration_is_in_flight() {
        // Thread A ping-pongs explicit migrations; the main thread fires
        // rebalance() whenever one is in flight. Every such call must
        // coalesce (single-flight CAS) rather than stack a second fence.
        let eng = sharded(3);
        for n in 0..7u32 {
            eng.submit_write(NodeId(n), n as i64, n as u64).unwrap();
        }
        eng.drain().unwrap();
        let a = eng.partition();
        let mut b = a.clone();
        for s in b.of.iter_mut() {
            *s = ShardId((s.0 + 1) % 3);
        }
        let stop = AtomicBool::new(false);
        // lint: allow(panic-free, in-process transport Results cannot fail while workers are alive; an unwrap propagates as the test failure at the scope join)
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let _ = eng.migrate_to(&b);
                    let _ = eng.migrate_to(&a);
                }
            });
            let mut attempts = 0u64;
            while eng.coalesced_rebalances() == 0 && attempts < 100_000 {
                if eng.migration_in_flight() {
                    let r = eng.rebalance().unwrap();
                    if !r.committed && r.fence_epochs == 0 {
                        attempts += 1;
                    }
                }
                std::hint::spin_loop();
            }
            stop.store(true, Ordering::Release);
        });
        assert!(
            eng.coalesced_rebalances() > 0,
            "a rebalance racing an in-flight migration must coalesce"
        );
        eng.shutdown();
    }

    #[test]
    fn every_n_epochs_policy_fires_automatically() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(3)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    every_epochs: 2,
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Tuple(1));
        let mut ts = 0u64;
        for round in 0..6 {
            let events: Vec<Event> = (0..7u32)
                .map(|n| Event::Write {
                    node: NodeId(n),
                    value: (round * 7 + n) as i64,
                })
                .collect();
            for (i, e) in events.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, ts + i as u64);
                }
            }
            eng.ingest_epoch(&EventBatch::new(ts, events)).unwrap();
            ts += 7;
        }
        // 6 epochs at every_epochs=2 ⇒ 3 trigger points; at least the
        // first (over a hash map with observed traffic) must commit.
        assert!(eng.rebalances() >= 1, "auto trigger never committed");
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v}");
        }
        eng.shutdown();
    }

    #[test]
    fn migrated_writers_keep_expiring_through_their_new_owner() {
        // Time windows: after a forced full rebalance, the writers' window
        // expiration must have moved with them (the Migrate/Install
        // handoff carries expiration ownership).
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Time(10),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .rebalance(RebalancePolicy {
                    min_cut_gain: 0.0,
                    max_move_fraction: 1.0,
                    ..RebalancePolicy::default()
                })
                .build(),
        );
        let reference = EngineCore::new(Sum, Arc::clone(&ov), &d, WindowSpec::Time(10));
        for (node, value, ts) in [(2u32, 5i64, 0u64), (3, 7, 5), (4, 2, 6)] {
            eng.submit_write(NodeId(node), value, ts).unwrap();
            reference.write(NodeId(node), value, ts);
        }
        eng.drain().unwrap();
        let outcome = eng.rebalance().unwrap();
        assert!(outcome.committed, "forced policy must commit on a hash map");
        // t = 12: the t=0 write expires — via the new owners' inboxes.
        eng.advance_time_epoch(12).unwrap();
        reference.advance_time(12);
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "{v}");
        }
        eng.advance_time_epoch(1000).unwrap();
        reference.advance_time(1000);
        assert_eq!(eng.read(NodeId(0)), reference.read(NodeId(0)));
        eng.shutdown();
    }

    #[test]
    fn read_batch_with_pull_readers_crosses_shards() {
        // All-pull decisions (writers still push): every read evaluates a
        // pull tree whose inputs are spread across shards by the hash
        // partition — the owning worker resolves foreign inputs through
        // the peer slabs' read locks.
        let (ov, _) = paper_parts();
        let d = Decisions::all_pull(&ov);
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .channel_capacity(64)
                .build(),
        );
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1));
        for (ts, (node, value)) in [(2u32, 6i64), (3, 8), (4, 5), (5, 3), (6, 9)]
            .into_iter()
            .enumerate()
        {
            reference.write(NodeId(node), value, ts as u64);
            eng.submit_write(NodeId(node), value, ts as u64).unwrap();
        }
        let nodes: Vec<NodeId> = (0..7u32).map(NodeId).collect();
        let got = eng.read_batch(&nodes).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(got[i], reference.read(v), "pull reader {v:?}");
        }
        eng.shutdown();
    }

    #[test]
    fn out_of_range_nodes_route_by_hash_fallback() {
        let eng = sharded(3);
        let live = eng.live_partition();
        let n = live.len();
        // Beyond the map: deterministic hash assignment, in range.
        assert_eq!(live.shard_of(n + 5), hash_shard(n + 5, 3));
        assert!(live.shard_of(n + 5).idx() < 3);
        let snap = live.load();
        assert_eq!(snap.shard_of(n + 5), hash_shard(n + 5, 3));
        eng.shutdown();
    }

    #[test]
    fn apply_topo_extends_retires_and_preserves_answers() {
        use eagr_agg::Sign;
        use eagr_flow::topo_plan_delta;

        let eng = sharded(3);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: (n + 1) as i64,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events)).unwrap();
        let before: Vec<Option<i64>> = (0..7u32).map(|v| eng.read(NodeId(v))).collect();

        // Repair the overlay in place: a fresh writer for data node 7
        // feeding a fresh reader for data node 8 *and* reader 0's existing
        // ego net, and retire reader 6.
        let (ov, d) = paper_parts();
        let mut ov2 = (*ov).clone();
        let r0 = ov2.reader(NodeId(0)).unwrap();
        let r6 = ov2.reader(NodeId(6)).unwrap();
        let w = ov2.add_writer(NodeId(7));
        let r = ov2.add_reader(NodeId(8));
        ov2.add_edge(w, r, Sign::Pos);
        ov2.add_edge(w, r0, Sign::Pos);
        ov2.retire_node(r6);
        let mut dirty = FastSet::default();
        dirty.insert(r0); // the repair rewired its input list
        let delta = topo_plan_delta(&ov2, &d, &[w, r], &dirty);

        let report = eng
            .apply_topo(
                Sum,
                Arc::new(ov2),
                &delta.decisions,
                &[],
                &delta.materialize,
            )
            .unwrap();
        assert_eq!(report.fresh_nodes, 2);
        assert_eq!(report.retired_nodes, 1);
        assert!(report.rematerialized >= 2, "fresh w/r and rewired r0");
        assert_eq!(report.orphaned_slots, 1);
        assert_eq!(report.slots_reclaimed, 0, "below the compaction trigger");
        assert_eq!(eng.topo_epochs(), 1);

        // Carried state: every surviving reader answers as before (the
        // fresh writer holds no value yet, so the rewired net is unchanged).
        for v in 0..6u32 {
            assert_eq!(eng.read(NodeId(v)), before[v as usize], "reader {v}");
        }
        // The retired reader is gone and its slab slot is tombstoned into
        // the compaction path.
        assert_eq!(eng.read(NodeId(6)), None);
        let core = eng.core();
        assert!(core.store().is_retired_slot(r6.idx()));
        assert_eq!(eng.orphaned_pao_slots(), 1);

        // The new topology is live on the hot path: a write to the fresh
        // writer flows to the fresh reader and into reader 0's rewired net
        // through the shard inboxes — no re-plan, no worker restart.
        eng.ingest_epoch(&EventBatch::new(
            100,
            vec![Event::Write {
                node: NodeId(7),
                value: 40,
            }],
        ))
        .unwrap();
        assert_eq!(eng.read(NodeId(8)), Some(40));
        assert_eq!(eng.read(NodeId(0)), before[0].map(|x| x + 40));
        let reclaimed = eng.compact().unwrap();
        assert_eq!(reclaimed, 1, "the tombstoned slot is reclaimable");
        assert_eq!(eng.read(NodeId(8)), Some(40), "answers survive compaction");
        eng.shutdown();
    }

    #[test]
    fn topo_epochs_interleave_with_ingest_and_match_reference() {
        use eagr_agg::Sign;
        use eagr_flow::topo_plan_delta;

        // Alternate write batches with single-node topology growth and
        // check every epoch against a fresh single-threaded reference.
        let (ov, d) = paper_parts();
        let eng = sharded(3);
        let mut overlay = (*ov).clone();
        let mut decisions = d;
        let mut rng = SplitMix64::new(7);
        let mut writes: Vec<(NodeId, i64, u64)> = Vec::new();
        let mut ts = 0u64;
        let mut nodes = 7u32;
        for round in 0..6 {
            let events: Vec<Event> = (0..40)
                .map(|_| Event::Write {
                    node: NodeId(rng.index(nodes as usize) as u32),
                    value: rng.range(0, 20) as i64,
                })
                .collect();
            for (i, e) in events.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    writes.push((node, value, ts + i as u64));
                }
            }
            eng.ingest(&EventBatch::new(ts, events)).unwrap();
            ts += 40;
            // Grow: fresh writer + reader over it, wired into one existing
            // reader's net as well.
            let w = overlay.add_writer(NodeId(nodes));
            let rd = overlay.add_reader(NodeId(nodes + 1));
            overlay.add_edge(w, rd, Sign::Pos);
            let target = overlay.reader(NodeId(round as u32)).unwrap();
            overlay.add_edge(w, target, Sign::Pos);
            nodes += 2;
            let mut dirty = FastSet::default();
            dirty.insert(target);
            let delta = topo_plan_delta(&overlay, &decisions, &[w, rd], &dirty);
            decisions = delta.decisions.clone();
            eng.apply_topo(
                Sum,
                Arc::new(overlay.clone()),
                &delta.decisions,
                &[],
                &delta.materialize,
            )
            .unwrap();
        }
        eng.drain().unwrap();
        let reference = EngineCore::new(
            Sum,
            Arc::new(overlay.clone()),
            &decisions,
            WindowSpec::Tuple(1),
        );
        for &(node, value, t) in &writes {
            reference.write(node, value, t);
        }
        for v in 0..nodes {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        assert_eq!(eng.topo_epochs(), 6);
        eng.shutdown();
    }
}
