//! The shard-owned, batch-ingesting engine runtime.
//!
//! The two-pool engine of [`crate::parallel`] follows the paper's queueing
//! model literally: every write is subdivided into PAO-granularity
//! micro-tasks over one shared MPMC channel, and every micro-task takes a
//! per-PAO lock. That is faithful to §2.2.2 but leaves throughput on the
//! table: one channel round-trip and one lock acquisition *per PAO update*.
//!
//! [`ShardedEngine`] restructures the write path around partitioning and
//! batching instead:
//!
//! * overlay nodes are partitioned into shards (see
//!   [`eagr_graph::partition`]); one worker thread **owns** each shard and
//!   is the only thread that mutates its PAOs;
//! * writes arrive as [`EventBatch`]es and are routed to the shard owning
//!   the writer node; the worker locks its shard slab once per batch and
//!   applies every op with plain indexed access — no per-PAO locking on the
//!   hot path;
//! * push propagation that crosses a shard boundary is *not* sent op by op:
//!   each worker accumulates per-destination-shard delta outboxes while
//!   processing a batch and flushes them as single messages over bounded
//!   channels (backpressure instead of unbounded queue growth);
//! * [`drain`](ShardedEngine::drain) is an epoch barrier: it returns once
//!   every routed batch and every transitively generated cross-shard delta
//!   batch has been applied, at which point the engine state equals the
//!   single-threaded reference replay of the same stream;
//! * time-window expiration ([`advance_time`](ShardedEngine::advance_time))
//!   travels through the same inboxes as writes: each shard's worker
//!   expires the windows of the writers *it owns* and cascades the
//!   removals through its own slab — the caller thread never mutates
//!   shard-owned PAOs, preserving the single-writer invariant;
//! * the node→shard map can be structure-aware: with
//!   [`PartitionStrategy::EdgeCut`] the engine derives an affinity
//!   partition from the overlay's push topology (or accepts a precomputed
//!   one from the planner via [`ShardedEngine::from_plan`] /
//!   [`ShardedEngine::with_partition`]), and per-shard
//!   [`ShardStats`] counters make the resulting cross-shard delta
//!   reduction measurable.
//!
//! Reads are shard-executed too: [`read_batch`](ShardedEngine::read_batch)
//! routes read requests through the same inboxes, so the owning worker
//! evaluates push-side finalizes and the local portion of pull trees
//! against its own slab (one read lock per batch, plain indexed access),
//! with cross-shard pull fan-out falling through to the foreign slabs' read
//! locks. An epoch gate makes the batch **epoch-consistent**: the batch is
//! stamped at entry, pins the epoch (ingestion submitted concurrently
//! waits), and drains in-flight deltas first, so a read never observes a
//! torn epoch — every answer equals the single-threaded reference replay of
//! the exact stream prefix ingested before the batch. The caller-thread
//! [`read`](ShardedEngine::read) escape hatch remains for relaxed
//! mid-epoch probes (the consistency the paper accepts for the two-pool
//! engine), and reads inside a mixed [`ingest`](ShardedEngine::ingest)
//! batch are shipped to their owning shard fire-and-forget — the caller
//! thread never evaluates shard-owned PAO state on the batch path.

use crate::core::EngineCore;
use crate::store::ShardedStore;
use crossbeam::channel::{bounded, Receiver, Sender};
use eagr_agg::{Aggregate, DeltaOp, WindowSpec};
use eagr_flow::{Decisions, Plan};
use eagr_gen::{Event, EventBatch};
use eagr_graph::{
    edge_cut_partition, EdgeCutConfig, NodeId, Partition, PartitionStrategy, Partitioner, ShardId,
    DEFAULT_CHUNK_SIZE,
};
use eagr_overlay::{Overlay, OverlayId, PushEdgeView};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of the sharded runtime.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Number of shards = number of owning worker threads.
    pub shards: usize,
    /// Node→shard assignment strategy.
    pub strategy: PartitionStrategy,
    /// Capacity of each shard's inbox (messages, each carrying a batch).
    /// Senders block when an inbox is full — bounded-channel backpressure.
    pub channel_capacity: usize,
}

impl ShardedConfig {
    /// `shards` shards with the default chunk-locality strategy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            shards: cores.clamp(2, 16),
            // Overlay construction allocates chunk-mates consecutively, so
            // chunked partitioning co-locates partials with their readers.
            strategy: PartitionStrategy::Chunk {
                chunk_size: DEFAULT_CHUNK_SIZE,
            },
            channel_capacity: 1 << 12,
        }
    }
}

/// One shard's answers to a read batch: `(result slot, answer)` pairs.
type ReadReplies<A> = Vec<(usize, Option<<A as Aggregate>::Output>)>;

/// Messages flowing into one shard's inbox.
enum ShardMsg<A: Aggregate> {
    /// Writes whose *writer node* the shard owns: `(writer, value, ts)` in
    /// submission order.
    Writes(Vec<(OverlayId, i64, u64)>),
    /// Propagated delta ops targeting nodes the shard owns.
    Deltas(Vec<(OverlayId, DeltaOp)>),
    /// Read requests whose *reader node* the shard owns: `(result slot,
    /// data node)`. The worker evaluates them against a read snapshot of
    /// its own slab (push finalizes and the local part of pull trees read
    /// lock-free; cross-shard pull inputs go through the foreign slabs'
    /// read locks) and sends the answers back over `reply`. `None` marks a
    /// fire-and-forget read (a read event inside a mixed ingest batch):
    /// evaluated and dropped, like [`crate::ParallelEngine`]'s read pool.
    Reads {
        /// `(slot in the caller's result vector, data node to read)`.
        targets: Vec<(usize, NodeId)>,
        /// Completion channel for [`ShardedEngine::read_batch`].
        reply: Option<Sender<ReadReplies<A>>>,
    },
    /// Expire time windows up to `ts` for every writer the shard owns and
    /// cascade the removals (the sharded form of
    /// [`EngineCore::advance_time`]).
    Expire(u64),
    /// Terminate the worker.
    Stop,
}

/// Per-shard runtime counters ([`ShardedEngine::shard_stats`]): how much
/// work stayed local and how much was shipped to peers — the observable the
/// partition strategies compete on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard.
    pub shard: ShardId,
    /// Overlay nodes the shard owns.
    pub nodes: usize,
    /// Delta ops this shard's worker applied to its own slab (local work,
    /// including ops that arrived from peers).
    pub local_applies: u64,
    /// Delta ops this shard's worker shipped to *other* shards' inboxes.
    pub cross_deltas_out: u64,
    /// Read requests this shard's worker evaluated (both
    /// [`ShardedEngine::read_batch`] requests and fire-and-forget reads
    /// inside mixed ingest batches). Trustworthy per-shard read load for
    /// §4.8-style re-partitioning.
    pub reads_served: u64,
}

/// The sharded core type: an [`EngineCore`] over shard-slab PAO storage.
pub type ShardedCore<A> = EngineCore<A, ShardedStore<<A as Aggregate>::Partial>>;

/// Shard-owned, batch-ingesting multi-threaded engine.
pub struct ShardedEngine<A: Aggregate> {
    core: Arc<ShardedCore<A>>,
    partition: Arc<Partition>,
    window: WindowSpec,
    txs: Vec<Sender<ShardMsg<A>>>,
    pending: Arc<AtomicU64>,
    /// Per-shard deltas shipped to peers (indexed by sending shard).
    cross_out: Arc<Vec<AtomicU64>>,
    /// Per-shard delta ops applied locally (indexed by owning shard).
    local: Arc<Vec<AtomicU64>>,
    /// Per-shard read requests served (indexed by owning shard).
    reads: Arc<Vec<AtomicU64>>,
    /// Epoch gate for shard-executed reads: write submission holds it
    /// shared, [`read_batch`](Self::read_batch) holds it exclusively while
    /// it drains and evaluates — so an epoch-consistent read batch never
    /// interleaves with a concurrently submitted epoch (the epoch-stamped
    /// snapshot rule).
    epoch_gate: RwLock<()>,
    epochs: AtomicU64,
    handles: Vec<JoinHandle<()>>,
}

impl<A: Aggregate> ShardedEngine<A> {
    /// Build the sharded runtime for an overlay + decisions and spawn one
    /// owning worker per shard. [`PartitionStrategy::EdgeCut`] derives the
    /// node→shard map from the overlay's push topology under `decisions`
    /// (uniform rate prior — hand a planner-weighted map to
    /// [`with_partition`](Self::with_partition) for rate-aware cuts); the
    /// index-based strategies go through a plain [`Partitioner`].
    pub fn new(
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        window: WindowSpec,
        cfg: &ShardedConfig,
    ) -> Self {
        let partition = match cfg.strategy {
            PartitionStrategy::EdgeCut => {
                let view = PushEdgeView::new(&overlay, |n| decisions.is_push(n));
                edge_cut_partition(&view, cfg.shards, &EdgeCutConfig::default())
            }
            strategy => Partitioner::new(cfg.shards, strategy).partition(overlay.node_count()),
        };
        Self::with_partition(
            agg,
            overlay,
            decisions,
            window,
            partition,
            cfg.channel_capacity,
        )
    }

    /// Build from a dataflow [`Plan`]. Reuses the partition the plan
    /// carries when it matches `cfg.shards`; otherwise derives a fresh one
    /// from `cfg`.
    pub fn from_plan(plan: &Plan, agg: A, window: WindowSpec, cfg: &ShardedConfig) -> Self {
        let overlay = Arc::new(plan.overlay.clone());
        match &plan.partition {
            Some(p) if p.shards == cfg.shards && p.len() == overlay.node_count() => {
                Self::with_partition(
                    agg,
                    overlay,
                    &plan.decisions,
                    window,
                    p.clone(),
                    cfg.channel_capacity,
                )
            }
            _ => Self::new(agg, overlay, &plan.decisions, window, cfg),
        }
    }

    /// Build over an explicit node partition.
    ///
    /// # Panics
    /// Panics if the partition does not cover every overlay node.
    pub fn with_partition(
        agg: A,
        overlay: Arc<Overlay>,
        decisions: &Decisions,
        window: WindowSpec,
        partition: Partition,
        channel_capacity: usize,
    ) -> Self {
        assert_eq!(
            partition.len(),
            overlay.node_count(),
            "partition must cover every overlay node"
        );
        assert!(channel_capacity > 0, "channel capacity must be positive");
        let store = ShardedStore::new(&partition, || agg.empty());
        let core = Arc::new(EngineCore::with_store(
            agg, overlay, decisions, window, store,
        ));
        let partition = Arc::new(partition);
        let shards = partition.shards;
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded::<ShardMsg<A>>(channel_capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        let pending = Arc::new(AtomicU64::new(0));
        let cross_out: Arc<Vec<AtomicU64>> =
            Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        let local: Arc<Vec<AtomicU64>> = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        let reads: Arc<Vec<AtomicU64>> = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        // Each worker expires the windows of exactly the writers it owns,
        // so window mutation follows the same single-writer discipline as
        // PAO mutation.
        let mut writers_by_shard: Vec<Vec<OverlayId>> = vec![Vec::new(); shards];
        for (wid, _) in core.overlay().writers() {
            writers_by_shard[partition.shard_of(wid.idx()).idx()].push(wid);
        }
        let mut handles = Vec::with_capacity(shards);
        for (shard, rx) in rxs.into_iter().enumerate() {
            let worker = ShardWorker {
                core: Arc::clone(&core),
                partition: Arc::clone(&partition),
                shard: ShardId(shard as u32),
                writers: std::mem::take(&mut writers_by_shard[shard]),
                rx,
                txs: txs.clone(),
                pending: Arc::clone(&pending),
                cross_out: Arc::clone(&cross_out),
                local: Arc::clone(&local),
                reads: Arc::clone(&reads),
            };
            let h = std::thread::Builder::new()
                .name(format!("eagr-shard-{shard}"))
                .spawn(move || worker.run())
                .expect("spawn shard worker");
            handles.push(h);
        }
        Self {
            core,
            partition,
            window,
            txs,
            pending,
            cross_out,
            local,
            reads,
            epoch_gate: RwLock::new(()),
            epochs: AtomicU64::new(0),
            handles,
        }
    }

    /// The shared core (shard-slab storage).
    pub fn core(&self) -> &Arc<ShardedCore<A>> {
        &self.core
    }

    /// The node→shard assignment in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.partition.shards
    }

    /// Route one batch of events into the shards and return
    /// `(writes, reads)` processed — a write counts even when its node has
    /// no overlay writer (the event is consumed and dropped, exactly like
    /// [`EngineCore::write`]), so counts agree across execution modes.
    /// Writes are grouped per owning shard and enqueued as one message per
    /// shard; read events are shipped to the shard owning their reader as
    /// fire-and-forget requests (evaluated by the owning worker, relaxed
    /// mid-epoch consistency) — the caller thread never evaluates
    /// shard-owned PAO state. Call [`drain`](Self::drain) to close the
    /// epoch. For reads whose answers you need, use
    /// [`read_batch`](Self::read_batch).
    ///
    /// Per-writer ordering is preserved for batches submitted from one
    /// thread: a writer's updates always travel to the same shard inbox in
    /// submission order.
    pub fn ingest(&self, batch: &EventBatch) -> (usize, usize) {
        self.ingest_at(&batch.events, batch.base_ts)
    }

    /// Borrowing equivalent of [`ingest`](Self::ingest): event `i` carries
    /// timestamp `base_ts + i`.
    pub fn ingest_at(&self, events: &[Event], base_ts: u64) -> (usize, usize) {
        let overlay = self.core.overlay();
        let mut per_shard: Vec<Vec<(OverlayId, i64, u64)>> = vec![Vec::new(); self.shard_count()];
        let mut reads_per_shard: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); self.shard_count()];
        let mut writes = 0;
        let mut reads = 0;
        for (i, e) in events.iter().enumerate() {
            let ts = base_ts + i as u64;
            match *e {
                Event::Write { node, value } => {
                    if let Some(wid) = overlay.writer(node) {
                        per_shard[self.partition.shard_of(wid.idx()).idx()].push((wid, value, ts));
                    }
                    writes += 1;
                }
                Event::Read { node } => {
                    if let Some(rid) = overlay.reader(node) {
                        reads_per_shard[self.partition.shard_of(rid.idx()).idx()].push((i, node));
                    }
                    reads += 1;
                }
            }
        }
        // Hold the epoch gate shared during submission so an
        // epoch-consistent read_batch never interleaves mid-epoch.
        let _gate = self.epoch_gate.read();
        for (shard, group) in per_shard.into_iter().enumerate() {
            if !group.is_empty() {
                self.pending.fetch_add(1, Ordering::AcqRel);
                self.txs[shard]
                    .send(ShardMsg::Writes(group))
                    .expect("shard worker alive");
            }
        }
        for (shard, targets) in reads_per_shard.into_iter().enumerate() {
            if !targets.is_empty() {
                self.pending.fetch_add(1, Ordering::AcqRel);
                self.txs[shard]
                    .send(ShardMsg::Reads {
                        targets,
                        reply: None,
                    })
                    .expect("shard worker alive");
            }
        }
        self.epochs.fetch_add(1, Ordering::Relaxed);
        (writes, reads)
    }

    /// Ingest a batch and drain it — one full epoch.
    pub fn ingest_epoch(&self, batch: &EventBatch) -> (usize, usize) {
        let counts = self.ingest(batch);
        self.drain();
        counts
    }

    /// Borrowing equivalent of [`ingest_epoch`](Self::ingest_epoch).
    pub fn ingest_epoch_at(&self, events: &[Event], base_ts: u64) -> (usize, usize) {
        let counts = self.ingest_at(events, base_ts);
        self.drain();
        counts
    }

    /// Route a single write (convenience; prefer [`ingest`](Self::ingest)
    /// for throughput).
    pub fn submit_write(&self, v: NodeId, value: i64, ts: u64) {
        if let Some(wid) = self.core.overlay().writer(v) {
            let _gate = self.epoch_gate.read();
            self.pending.fetch_add(1, Ordering::AcqRel);
            self.txs[self.partition.shard_of(wid.idx()).idx()]
                .send(ShardMsg::Writes(vec![(wid, value, ts)]))
                .expect("shard worker alive");
        }
    }

    /// Evaluate a read on the calling thread. Between
    /// [`drain`](Self::drain)s this may observe partially propagated
    /// writes (the paper's relaxed consistency). For shard-executed,
    /// epoch-consistent reads use [`read_batch`](Self::read_batch) /
    /// [`read_service`](Self::read_service).
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        self.core.read(v)
    }

    /// Evaluate a batch of reads **on the shard workers**, epoch-
    /// consistently: result `i` answers the query at `nodes[i]` (`None`
    /// when the node has no reader in the overlay).
    ///
    /// The batch follows the epoch-stamped snapshot rule: it takes the
    /// epoch gate exclusively (concurrently submitted ingestion waits at
    /// the gate), drains every in-flight batch and cross-shard delta, then
    /// fans the requests out to the shards owning each reader. Every
    /// answer therefore equals the single-threaded reference replay of the
    /// exact event-stream prefix ingested before the batch — a read can
    /// never observe a torn epoch, no matter how many threads are
    /// ingesting.
    ///
    /// Each owning worker serves its requests against a read snapshot of
    /// its own slab (one lock per batch, plain indexed access — the read
    /// analog of the batched write path) and resolves cross-shard pull
    /// subtrees through the foreign slabs' read locks. The caller thread
    /// only routes requests and collects replies; it never evaluates
    /// shard-owned PAO state.
    pub fn read_batch(&self, nodes: &[NodeId]) -> Vec<Option<A::Output>> {
        let _gate = self.epoch_gate.write();
        self.drain();
        let overlay = self.core.overlay();
        let mut results: Vec<Option<A::Output>> = vec![None; nodes.len()];
        let mut per_shard: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); self.shard_count()];
        for (i, &v) in nodes.iter().enumerate() {
            if let Some(rid) = overlay.reader(v) {
                per_shard[self.partition.shard_of(rid.idx()).idx()].push((i, v));
            }
        }
        let (reply, replies) = bounded::<ReadReplies<A>>(self.shard_count());
        let mut outstanding = 0usize;
        for (shard, targets) in per_shard.into_iter().enumerate() {
            if !targets.is_empty() {
                self.pending.fetch_add(1, Ordering::AcqRel);
                self.txs[shard]
                    .send(ShardMsg::Reads {
                        targets,
                        reply: Some(reply.clone()),
                    })
                    .expect("shard worker alive");
                outstanding += 1;
            }
        }
        drop(reply);
        for _ in 0..outstanding {
            for (slot, answer) in replies.recv().expect("shard worker replies") {
                results[slot] = answer;
            }
        }
        results
    }

    /// Evaluate one read on the shard worker owning its reader — the
    /// single-request form of [`read_batch`](Self::read_batch), with the
    /// same epoch-consistent semantics.
    pub fn read_service(&self, v: NodeId) -> Option<A::Output> {
        self.read_batch(std::slice::from_ref(&v))
            .pop()
            .unwrap_or(None)
    }

    /// Total read requests served by the shard workers so far.
    pub fn reads_served(&self) -> u64 {
        self.reads.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// Route a window-expiration sweep up to `ts` through every shard's
    /// inbox. Each owning worker expires the windows of its own writers
    /// and cascades the removals — the caller thread touches no shard
    /// state, so this is safe to call concurrently with
    /// [`ingest`](Self::ingest). Per-writer ordering against writes holds
    /// for a single submitting thread: the expiration lands in each inbox
    /// after the writes submitted before it. Call [`drain`](Self::drain)
    /// (or use [`advance_time_epoch`](Self::advance_time_epoch)) to wait
    /// for the sweep to be fully applied.
    pub fn advance_time(&self, ts: u64) {
        // Only time windows ever expire by clock (WindowBuffer::advance is
        // a no-op otherwise): skip the slab-locking per-writer sweep
        // entirely for tuple/unbounded windows.
        if !matches!(self.window, WindowSpec::Time(_)) {
            return;
        }
        let _gate = self.epoch_gate.read();
        for tx in &self.txs {
            self.pending.fetch_add(1, Ordering::AcqRel);
            tx.send(ShardMsg::Expire(ts)).expect("shard worker alive");
        }
    }

    /// [`advance_time`](Self::advance_time) followed by a drain; returns
    /// the PAO updates applied while the sweep drained (includes any
    /// concurrently ingested writes — an exact per-sweep count would
    /// require stopping the world).
    pub fn advance_time_epoch(&self, ts: u64) -> u64 {
        let before = self.local_applies();
        self.advance_time(ts);
        self.drain();
        self.local_applies() - before
    }

    /// Epoch barrier: block until every routed batch and all transitively
    /// generated cross-shard deltas have been applied.
    pub fn drain(&self) {
        while self.pending.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Number of [`ingest`](Self::ingest) calls so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Total delta ops shipped across shard boundaries so far.
    pub fn cross_shard_deltas(&self) -> u64 {
        self.cross_out
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }

    /// Total delta ops applied to shard slabs so far.
    pub fn local_applies(&self) -> u64 {
        self.local.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// Per-shard work counters: slab applies, deltas shipped to peers, and
    /// reads served, plus the node count each shard owns. Meaningful after
    /// a [`drain`](Self::drain); between epochs the numbers are in flight.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let sizes = self.partition.shard_sizes();
        (0..self.shard_count())
            .map(|s| ShardStats {
                shard: ShardId(s as u32),
                nodes: sizes[s],
                local_applies: self.local[s].load(Ordering::Acquire),
                cross_deltas_out: self.cross_out[s].load(Ordering::Acquire),
                reads_served: self.reads[s].load(Ordering::Acquire),
            })
            .collect()
    }

    /// Drain, stop the workers, and join them.
    pub fn shutdown(mut self) {
        self.drain();
        self.stop_workers();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn stop_workers(&self) {
        for tx in &self.txs {
            let _ = tx.send(ShardMsg::Stop);
        }
    }
}

impl<A: Aggregate> Drop for ShardedEngine<A> {
    /// Workers hold each other's senders, so dropping the engine's own
    /// senders alone would never disconnect the inboxes; send explicit
    /// stops (without joining) so the threads exit.
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop_workers();
        }
    }
}

/// Per-shard worker state.
struct ShardWorker<A: Aggregate> {
    core: Arc<ShardedCore<A>>,
    partition: Arc<Partition>,
    shard: ShardId,
    /// Writer nodes this shard owns (window expiration targets).
    writers: Vec<OverlayId>,
    rx: Receiver<ShardMsg<A>>,
    txs: Vec<Sender<ShardMsg<A>>>,
    pending: Arc<AtomicU64>,
    cross_out: Arc<Vec<AtomicU64>>,
    local: Arc<Vec<AtomicU64>>,
    reads: Arc<Vec<AtomicU64>>,
}

impl<A: Aggregate> ShardWorker<A> {
    fn run(self) {
        let shards = self.partition.shards;
        // Per-destination-shard outboxes, reused across messages.
        let mut outbox: Vec<Vec<(OverlayId, DeltaOp)>> = vec![Vec::new(); shards];
        let mut stack: Vec<(OverlayId, DeltaOp)> = Vec::with_capacity(32);
        let mut stopping = false;
        while !stopping {
            let Ok(msg) = self.rx.recv() else { break };
            // `owed` counts pending-counted messages applied but whose
            // decrement is deferred until their cross-shard deltas are
            // shipped — so `pending` can never hit zero while deltas sit
            // in an outbox.
            let mut owed = 0u64;
            stopping = self.handle(msg, &mut owed, &mut stack, &mut outbox);
            // Ship every outbox batch without ever blocking on a full
            // peer inbox: two workers blocked sending to each other's
            // full queues would deadlock, so on backpressure this worker
            // services its *own* inbox instead and retries.
            loop {
                let mut shipped_all = true;
                for (dest, buf) in outbox.iter_mut().enumerate() {
                    if buf.is_empty() {
                        continue;
                    }
                    let batch = std::mem::take(buf);
                    let n = batch.len() as u64;
                    // Count the message before it becomes visible to the
                    // receiver (its decrement must never race ahead).
                    self.pending.fetch_add(1, Ordering::AcqRel);
                    match self.txs[dest].try_send(ShardMsg::Deltas(batch)) {
                        Ok(()) => {
                            self.cross_out[self.shard.idx()].fetch_add(n, Ordering::AcqRel);
                        }
                        Err(e) if e.is_full() => {
                            self.pending.fetch_sub(1, Ordering::AcqRel);
                            let ShardMsg::Deltas(batch) = e.into_inner() else {
                                unreachable!("only deltas are flushed")
                            };
                            *buf = batch;
                            shipped_all = false;
                        }
                        Err(_) => {
                            // Receiver gone: the engine is shutting down
                            // and the delta can no longer be delivered.
                            self.pending.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                }
                if shipped_all {
                    break;
                }
                match self.rx.try_recv() {
                    Ok(m) => {
                        if self.handle(m, &mut owed, &mut stack, &mut outbox) {
                            stopping = true;
                        }
                    }
                    Err(_) => std::thread::yield_now(),
                }
            }
            if owed > 0 {
                self.pending.fetch_sub(owed, Ordering::AcqRel);
            }
        }
    }

    /// Apply one inbox message; returns `true` for [`ShardMsg::Stop`].
    fn handle(
        &self,
        msg: ShardMsg<A>,
        owed: &mut u64,
        stack: &mut Vec<(OverlayId, DeltaOp)>,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
    ) -> bool {
        match msg {
            ShardMsg::Writes(group) => {
                *owed += 1;
                let mut slab = self.core.store().lock_shard(self.shard);
                for (wid, value, ts) in group {
                    for op in self.core.window_ops(wid, value, ts) {
                        stack.push((wid, op));
                        self.cascade(&mut slab, stack, outbox);
                    }
                }
                false
            }
            ShardMsg::Deltas(group) => {
                *owed += 1;
                let mut slab = self.core.store().lock_shard(self.shard);
                for (n, op) in group {
                    stack.push((n, op));
                    self.cascade(&mut slab, stack, outbox);
                }
                false
            }
            ShardMsg::Reads { targets, reply } => {
                *owed += 1;
                // One slab read lock per request batch: local PAOs (push
                // finalizes, the local part of pull trees) resolve with
                // plain indexed access; cross-shard pull inputs fall
                // through to the foreign slabs' read locks. This worker is
                // the only writer of its slab, so snapshotting it cannot
                // self-deadlock, and foreign access takes exactly one lock
                // at a time, so no lock cycle can form.
                let snap = self.core.store().snapshot_shard(self.shard);
                self.reads[self.shard.idx()].fetch_add(targets.len() as u64, Ordering::AcqRel);
                match reply {
                    Some(tx) => {
                        let answers: ReadReplies<A> = targets
                            .into_iter()
                            .map(|(slot, v)| (slot, self.core.read_via(v, &snap)))
                            .collect();
                        // A dropped receiver means the requesting thread
                        // gave up (engine shutdown) — nothing to deliver.
                        let _ = tx.send(answers);
                    }
                    None => {
                        // Fire-and-forget reads from a mixed ingest batch.
                        for (_, v) in targets {
                            std::hint::black_box(self.core.read_via(v, &snap));
                        }
                    }
                }
                false
            }
            ShardMsg::Expire(ts) => {
                *owed += 1;
                let mut slab = self.core.store().lock_shard(self.shard);
                for &wid in &self.writers {
                    for op in self.core.expire_ops(wid, ts) {
                        stack.push((wid, op));
                        self.cascade(&mut slab, stack, outbox);
                    }
                }
                false
            }
            ShardMsg::Stop => true,
        }
    }

    /// Apply every stacked op owned by this shard, following push edges:
    /// same-shard consumers are applied in the same slab pass, cross-shard
    /// consumers accumulate in the outboxes.
    fn cascade(
        &self,
        slab: &mut crate::store::ShardGuard<'_, A::Partial>,
        stack: &mut Vec<(OverlayId, DeltaOp)>,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
    ) {
        let agg = self.core.aggregate();
        let overlay = self.core.overlay();
        while let Some((n, op)) = stack.pop() {
            op.apply(agg, slab.get_mut(n.idx()));
            self.core.record_push(n);
            self.local[self.shard.idx()].fetch_add(1, Ordering::Relaxed);
            for &(t, sign) in overlay.outputs(n) {
                if self.core.is_push(t) {
                    let routed = op.signed(sign);
                    let dest = self.partition.shard_of(t.idx());
                    if dest == self.shard {
                        stack.push((t, routed));
                    } else {
                        outbox[dest.idx()].push((t, routed));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::Sum;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};
    use eagr_util::SplitMix64;

    fn paper_parts() -> (Arc<Overlay>, Decisions) {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = Decisions::all_push(&ov);
        (ov, d)
    }

    fn sharded(shards: usize) -> ShardedEngine<Sum> {
        let (ov, d) = paper_parts();
        ShardedEngine::new(
            Sum,
            ov,
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig {
                shards,
                strategy: PartitionStrategy::Hash,
                channel_capacity: 64,
            },
        )
    }

    #[test]
    fn paper_example_matches_reference_after_drain() {
        let eng = sharded(4);
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut events = Vec::new();
        for (node, vals) in streams {
            for &v in vals {
                events.push(Event::Write {
                    node: NodeId(node),
                    value: v,
                });
            }
        }
        eng.ingest_epoch(&EventBatch::new(0, events));
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(eng.read(NodeId(v as u32)), Some(w), "reader {v}");
        }
        assert_eq!(eng.epochs(), 1);
        eng.shutdown();
    }

    #[test]
    fn random_batches_converge_to_sequential_replay() {
        let eng = sharded(3);
        let (ov, d) = paper_parts();
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1));
        let mut rng = SplitMix64::new(99);
        let mut ts = 0u64;
        for _ in 0..20 {
            let events: Vec<Event> = (0..50)
                .map(|_| Event::Write {
                    node: NodeId(rng.index(7) as u32),
                    value: rng.range(0, 50) as i64,
                })
                .collect();
            for (i, e) in events.iter().enumerate() {
                if let Event::Write { node, value } = *e {
                    reference.write(node, value, ts + i as u64);
                }
            }
            eng.ingest(&EventBatch::new(ts, events));
            ts += 50;
        }
        eng.drain();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        eng.shutdown();
    }

    #[test]
    fn cross_shard_deltas_are_counted() {
        // 4 shards over 13 overlay nodes: some writer→reader push edge must
        // cross a shard boundary.
        let eng = sharded(4);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 1,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events));
        assert!(eng.cross_shard_deltas() > 0, "expected cross-shard traffic");
        eng.shutdown();
    }

    #[test]
    fn single_shard_degenerates_to_local_execution() {
        let eng = sharded(1);
        eng.submit_write(NodeId(2), 6, 0);
        eng.submit_write(NodeId(2), 9, 1);
        eng.drain();
        assert_eq!(eng.read(NodeId(0)), Some(9));
        assert_eq!(eng.cross_shard_deltas(), 0);
        eng.shutdown();
    }

    #[test]
    fn drop_without_shutdown_stops_workers() {
        let eng = sharded(2);
        eng.submit_write(NodeId(2), 6, 0);
        eng.drain();
        drop(eng); // must not hang or leak a deadlocked worker
    }

    #[test]
    fn edge_cut_strategy_builds_and_matches_reference() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig {
                shards: 3,
                strategy: PartitionStrategy::EdgeCut,
                channel_capacity: 64,
            },
        );
        assert_eq!(eng.partition().strategy, PartitionStrategy::EdgeCut);
        assert_eq!(eng.partition().len(), ov.node_count());
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1));
        for (ts, (node, value)) in [(2u32, 6i64), (3, 8), (4, 5), (2, 9), (5, 3)]
            .into_iter()
            .enumerate()
        {
            reference.write(NodeId(node), value, ts as u64);
            eng.submit_write(NodeId(node), value, ts as u64);
        }
        eng.drain();
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        eng.shutdown();
    }

    #[test]
    fn advance_time_expires_through_shard_inboxes() {
        let (ov, d) = paper_parts();
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Time(10),
            &ShardedConfig {
                shards: 4,
                strategy: PartitionStrategy::Hash,
                channel_capacity: 64,
            },
        );
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Time(10));
        for (node, value, ts) in [(2u32, 5i64, 0u64), (3, 7, 5)] {
            eng.submit_write(NodeId(node), value, ts);
            reference.write(NodeId(node), value, ts);
        }
        eng.drain();
        assert_eq!(eng.read(NodeId(0)), Some(12));
        // t = 11: the t=0 write expires everywhere, including across shards.
        let applied = eng.advance_time_epoch(11);
        reference.advance_time(11);
        assert!(applied > 0, "expiration must apply PAO updates");
        for v in 0..7u32 {
            assert_eq!(eng.read(NodeId(v)), reference.read(NodeId(v)), "reader {v}");
        }
        // Advancing past everything empties the windows identically.
        eng.advance_time_epoch(1000);
        reference.advance_time(1000);
        assert_eq!(eng.read(NodeId(0)), Some(0));
        assert_eq!(eng.read(NodeId(0)), reference.read(NodeId(0)));
        eng.shutdown();
    }

    #[test]
    fn shard_stats_account_all_work() {
        let eng = sharded(4);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 1,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events));
        let stats = eng.shard_stats();
        assert_eq!(stats.len(), 4);
        let nodes: usize = stats.iter().map(|s| s.nodes).sum();
        assert_eq!(nodes, eng.partition().len());
        let local: u64 = stats.iter().map(|s| s.local_applies).sum();
        let cross: u64 = stats.iter().map(|s| s.cross_deltas_out).sum();
        assert_eq!(local, eng.local_applies());
        assert_eq!(cross, eng.cross_shard_deltas());
        // Every op lands in some slab; cross-shard ops are a subset.
        assert!(local >= cross);
        assert!(local > 0);
        eng.shutdown();
    }

    #[test]
    fn read_batch_matches_point_reads_after_drain() {
        let eng = sharded(4);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 2 * n as i64 + 1,
            })
            .collect();
        eng.ingest_epoch(&EventBatch::new(0, events));
        let nodes: Vec<NodeId> = (0..7u32).map(NodeId).collect();
        let batch = eng.read_batch(&nodes);
        assert_eq!(batch.len(), 7);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(batch[i], eng.read(v), "node {v:?}");
            assert_eq!(eng.read_service(v), eng.read(v), "node {v:?}");
        }
        // Every answered request was served by a shard worker.
        assert!(eng.reads_served() > 0);
        let per_shard: u64 = eng.shard_stats().iter().map(|s| s.reads_served).sum();
        assert_eq!(per_shard, eng.reads_served());
        eng.shutdown();
    }

    #[test]
    fn read_batch_drains_pending_epochs_first() {
        let eng = sharded(3);
        let events: Vec<Event> = (0..7u32)
            .map(|n| Event::Write {
                node: NodeId(n),
                value: 10,
            })
            .collect();
        // No explicit drain: read_batch must settle the epoch itself.
        eng.ingest(&EventBatch::new(0, events));
        let answers = eng.read_batch(&[NodeId(0)]);
        assert_eq!(answers, vec![Some(40)]); // a sums {c, d, e, f}, 10 each
        eng.shutdown();
    }

    #[test]
    fn read_batch_reports_none_for_nodes_without_reader() {
        let eng = sharded(2);
        let answers = eng.read_batch(&[NodeId(1000), NodeId(0)]);
        assert_eq!(answers[0], None);
        assert_eq!(answers[1], Some(0));
        eng.shutdown();
    }

    #[test]
    fn mixed_ingest_routes_reads_to_shard_workers() {
        let eng = sharded(4);
        let mut events = Vec::new();
        for n in 0..7u32 {
            events.push(Event::Write {
                node: NodeId(n),
                value: 1,
            });
            events.push(Event::Read { node: NodeId(n) });
        }
        let (w, r) = eng.ingest_epoch(&EventBatch::new(0, events));
        assert_eq!((w, r), (7, 7));
        // Every read event was evaluated by its owning worker, not the
        // caller thread.
        assert_eq!(eng.reads_served(), 7);
        eng.shutdown();
    }

    #[test]
    fn read_batch_with_pull_readers_crosses_shards() {
        // All-pull decisions (writers still push): every read evaluates a
        // pull tree whose inputs are spread across shards by the hash
        // partition — the owning worker resolves foreign inputs through
        // the peer slabs' read locks.
        let (ov, _) = paper_parts();
        let d = Decisions::all_pull(&ov);
        let eng = ShardedEngine::new(
            Sum,
            Arc::clone(&ov),
            &d,
            WindowSpec::Tuple(1),
            &ShardedConfig {
                shards: 4,
                strategy: PartitionStrategy::Hash,
                channel_capacity: 64,
            },
        );
        let reference = EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1));
        for (ts, (node, value)) in [(2u32, 6i64), (3, 8), (4, 5), (5, 3), (6, 9)]
            .into_iter()
            .enumerate()
        {
            reference.write(NodeId(node), value, ts as u64);
            eng.submit_write(NodeId(node), value, ts as u64);
        }
        let nodes: Vec<NodeId> = (0..7u32).map(NodeId).collect();
        let got = eng.read_batch(&nodes);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(got[i], reference.read(v), "pull reader {v:?}");
        }
        eng.shutdown();
    }
}
