//! The shard-host side of the process transport: the event loop behind
//! the `eagr-shard-host` binary.
//!
//! A host is one OS process owning one shard. It connects back to the
//! coordinator's Unix socket (path in `argv[1]`), reads the [`InitHeader`]
//! and [`WirePlan`] handshake frames, builds a local
//! [`EngineCore`]`<A, ShardedStore>` whose slab layout mirrors the
//! coordinator's (full overlay length; only this shard's slots ever hold
//! live state), then acknowledges with [`HostMsg::Ready`] and enters a
//! strictly sequential frame loop.
//!
//! The loop mirrors the in-process `ShardWorker` exactly: data-plane
//! messages (`Writes`/`Deltas`/`Reads`/`Expire`) apply the delta cascade
//! against the local slab, accumulate cross-shard deltas per destination,
//! then write every [`HostMsg::Fwd`] frame **before** the closing
//! [`HostMsg::Applied`] — the FIFO ordering the coordinator's epoch
//! accounting depends on (see the [`super::codec`] docs). State-plane
//! requests (fetch/install/map-set/counts/swap/…) answer synchronously
//! with their `req_id` echoed.
//!
//! Being single-threaded, a host needs none of the worker's backpressure
//! self-servicing: its socket writes land in the coordinator's unbounded
//! relay queues, so they cannot deadlock against an inbound frame.

use super::codec::{
    host_msg_bytes, wire_msg_from, HostMsg, InitHeader, WireMsg, WirePlan, WireSlot,
};
use crate::core::{EngineCore, EngineState};
use crate::store::{PaoReader, ShardedStore};
use eagr_agg::{Aggregate, Avg, Count, DeltaOp, Distinct, Max, Min, Sum, WindowSpec, WireHooks};
use eagr_graph::{Partition, PartitionStrategy, ShardId};
use eagr_overlay::OverlayId;
use eagr_util::wire::{read_frame, write_frame, Wire};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// Entry point for the `eagr-shard-host` binary: connect to the
/// coordinator socket named by the first argument, serve the shard until
/// [`WireMsg::Stop`] or coordinator disconnect, and return the process
/// exit code.
pub fn host_main() -> i32 {
    let Some(path) = std::env::args_os().nth(1) else {
        eprintln!("usage: eagr-shard-host <coordinator socket path>");
        return 2;
    };
    match serve(std::path::Path::new(&path)) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("eagr-shard-host: {e}");
            1
        }
    }
}

fn serve(path: &std::path::Path) -> Result<(), String> {
    let mut stream =
        UnixStream::connect(path).map_err(|e| format!("connect {}: {e}", path.display()))?;
    let header = read_handshake_frame(&mut stream, "InitHeader")?;
    let header = InitHeader::from_wire(&header).map_err(|e| format!("bad InitHeader: {e}"))?;
    let plan = read_handshake_frame(&mut stream, "WirePlan")?;
    // Monomorphic dispatch: the aggregate travels by `WireHooks::name`, so
    // each supported builtin gets its own instantiation of `run`. TopK has
    // no wire hooks and therefore no process-transport support.
    match header.aggregate.as_str() {
        "SUM" => run(stream, &header, &plan, Sum),
        "COUNT" => run(stream, &header, &plan, Count),
        "AVG" => run(stream, &header, &plan, Avg),
        "MAX" => run(stream, &header, &plan, Max),
        "MIN" => run(stream, &header, &plan, Min),
        "DISTINCT" => run(stream, &header, &plan, Distinct),
        other => Err(format!("unsupported aggregate {other:?} (no host loop)")),
    }
}

fn read_handshake_frame(stream: &mut UnixStream, what: &str) -> Result<Vec<u8>, String> {
    read_frame(stream)
        .map_err(|e| format!("reading {what}: {e}"))?
        .ok_or_else(|| format!("coordinator closed the socket before {what}"))
}

/// The monomorphic host loop for one aggregate type.
fn run<A: Aggregate + Clone>(
    mut stream: UnixStream,
    header: &InitHeader,
    plan_payload: &[u8],
    agg: A,
) -> Result<(), String> {
    let hooks = agg
        .wire_hooks()
        .ok_or_else(|| format!("aggregate {} lost its wire hooks", header.aggregate))?;
    let plan = WirePlan::from_wire(plan_payload).map_err(|e| format!("bad WirePlan: {e}"))?;
    let mut worker = HostWorker::build(
        ShardId(header.shard),
        header.shards as usize,
        header.window,
        agg,
        hooks,
        plan,
        None,
    );
    worker
        .write(&mut stream, &HostMsg::Ready)
        .map_err(|e| format!("handshake ack: {e}"))?;
    let mut stack: Vec<(OverlayId, DeltaOp)> = Vec::with_capacity(32);
    let mut outbox: Vec<Vec<(OverlayId, DeltaOp)>> = vec![Vec::new(); worker.shards];
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Coordinator gone (crashed or dropped without Stop): exit
            // quietly rather than linger as an orphan.
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("socket read: {e}")),
        };
        let msg =
            wire_msg_from::<A>(&payload, &worker.hooks).map_err(|e| format!("bad frame: {e}"))?;
        if !worker
            .handle(&mut stream, msg, &mut stack, &mut outbox)
            .map_err(|e| format!("socket write: {e}"))?
        {
            return Ok(());
        }
    }
}

/// Single-threaded per-shard engine state inside a host process.
struct HostWorker<A: Aggregate> {
    shard: ShardId,
    shards: usize,
    window: WindowSpec,
    hooks: WireHooks<A>,
    /// Template for rebuilding the core on [`WireMsg::Swap`].
    agg: A,
    core: EngineCore<A, ShardedStore<A::Partial>>,
    /// Local copy of the node→shard map; updated by [`WireMsg::MapSet`]
    /// and replaced wholesale by [`WireMsg::Swap`].
    partition: Partition,
    /// Writers this shard owns (window-expiration targets under
    /// [`WireMsg::Expire`]); recomputed whenever the map changes.
    writers: Vec<OverlayId>,
}

impl<A: Aggregate + Clone> HostWorker<A> {
    /// Build (or on swap, rebuild) the local engine from a plan, then
    /// seed it with `state` if given.
    fn build(
        shard: ShardId,
        shards: usize,
        window: WindowSpec,
        agg: A,
        hooks: WireHooks<A>,
        plan: WirePlan,
        state: Option<&EngineState<A::Partial>>,
    ) -> Self {
        let partition = Partition {
            of: plan.map.iter().map(|&s| ShardId(s)).collect(),
            shards,
            strategy: PartitionStrategy::Hash,
        };
        let overlay = Arc::new(plan.overlay);
        let store = ShardedStore::new(&partition, || agg.empty());
        let core = EngineCore::with_store(
            agg.clone(),
            Arc::clone(&overlay),
            &plan.decisions,
            window,
            store,
        );
        if let Some(state) = state {
            core.install_state(state);
        }
        // Tombstone retired slots exactly like the coordinator's rebuild
        // path, so compaction and orphan counts agree across transports.
        for idx in 0..overlay.node_count() {
            if overlay.is_retired(OverlayId(idx as u32)) {
                core.store().retire_slot(idx);
            }
        }
        let mut worker = Self {
            shard,
            shards,
            window,
            hooks,
            agg,
            core,
            partition,
            writers: Vec::new(),
        };
        worker.recompute_writers();
        worker
    }

    fn recompute_writers(&mut self) {
        self.writers = self
            .core
            .overlay()
            .writers()
            .map(|(wid, _)| wid)
            .filter(|wid| self.partition.shard_of(wid.idx()) == self.shard)
            .collect();
    }

    fn write(&self, stream: &mut UnixStream, msg: &HostMsg<A>) -> std::io::Result<()> {
        write_frame(stream, &host_msg_bytes(msg, &self.hooks))?;
        stream.flush()
    }

    /// Handle one frame; `Ok(false)` means [`WireMsg::Stop`].
    fn handle(
        &mut self,
        stream: &mut UnixStream,
        msg: WireMsg<A>,
        stack: &mut Vec<(OverlayId, DeltaOp)>,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
    ) -> std::io::Result<bool> {
        match msg {
            WireMsg::Writes(group) => {
                let mut local = 0u64;
                {
                    let mut slab = self.core.store().lock_shard(self.shard);
                    for (wid, value, ts) in group {
                        for op in self.core.window_ops(wid, value, ts) {
                            stack.push((wid, op));
                            self.cascade(&mut slab, stack, outbox, &mut local);
                        }
                    }
                }
                let cross = self.flush_outbox(stream, outbox)?;
                self.write(
                    stream,
                    &HostMsg::Applied {
                        local,
                        cross,
                        reads: 0,
                    },
                )?;
                Ok(true)
            }
            WireMsg::Deltas(group) => {
                let mut local = 0u64;
                {
                    let mut slab = self.core.store().lock_shard(self.shard);
                    for (n, op) in group {
                        stack.push((n, op));
                        self.cascade(&mut slab, stack, outbox, &mut local);
                    }
                }
                let cross = self.flush_outbox(stream, outbox)?;
                self.write(
                    stream,
                    &HostMsg::Applied {
                        local,
                        cross,
                        reads: 0,
                    },
                )?;
                Ok(true)
            }
            WireMsg::Reads {
                req_id,
                targets,
                want_reply,
            } => {
                let reads = targets.len() as u64;
                let snap = self.core.store().snapshot_shard(self.shard);
                if want_reply {
                    let answers: Vec<(u64, Option<A::Output>)> = targets
                        .into_iter()
                        .map(|(pos, v)| (pos, self.core.read_via(v, &snap)))
                        .collect();
                    drop(snap);
                    self.write(stream, &HostMsg::ReadReplies { req_id, answers })?;
                } else {
                    // Fire-and-forget accounting reads from a mixed ingest
                    // batch; the answers are discarded.
                    for (_, v) in targets {
                        std::hint::black_box(self.core.read_via(v, &snap));
                    }
                    drop(snap);
                }
                self.write(
                    stream,
                    &HostMsg::Applied {
                        local: 0,
                        cross: 0,
                        reads,
                    },
                )?;
                Ok(true)
            }
            WireMsg::Expire(ts) => {
                let mut local = 0u64;
                {
                    let mut slab = self.core.store().lock_shard(self.shard);
                    let writers = self.writers.clone();
                    for wid in writers {
                        for op in self.core.expire_ops(wid, ts) {
                            stack.push((wid, op));
                            self.cascade(&mut slab, stack, outbox, &mut local);
                        }
                    }
                }
                let cross = self.flush_outbox(stream, outbox)?;
                self.write(
                    stream,
                    &HostMsg::Applied {
                        local,
                        cross,
                        reads: 0,
                    },
                )?;
                Ok(true)
            }
            WireMsg::FetchPaos { req_id, slots } => {
                let snap = self.core.store().snapshot_shard(self.shard);
                let paos = slots
                    .into_iter()
                    .map(|s| (s, snap.with_pao(s as usize, |p| p.clone())))
                    .collect();
                drop(snap);
                self.write(stream, &HostMsg::Paos { req_id, paos })?;
                Ok(true)
            }
            WireMsg::FetchSlots { req_id, slots } => {
                let out: Vec<WireSlot<A>> = {
                    let snap = self.core.store().snapshot_shard(self.shard);
                    slots
                        .into_iter()
                        .map(|s| {
                            let pao = snap.with_pao(s as usize, |p| p.clone());
                            let win = self.core.export_window(OverlayId(s));
                            (s, pao, win)
                        })
                        .collect()
                };
                self.write(stream, &HostMsg::Slots { req_id, slots: out })?;
                Ok(true)
            }
            WireMsg::InstallSlots { req_id, slots } => {
                for (slot, pao, win) in slots {
                    self.core.store().relocate(slot as usize, self.shard, pao);
                    if let Some(buf) = win {
                        self.core.install_window(OverlayId(slot), &buf);
                    }
                }
                self.write(stream, &HostMsg::Ok { req_id })?;
                Ok(true)
            }
            WireMsg::MapSet { req_id, pairs } => {
                for (slot, new_shard) in pairs {
                    let slot = slot as usize;
                    let dest = ShardId(new_shard);
                    let old = self.partition.shard_of(slot);
                    if old == self.shard && dest != self.shard {
                        // Departing slot: the destination host installed
                        // the live copy; hand the local slab entry over to
                        // an empty placeholder so this shard's slab stops
                        // carrying it (the abandoned entry is swept as an
                        // orphan by the next compaction).
                        self.core.store().relocate(slot, dest, self.agg.empty());
                    }
                    if slot < self.partition.of.len() {
                        self.partition.of[slot] = dest;
                    }
                }
                self.recompute_writers();
                self.write(stream, &HostMsg::Ok { req_id })?;
                Ok(true)
            }
            WireMsg::FetchState { req_id } => {
                let mut state = self.core.export_state();
                // Only this shard's slots carry truth here; blank the rest
                // so the coordinator's merge never clobbers live state
                // fetched from their owners.
                for (idx, w) in state.windows.iter_mut().enumerate() {
                    if self.partition.shard_of(idx) != self.shard {
                        *w = None;
                    }
                }
                for (idx, p) in state.paos.iter_mut().enumerate() {
                    if self.partition.shard_of(idx) != self.shard {
                        *p = None;
                    }
                }
                self.write(stream, &HostMsg::State { req_id, state })?;
                Ok(true)
            }
            WireMsg::Counts { req_id } => {
                self.write(
                    stream,
                    &HostMsg::CountsReply {
                        req_id,
                        pushed: self.core.observed_push_counts(),
                        pulled: self.core.observed_pull_counts(),
                    },
                )?;
                Ok(true)
            }
            WireMsg::Decay { req_id, factor } => {
                self.core.decay_observed(factor);
                self.write(stream, &HostMsg::Ok { req_id })?;
                Ok(true)
            }
            WireMsg::Compact { req_id } => {
                let value = self.core.store().compact();
                self.write(stream, &HostMsg::Num { req_id, value })?;
                Ok(true)
            }
            WireMsg::Orphans { req_id } => {
                let value = self.core.store().orphaned_slots();
                self.write(stream, &HostMsg::Num { req_id, value })?;
                Ok(true)
            }
            WireMsg::Swap {
                req_id,
                plan,
                state,
            } => {
                // Topology epoch: rebuild the whole local engine under the
                // new overlay/decisions/map and adopt the owned state slice
                // the coordinator rebuilt — the process-mode equivalent of
                // the in-process workers swapping their shared-core Arcs.
                *self = Self::build(
                    self.shard,
                    self.shards,
                    self.window,
                    self.agg.clone(),
                    self.hooks,
                    *plan,
                    Some(&state),
                );
                self.write(stream, &HostMsg::Ok { req_id })?;
                Ok(true)
            }
            WireMsg::Stop => Ok(false),
        }
    }

    /// Write one [`HostMsg::Fwd`] frame per non-empty destination outbox;
    /// returns the total cross-shard delta count. Must run before the
    /// `Applied` of the message that filled the outboxes (FIFO pending
    /// contract).
    fn flush_outbox(
        &self,
        stream: &mut UnixStream,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
    ) -> std::io::Result<u64> {
        let mut cross = 0u64;
        for (dest, buf) in outbox.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let deltas = std::mem::take(buf);
            cross += deltas.len() as u64;
            self.write(
                stream,
                &HostMsg::Fwd {
                    dest: dest as u32,
                    deltas,
                },
            )?;
        }
        Ok(cross)
    }

    /// The worker delta cascade, verbatim: apply every stacked op at its
    /// owned slot, follow push edges, route same-shard consumers back onto
    /// the stack and foreign ones into the destination outbox.
    fn cascade(
        &self,
        slab: &mut crate::store::ShardGuard<'_, A::Partial>,
        stack: &mut Vec<(OverlayId, DeltaOp)>,
        outbox: &mut [Vec<(OverlayId, DeltaOp)>],
        local: &mut u64,
    ) {
        let agg = self.core.aggregate();
        let overlay = self.core.overlay();
        while let Some((n, op)) = stack.pop() {
            op.apply(agg, slab.get_mut(n.idx()));
            self.core.record_push(n);
            *local += 1;
            for &(t, sign) in overlay.outputs(n) {
                if self.core.is_push(t) {
                    let routed = op.signed(sign);
                    let dest = self.partition.shard_of(t.idx());
                    if dest == self.shard {
                        stack.push((t, routed));
                    } else {
                        outbox[dest.idx()].push((t, routed));
                    }
                }
            }
        }
    }
}
