//! `ShardTransport` — the communication seam of the sharded runtime.
//!
//! [`crate::ShardedEngine`] routes every shard-bound message through a
//! `Box<dyn ShardTransport<A>>` instead of concrete channel vectors. Two
//! implementations exist:
//!
//! * **In-process** (the default, [`TransportKind::InProcess`]): the
//!   original crossbeam bounded-channel mesh. One worker thread per shard
//!   in this address space; zero serialization, bounded-channel
//!   backpressure, byte-for-byte the pre-trait behavior.
//! * **Multi-process** ([`TransportKind::Process`], Unix only): each shard
//!   runs in its own `eagr-shard-host` OS process, connected to the
//!   coordinator by a Unix-domain socket speaking the length-prefixed
//!   [`codec`] protocol. Cross-shard deltas hop host → coordinator → host
//!   (a star topology — the coordinator relays, so shard hosts never dial
//!   each other), and the `pending` epoch accounting rides the same FIFO
//!   sockets: a host always emits its forwarded-delta frames *before* the
//!   `Applied` acknowledgement for the message that produced them, so the
//!   coordinator's pending count can never touch zero while deltas are
//!   still in flight. [`ShardedEngine::drain`](crate::ShardedEngine::drain)
//!   therefore keeps its exact epoch-barrier meaning across process
//!   boundaries.
//!
//! The **data plane** (writes, deltas, shard-executed reads, window
//! expiration) flows through [`ShardTransport::send`] in both modes. The
//! **state plane** — PAO/window state fetch + install for live migration,
//! observed-counter collection for rebalancing, plan swaps for topology
//! epochs, compaction — only exists over the socket transport (the
//! in-process engine touches its shared store directly) and is expressed
//! as synchronous request/reply methods that default to
//! [`TransportError::Unsupported`].
//!
//! Every method is fallible: a dead peer process surfaces as a
//! [`TransportError`] through the engine's `Result` APIs, never a panic or
//! a wedged drain (the drain loop polls [`ShardTransport::healthy`]).

pub mod codec;
#[cfg(unix)]
pub mod host;
#[cfg(unix)]
pub mod process;

use crate::core::EngineState;
use crate::sharded::ShardMsg;
use eagr_agg::{Aggregate, WindowBuffer, WindowSpec};
use eagr_flow::Decisions;
use eagr_overlay::Overlay;
use std::sync::Arc;

/// Which transport a [`crate::ShardedConfig`] launches the shard mesh on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// One worker thread per shard in this process, crossbeam channels
    /// in between — the zero-regression default.
    #[default]
    InProcess,
    /// One `eagr-shard-host` OS process per shard, Unix-domain sockets in
    /// between. Requires the aggregate to provide
    /// [`eagr_agg::Aggregate::wire_hooks`] and a reachable host binary
    /// (see [`process::host_binary_path`]).
    Process,
}

/// Why a transport operation failed. Cloneable so an error observed by a
/// pump thread can be surfaced by every subsequent engine call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer for `shard` is gone (worker thread stopped, host process
    /// exited, or the socket closed). `detail` carries the first observed
    /// cause when known.
    Closed {
        /// The shard whose peer died, when attributable.
        shard: Option<usize>,
        /// Human-readable cause.
        detail: String,
    },
    /// A socket/spawn-level I/O failure.
    Io(String),
    /// A frame failed to encode or decode.
    Codec(String),
    /// The operation is not supported by this transport (state-plane calls
    /// on the in-process transport, or launching a process transport for
    /// an aggregate without wire hooks).
    Unsupported(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed {
                shard: Some(s),
                detail,
            } => {
                write!(f, "shard {s} peer closed: {detail}")
            }
            TransportError::Closed {
                shard: None,
                detail,
            } => {
                write!(f, "shard peer closed: {detail}")
            }
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
            TransportError::Codec(e) => write!(f, "transport codec: {e}"),
            TransportError::Unsupported(what) => write!(f, "transport unsupported: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

impl From<eagr_util::wire::WireError> for TransportError {
    fn from(e: eagr_util::wire::WireError) -> Self {
        TransportError::Codec(e.to_string())
    }
}

/// One slab slot's migratable state: `(overlay slot index, PAO partial,
/// window buffer when the slot is a writer)`.
pub type SlotState<A> = (u32, <A as Aggregate>::Partial, Option<WindowBuffer>);

/// Everything a shard host needs to take over a new topology epoch
/// ([`ShardTransport::swap_plan`]): the rebuilt overlay/decision/map triple
/// plus the slice of engine state the receiving shard owns under the new
/// map.
pub struct PlanUpdate<A: Aggregate> {
    /// The repaired overlay (ids append-only).
    pub overlay: Arc<Overlay>,
    /// Push/pull decisions covering every overlay id.
    pub decisions: Decisions,
    /// Window semantics (fixed for the engine's lifetime).
    pub window: WindowSpec,
    /// The full node→shard map under the new topology.
    pub map: Vec<u32>,
    /// Carried state for the slots the receiving shard owns (all other
    /// entries `None`).
    pub state: EngineState<A::Partial>,
}

/// The communication backend of one [`crate::ShardedEngine`].
///
/// Implementations own the shard peers (worker threads or host processes)
/// and the machinery to reach them. The engine's epoch accounting stays on
/// the engine side: the caller increments `pending` before every counted
/// [`send`](Self::send), and the transport guarantees the matching
/// decrement happens only after the message *and every cross-shard delta
/// it transitively produced on its shard* have been applied (workers
/// decrement directly; the socket pump decrements on `Applied` frames,
/// having first re-incremented for each forwarded delta batch).
pub trait ShardTransport<A: Aggregate>: Send + Sync {
    /// Which kind of transport this is (the engine branches its state
    /// plane on it).
    fn kind(&self) -> TransportKind;

    /// Number of shard peers.
    fn shards(&self) -> usize;

    /// Deliver one protocol message to `shard`'s inbox. Blocking (bounded
    /// channel backpressure in-process; socket write queueing over the
    /// wire). A dead peer returns [`TransportError::Closed`].
    fn send(&self, shard: usize, msg: ShardMsg<A>) -> Result<(), TransportError>;

    /// Cheap liveness probe, polled inside the engine's drain spin so a
    /// dead peer turns a would-be-infinite barrier into an error.
    fn healthy(&self) -> Result<(), TransportError>;

    /// Best-effort stop signal to every peer without waiting for them
    /// (the engine's `Drop` path). In-process workers exit their loops;
    /// host processes are told to stop and reaped.
    fn stop(&self);

    /// Graceful teardown: stop every peer and wait for it to exit.
    fn shutdown(&self);

    /// OS process ids of the shard peers, one per shard — empty for
    /// transports whose peers are threads in this process. Lets callers
    /// verify (tests) or report (benchmarks) that shards really run as
    /// separate processes.
    fn host_pids(&self) -> Vec<u32> {
        Vec::new()
    }

    // --- state plane (socket transport only) ---------------------------

    /// Fetch clones of the listed slots' PAO partials from `shard`.
    fn fetch_paos(
        &self,
        _shard: usize,
        _slots: &[u32],
    ) -> Result<Vec<(u32, A::Partial)>, TransportError> {
        Err(TransportError::Unsupported("fetch_paos"))
    }

    /// Fetch the listed slots' full migratable state (PAO + window) from
    /// `shard`.
    fn fetch_slots(
        &self,
        _shard: usize,
        _slots: &[u32],
    ) -> Result<Vec<SlotState<A>>, TransportError> {
        Err(TransportError::Unsupported("fetch_slots"))
    }

    /// Install migrated slots at their new owner `shard` (relocates each
    /// slot into the shard's slab and installs carried window state).
    fn install_slots(
        &self,
        _shard: usize,
        _slots: Vec<SlotState<A>>,
    ) -> Result<(), TransportError> {
        Err(TransportError::Unsupported("install_slots"))
    }

    /// Broadcast node→shard map updates (`(slot, new shard)` pairs) to
    /// every peer; each recomputes its window-expiration writer set.
    fn map_update(&self, _pairs: &[(u32, u32)]) -> Result<(), TransportError> {
        Err(TransportError::Unsupported("map_update"))
    }

    /// Export `shard`'s full engine state (entries only for slots it
    /// owns) — the topology-epoch resync path.
    fn fetch_state(&self, _shard: usize) -> Result<EngineState<A::Partial>, TransportError> {
        Err(TransportError::Unsupported("fetch_state"))
    }

    /// Install a new topology plan + owned-state slice at `shard`
    /// (topology epoch).
    fn swap_plan(&self, _shard: usize, _plan: &PlanUpdate<A>) -> Result<(), TransportError> {
        Err(TransportError::Unsupported("swap_plan"))
    }

    /// Element-wise sum of every peer's observed `(push, pull)` counters.
    fn observed_counts(&self) -> Result<(Vec<u64>, Vec<u64>), TransportError> {
        Err(TransportError::Unsupported("observed_counts"))
    }

    /// Decay every peer's observed counters by `factor`.
    fn decay_observed(&self, _factor: f64) -> Result<(), TransportError> {
        Err(TransportError::Unsupported("decay_observed"))
    }

    /// Compact every peer's slabs; returns total slots reclaimed.
    fn compact_shards(&self) -> Result<u64, TransportError> {
        Err(TransportError::Unsupported("compact_shards"))
    }

    /// Total orphaned slab slots across every peer.
    fn orphaned_slots(&self) -> Result<u64, TransportError> {
        Err(TransportError::Unsupported("orphaned_slots"))
    }
}
