//! The multi-process [`ShardTransport`]: one `eagr-shard-host` OS process
//! per shard, Unix-domain sockets in a star around the coordinator.
//!
//! ## Topology and threads
//!
//! The coordinator binds one listener per shard under the system temp
//! directory, spawns the host binary with the socket path as its only
//! argument, and completes a synchronous handshake ([`InitHeader`] frame,
//! then a [`WirePlan`] frame, then the host's `Ready`) before any traffic
//! flows. Per connected host the coordinator runs two threads:
//!
//! * a **writer** draining an unbounded queue of pre-encoded payloads onto
//!   the socket — senders (the engine *and* the pumps) never block on a
//!   slow peer's socket, which is what makes the relay deadlock-free;
//! * a **pump** reading host frames: `Fwd` frames are re-encoded as
//!   [`WireMsg::Deltas`] and queued to the destination host's writer
//!   (cross-shard deltas hop host → coordinator → host), `Applied` frames
//!   decrement the engine's `pending` counter and fold the host's work
//!   counters into the per-shard stats, and `req_id`-correlated replies
//!   wake the engine thread blocked in `ProcessTransport::request`.
//!
//! ## Epoch accounting
//!
//! The engine increments `pending` before every counted send, exactly as
//! in-process. A host writes its `Fwd` frames *before* the `Applied` of
//! the message that produced them, and each socket is FIFO, so the pump
//! re-increments `pending` for every forwarded batch before it sees the
//! matching decrement — `pending == 0` still means "quiescent", and
//! [`crate::ShardedEngine::drain`] keeps its epoch-barrier meaning across
//! process boundaries.
//!
//! ## Failure
//!
//! Any pump-observed failure (EOF, I/O error, decode error, protocol
//! violation) marks the whole transport dead, records the first cause, and
//! clears the reply tables — dropping the queued reply senders wakes every
//! blocked engine call with [`TransportError::Closed`] instead of wedging
//! the drain spin (which polls [`ShardTransport::healthy`]).

use super::codec::{host_msg_from, wire_msg_bytes, HostMsg, InitHeader, WireMsg, WirePlan};
use super::{PlanUpdate, ShardTransport, SlotState, TransportError, TransportKind};
use crate::core::EngineState;
use crate::sharded::{ReadReplies, ShardMsg, ShardedCore};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use eagr_agg::{Aggregate, WindowSpec, WireHooks};
use eagr_graph::Partition;
use eagr_util::wire::{read_frame, write_frame, Wire};
use eagr_util::FastMap;
use parking_lot::Mutex;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the coordinator waits for a spawned host to connect and
/// complete the handshake before declaring the launch failed.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Locate the `eagr-shard-host` binary: the `EAGR_SHARD_HOST_BIN`
/// environment variable wins; otherwise look next to the current
/// executable, then one directory up (which resolves the binary from test
/// executables living in `target/<profile>/deps/`).
pub fn host_binary_path() -> Result<PathBuf, TransportError> {
    if let Some(p) = std::env::var_os("EAGR_SHARD_HOST_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(TransportError::Io(format!(
            "EAGR_SHARD_HOST_BIN points at {}, which does not exist",
            p.display()
        )));
    }
    let exe = std::env::current_exe().map_err(|e| TransportError::Io(e.to_string()))?;
    let mut candidates = Vec::new();
    if let Some(dir) = exe.parent() {
        candidates.push(dir.join("eagr-shard-host"));
        if let Some(up) = dir.parent() {
            candidates.push(up.join("eagr-shard-host"));
        }
    }
    for c in &candidates {
        if c.is_file() {
            return Ok(c.clone());
        }
    }
    Err(TransportError::Io(format!(
        "eagr-shard-host binary not found (looked at {}); build it with \
         `cargo build -p eagr-shard-host` or set EAGR_SHARD_HOST_BIN",
        candidates
            .iter()
            .map(|c| c.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )))
}

/// Monotonic disambiguator for socket paths within one process.
static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

/// State shared between the engine-facing transport handle and the
/// per-host pump threads.
struct Shared<A: Aggregate> {
    /// First observed fatal error; set once, read by every later call.
    dead: AtomicBool,
    dead_reason: Mutex<Option<TransportError>>,
    /// Set by `stop`/`shutdown` so pumps treat EOF as a clean exit.
    stopping: AtomicBool,
    /// Correlation tokens for request/reply calls (0 is reserved for
    /// fire-and-forget reads).
    next_req: AtomicU64,
    /// In-flight [`ShardMsg::Reads`] reply channels by `req_id`.
    read_replies: Mutex<FastMap<u64, Sender<ReadReplies<A>>>>,
    /// In-flight state-plane reply channels by `req_id`.
    replies: Mutex<FastMap<u64, Sender<HostMsg<A>>>>,
    /// Per-host writer queues (indexed by shard) — the pump relay target.
    outs: Vec<Sender<Vec<u8>>>,
    hooks: WireHooks<A>,
    /// The engine's epoch accounting and per-shard work counters.
    pending: Arc<AtomicU64>,
    cross_out: Arc<Vec<AtomicU64>>,
    local: Arc<Vec<AtomicU64>>,
    reads: Arc<Vec<AtomicU64>>,
}

impl<A: Aggregate> Shared<A> {
    /// Record the first fatal error and wake every blocked caller by
    /// dropping the queued reply senders.
    fn fatal(&self, err: TransportError) {
        if !self.dead.swap(true, Ordering::AcqRel) {
            *self.dead_reason.lock() = Some(err);
        }
        self.read_replies.lock().clear();
        self.replies.lock().clear();
    }

    fn check(&self) -> Result<(), TransportError> {
        if self.dead.load(Ordering::Acquire) {
            Err(self
                .dead_reason
                .lock()
                .clone()
                .unwrap_or(TransportError::Closed {
                    shard: None,
                    detail: "shard host transport is down".to_string(),
                }))
        } else {
            Ok(())
        }
    }
}

/// One connected shard host.
struct Peer {
    child: Mutex<Child>,
    socket_path: PathBuf,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The multi-process transport handle owned by the engine. See the module
/// docs for the thread/ordering model.
pub struct ProcessTransport<A: Aggregate> {
    shared: Arc<Shared<A>>,
    peers: Vec<Peer>,
}

impl<A: Aggregate> ProcessTransport<A> {
    /// Spawn one host process per shard, handshake each one, and start the
    /// pump/writer thread pairs. Fails without leaking processes: already
    /// spawned children are killed if a later shard fails to launch.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        core: &Arc<ShardedCore<A>>,
        partition: &Partition,
        window: WindowSpec,
        pending: Arc<AtomicU64>,
        cross_out: Arc<Vec<AtomicU64>>,
        local: Arc<Vec<AtomicU64>>,
        reads: Arc<Vec<AtomicU64>>,
    ) -> Result<Self, TransportError> {
        let hooks = core
            .aggregate()
            .wire_hooks()
            .ok_or(TransportError::Unsupported(
                "this aggregate provides no wire hooks; the process transport cannot serialize it",
            ))?;
        let shards = partition.shards;
        let bin = host_binary_path()?;
        let plan = WirePlan {
            overlay: core.overlay().clone(),
            decisions: core.decisions(),
            map: partition.of.iter().map(|s| s.0).collect(),
        };
        let plan_payload = plan.to_wire();
        let (outs, out_rxs): (Vec<_>, Vec<_>) = (0..shards).map(|_| unbounded::<Vec<u8>>()).unzip();
        let shared = Arc::new(Shared {
            dead: AtomicBool::new(false),
            dead_reason: Mutex::named(None, "proc_dead_reason"),
            stopping: AtomicBool::new(false),
            next_req: AtomicU64::new(1),
            read_replies: Mutex::named(FastMap::default(), "proc_read_replies"),
            replies: Mutex::named(FastMap::default(), "proc_replies"),
            outs,
            hooks,
            pending,
            cross_out,
            local,
            reads,
        });
        let mut peers: Vec<Peer> = Vec::with_capacity(shards);
        for (shard, out_rx) in out_rxs.into_iter().enumerate() {
            match Self::launch_one(&bin, shard, shards, window, &plan_payload, &shared, out_rx) {
                Ok(peer) => peers.push(peer),
                Err(e) => {
                    // Roll back: reap everything already running.
                    shared.stopping.store(true, Ordering::Release);
                    for p in &peers {
                        let mut child = p.child.lock();
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = std::fs::remove_file(&p.socket_path);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self { shared, peers })
    }

    fn launch_one(
        bin: &PathBuf,
        shard: usize,
        shards: usize,
        window: WindowSpec,
        plan_payload: &[u8],
        shared: &Arc<Shared<A>>,
        out_rx: Receiver<Vec<u8>>,
    ) -> Result<Peer, TransportError> {
        let socket_path = std::env::temp_dir().join(format!(
            "eagr-shard-{}-{}-{}.sock",
            std::process::id(),
            shard,
            SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let mut child = Command::new(bin)
            .arg(&socket_path)
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| TransportError::Io(format!("spawn {}: {e}", bin.display())))?;
        // Poll for the connection so a host that dies on startup turns
        // into an error instead of a hang.
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let stream = loop {
            match listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        let _ = std::fs::remove_file(&socket_path);
                        return Err(TransportError::Closed {
                            shard: Some(shard),
                            detail: format!("shard host exited during launch ({status})"),
                        });
                    }
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = std::fs::remove_file(&socket_path);
                        return Err(TransportError::Io(format!(
                            "shard host {shard} did not connect within {HANDSHAKE_TIMEOUT:?}"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = std::fs::remove_file(&socket_path);
                    return Err(e.into());
                }
            }
        };
        stream.set_nonblocking(false)?;
        let mut handshake = stream.try_clone()?;
        let header = InitHeader {
            shard: shard as u32,
            shards: shards as u32,
            aggregate: shared.hooks.name.to_string(),
            window,
        };
        write_frame(&mut handshake, &header.to_wire())?;
        write_frame(&mut handshake, plan_payload)?;
        handshake.flush()?;
        let ready = read_frame(&mut handshake)?.ok_or_else(|| TransportError::Closed {
            shard: Some(shard),
            detail: "shard host closed the socket before Ready".to_string(),
        })?;
        match host_msg_from::<A>(&ready, &shared.hooks)? {
            HostMsg::Ready => {}
            other => {
                return Err(TransportError::Codec(format!(
                    "expected Ready from shard host {shard}, got {}",
                    other.variant_name()
                )))
            }
        }
        let writer_stream = stream.try_clone()?;
        let writer_shared = Arc::clone(shared);
        let writer = std::thread::Builder::new()
            .name(format!("eagr-host-writer-{shard}"))
            .spawn(move || writer_loop(shard, writer_stream, out_rx, writer_shared))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let pump_shared = Arc::clone(shared);
        let pump = std::thread::Builder::new()
            .name(format!("eagr-host-pump-{shard}"))
            .spawn(move || pump_loop(shard, stream, pump_shared))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(Peer {
            child: Mutex::named(child, "proc_child"),
            socket_path,
            writer: Mutex::named(Some(writer), "proc_writer"),
            pump: Mutex::named(Some(pump), "proc_pump"),
        })
    }

    /// Queue one pre-encoded payload to `shard`'s writer.
    fn enqueue(&self, shard: usize, payload: Vec<u8>) -> Result<(), TransportError> {
        self.shared.check()?;
        self.shared.outs[shard]
            .send(payload)
            .map_err(|_| TransportError::Closed {
                shard: Some(shard),
                detail: "shard host writer stopped".to_string(),
            })
    }

    /// Send a state-plane request built from a fresh `req_id` and block for
    /// its reply.
    fn request(
        &self,
        shard: usize,
        build: impl FnOnce(u64) -> WireMsg<A>,
    ) -> Result<HostMsg<A>, TransportError> {
        let req_id = self.shared.next_req.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded::<HostMsg<A>>(1);
        self.shared.replies.lock().insert(req_id, tx);
        // A peer death between the insert and the send clears the table;
        // re-checking after the insert closes the race where `fatal` ran
        // just before it and would leave this entry stranded.
        if let Err(e) = self.shared.check() {
            self.shared.replies.lock().remove(&req_id);
            return Err(e);
        }
        let payload = wire_msg_bytes(&build(req_id), &self.shared.hooks);
        if let Err(e) = self.enqueue(shard, payload) {
            self.shared.replies.lock().remove(&req_id);
            return Err(e);
        }
        rx.recv().map_err(|_| {
            self.shared.check().err().unwrap_or(TransportError::Closed {
                shard: Some(shard),
                detail: "shard host dropped a reply".to_string(),
            })
        })
    }
}

impl<A: Aggregate> ShardTransport<A> for ProcessTransport<A> {
    fn kind(&self) -> TransportKind {
        TransportKind::Process
    }

    fn shards(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, shard: usize, msg: ShardMsg<A>) -> Result<(), TransportError> {
        let wire = match msg {
            ShardMsg::Writes(group) => WireMsg::Writes(group),
            ShardMsg::Deltas(group) => WireMsg::Deltas(group),
            ShardMsg::Reads { targets, reply } => {
                let targets: Vec<(u64, eagr_graph::NodeId)> = targets
                    .into_iter()
                    .map(|(slot, v)| (slot as u64, v))
                    .collect();
                match reply {
                    Some(tx) => {
                        let req_id = self.shared.next_req.fetch_add(1, Ordering::Relaxed);
                        self.shared.read_replies.lock().insert(req_id, tx);
                        if let Err(e) = self.shared.check() {
                            self.shared.read_replies.lock().remove(&req_id);
                            return Err(e);
                        }
                        let payload = wire_msg_bytes(
                            &WireMsg::Reads {
                                req_id,
                                targets,
                                want_reply: true,
                            },
                            &self.shared.hooks,
                        );
                        return match self.enqueue(shard, payload) {
                            Ok(()) => Ok(()),
                            Err(e) => {
                                self.shared.read_replies.lock().remove(&req_id);
                                Err(e)
                            }
                        };
                    }
                    None => WireMsg::Reads {
                        req_id: 0,
                        targets,
                        want_reply: false,
                    },
                }
            }
            ShardMsg::Expire(ts) => WireMsg::Expire(ts),
            ShardMsg::Stop => WireMsg::Stop,
            ShardMsg::Copy { .. } | ShardMsg::EndCopy { .. } => {
                return Err(TransportError::Unsupported(
                    "two-phase copy messages never cross the socket; process-mode migration is \
                     fenced (fetch_slots/install_slots)",
                ))
            }
            ShardMsg::Adopt(_) => {
                return Err(TransportError::Unsupported(
                    "Adopt never crosses the socket; map_update hands expiration ownership over",
                ))
            }
            ShardMsg::Topo(_) => {
                return Err(TransportError::Unsupported(
                    "Topo swaps shared Arcs; process-mode topology epochs use swap_plan",
                ))
            }
        };
        self.enqueue(shard, wire_msg_bytes(&wire, &self.shared.hooks))
    }

    fn healthy(&self) -> Result<(), TransportError> {
        self.shared.check()
    }

    fn stop(&self) {
        self.shared.stopping.store(true, Ordering::Release);
        for shard in 0..self.peers.len() {
            let payload = wire_msg_bytes::<A>(&WireMsg::Stop, &self.shared.hooks);
            let _ = self.shared.outs[shard].send(payload);
            // Empty payload = writer-quit sentinel (a real payload always
            // carries at least its tag byte).
            let _ = self.shared.outs[shard].send(Vec::new());
        }
    }

    fn shutdown(&self) {
        self.stop();
        for peer in &self.peers {
            if let Some(h) = peer.writer.lock().take() {
                let _ = h.join();
            }
            // The host exits on Stop, closing its socket; the pump sees
            // EOF with `stopping` set and exits cleanly.
            if let Some(h) = peer.pump.lock().take() {
                let _ = h.join();
            }
            let mut child = peer.child.lock();
            let _ = child.wait();
            let _ = std::fs::remove_file(&peer.socket_path);
        }
    }

    fn host_pids(&self) -> Vec<u32> {
        self.peers.iter().map(|p| p.child.lock().id()).collect()
    }

    fn fetch_paos(
        &self,
        shard: usize,
        slots: &[u32],
    ) -> Result<Vec<(u32, A::Partial)>, TransportError> {
        let slots = slots.to_vec();
        match self.request(shard, |req_id| WireMsg::FetchPaos { req_id, slots })? {
            HostMsg::Paos { paos, .. } => Ok(paos),
            other => Err(unexpected("Paos", &other)),
        }
    }

    fn fetch_slots(
        &self,
        shard: usize,
        slots: &[u32],
    ) -> Result<Vec<SlotState<A>>, TransportError> {
        let slots = slots.to_vec();
        match self.request(shard, |req_id| WireMsg::FetchSlots { req_id, slots })? {
            HostMsg::Slots { slots, .. } => Ok(slots),
            other => Err(unexpected("Slots", &other)),
        }
    }

    fn install_slots(&self, shard: usize, slots: Vec<SlotState<A>>) -> Result<(), TransportError> {
        match self.request(shard, |req_id| WireMsg::InstallSlots { req_id, slots })? {
            HostMsg::Ok { .. } => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    fn map_update(&self, pairs: &[(u32, u32)]) -> Result<(), TransportError> {
        for shard in 0..self.peers.len() {
            let pairs = pairs.to_vec();
            match self.request(shard, |req_id| WireMsg::MapSet { req_id, pairs })? {
                HostMsg::Ok { .. } => {}
                other => return Err(unexpected("Ok", &other)),
            }
        }
        Ok(())
    }

    fn fetch_state(&self, shard: usize) -> Result<EngineState<A::Partial>, TransportError> {
        match self.request(shard, |req_id| WireMsg::FetchState { req_id })? {
            HostMsg::State { state, .. } => Ok(state),
            other => Err(unexpected("State", &other)),
        }
    }

    fn swap_plan(&self, shard: usize, plan: &PlanUpdate<A>) -> Result<(), TransportError> {
        let wire_plan = WirePlan {
            overlay: (*plan.overlay).clone(),
            decisions: plan.decisions.clone(),
            map: plan.map.clone(),
        };
        let state = EngineState {
            windows: plan.state.windows.clone(),
            paos: plan.state.paos.clone(),
        };
        match self.request(shard, |req_id| WireMsg::Swap {
            req_id,
            plan: Box::new(wire_plan),
            state: Box::new(state),
        })? {
            HostMsg::Ok { .. } => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    fn observed_counts(&self) -> Result<(Vec<u64>, Vec<u64>), TransportError> {
        let mut pushed: Vec<u64> = Vec::new();
        let mut pulled: Vec<u64> = Vec::new();
        for shard in 0..self.peers.len() {
            match self.request(shard, |req_id| WireMsg::Counts { req_id })? {
                HostMsg::CountsReply {
                    pushed: p,
                    pulled: q,
                    ..
                } => {
                    if pushed.len() < p.len() {
                        pushed.resize(p.len(), 0);
                    }
                    if pulled.len() < q.len() {
                        pulled.resize(q.len(), 0);
                    }
                    for (acc, v) in pushed.iter_mut().zip(&p) {
                        *acc += v;
                    }
                    for (acc, v) in pulled.iter_mut().zip(&q) {
                        *acc += v;
                    }
                }
                other => return Err(unexpected("CountsReply", &other)),
            }
        }
        Ok((pushed, pulled))
    }

    fn decay_observed(&self, factor: f64) -> Result<(), TransportError> {
        for shard in 0..self.peers.len() {
            match self.request(shard, |req_id| WireMsg::Decay { req_id, factor })? {
                HostMsg::Ok { .. } => {}
                other => return Err(unexpected("Ok", &other)),
            }
        }
        Ok(())
    }

    fn compact_shards(&self) -> Result<u64, TransportError> {
        let mut total = 0u64;
        for shard in 0..self.peers.len() {
            match self.request(shard, |req_id| WireMsg::Compact { req_id })? {
                HostMsg::Num { value, .. } => total += value,
                other => return Err(unexpected("Num", &other)),
            }
        }
        Ok(total)
    }

    fn orphaned_slots(&self) -> Result<u64, TransportError> {
        let mut total = 0u64;
        for shard in 0..self.peers.len() {
            match self.request(shard, |req_id| WireMsg::Orphans { req_id })? {
                HostMsg::Num { value, .. } => total += value,
                other => return Err(unexpected("Num", &other)),
            }
        }
        Ok(total)
    }
}

impl<A: Aggregate> Drop for ProcessTransport<A> {
    /// Last-resort cleanup for an engine dropped without `shutdown`: ask
    /// the hosts to stop, then reap them so no orphan processes or socket
    /// files outlive the coordinator.
    fn drop(&mut self) {
        self.stop();
        for peer in &self.peers {
            let mut child = peer.child.lock();
            if child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
                // Give the Stop frame a moment; kill if the host ignores it.
                std::thread::sleep(Duration::from_millis(50));
                if child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
                    let _ = child.kill();
                }
            }
            let _ = child.wait();
            let _ = std::fs::remove_file(&peer.socket_path);
        }
    }
}

fn unexpected<A: Aggregate>(wanted: &str, got: &HostMsg<A>) -> TransportError {
    TransportError::Codec(format!(
        "expected {wanted} reply, got {}",
        got.variant_name()
    ))
}

/// Drain the writer queue onto the socket. Exits on the empty-payload
/// sentinel, queue disconnect, or a write error (reported as fatal).
fn writer_loop<A: Aggregate>(
    shard: usize,
    mut stream: UnixStream,
    rx: Receiver<Vec<u8>>,
    shared: Arc<Shared<A>>,
) {
    while let Ok(payload) = rx.recv() {
        if payload.is_empty() {
            break;
        }
        if let Err(e) = write_frame(&mut stream, &payload) {
            if !shared.stopping.load(Ordering::Acquire) {
                shared.fatal(TransportError::Closed {
                    shard: Some(shard),
                    detail: format!("socket write failed: {e}"),
                });
            }
            break;
        }
    }
    let _ = stream.flush();
}

/// Read and dispatch host frames until EOF or a fatal error.
fn pump_loop<A: Aggregate>(shard: usize, mut stream: UnixStream, shared: Arc<Shared<A>>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => {
                if !shared.stopping.load(Ordering::Acquire) {
                    shared.fatal(TransportError::Closed {
                        shard: Some(shard),
                        detail: "shard host closed its socket".to_string(),
                    });
                }
                return;
            }
            Err(e) => {
                if !shared.stopping.load(Ordering::Acquire) {
                    shared.fatal(TransportError::Closed {
                        shard: Some(shard),
                        detail: format!("socket read failed: {e}"),
                    });
                }
                return;
            }
        };
        let msg = match host_msg_from::<A>(&payload, &shared.hooks) {
            Ok(m) => m,
            Err(e) => {
                shared.fatal(TransportError::Codec(format!(
                    "bad frame from shard host {shard}: {e}"
                )));
                return;
            }
        };
        match msg {
            HostMsg::Fwd { dest, deltas } => {
                let dest = dest as usize;
                if dest >= shared.outs.len() {
                    shared.fatal(TransportError::Codec(format!(
                        "shard host {shard} forwarded deltas to unknown shard {dest}"
                    )));
                    return;
                }
                // Count the relayed batch before it becomes visible to the
                // destination (the FIFO ordering contract: this runs
                // before the Applied for the message that produced it).
                shared.pending.fetch_add(1, Ordering::AcqRel);
                let payload = wire_msg_bytes(&WireMsg::<A>::Deltas(deltas), &shared.hooks);
                if shared.outs[dest].send(payload).is_err() {
                    shared.pending.fetch_sub(1, Ordering::AcqRel);
                    if !shared.stopping.load(Ordering::Acquire) {
                        shared.fatal(TransportError::Closed {
                            shard: Some(dest),
                            detail: "relay destination writer stopped".to_string(),
                        });
                        return;
                    }
                }
            }
            HostMsg::Applied {
                local,
                cross,
                reads,
            } => {
                shared.local[shard].fetch_add(local, Ordering::Relaxed);
                shared.cross_out[shard].fetch_add(cross, Ordering::AcqRel);
                shared.reads[shard].fetch_add(reads, Ordering::AcqRel);
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
            HostMsg::ReadReplies { req_id, answers } => {
                let tx = shared.read_replies.lock().remove(&req_id);
                if let Some(tx) = tx {
                    let answers: ReadReplies<A> = answers
                        .into_iter()
                        .map(|(pos, ans)| (pos as usize, ans))
                        .collect();
                    // A dropped receiver means the requesting call gave up.
                    // lint: allow(channel-discipline, rendezvous reply to a blocked engine caller — the pump never holds an inbox while waiting)
                    let _ = tx.send(answers);
                }
            }
            HostMsg::Ready => {
                shared.fatal(TransportError::Codec(format!(
                    "unexpected Ready from shard host {shard} after handshake"
                )));
                return;
            }
            reply => {
                let Some(req_id) = reply.req_id() else {
                    shared.fatal(TransportError::Codec(format!(
                        "uncorrelated reply from shard host {shard}: {}",
                        reply.variant_name()
                    )));
                    return;
                };
                let tx = shared.replies.lock().remove(&req_id);
                if let Some(tx) = tx {
                    // lint: allow(channel-discipline, rendezvous reply to a blocked engine caller — the pump never holds an inbox while waiting)
                    let _ = tx.send(reply);
                }
            }
        }
    }
}
