//! The length-prefixed wire protocol spoken between the sharded
//! coordinator and `eagr-shard-host` processes.
//!
//! Every frame is a `u32` little-endian length prefix followed by that many
//! payload bytes ([`eagr_util::wire::write_frame`] /
//! [`eagr_util::wire::read_frame`]), and every payload starts with a one-byte
//! message tag. Aggregate-typed values (`A::Partial`, `A::Output`) are
//! encoded through the aggregate's [`WireHooks`] function table, so the
//! protocol is generic over any aggregate that implements
//! [`eagr_agg::Aggregate::wire_hooks`].
//!
//! [`WireMsg`] is the coordinator→host direction: it is the byte-stream
//! image of [`crate::sharded::ShardMsg`] (reply channels become `req_id`
//! correlation tokens) plus the state-plane requests that have no
//! in-process message equivalent (slot fetch/install, counter collection,
//! plan swaps). [`HostMsg`] is the host→coordinator direction: forwarded
//! cross-shard deltas, per-message `Applied` acknowledgements carrying
//! counter deltas, and `req_id`-correlated replies.
//!
//! ## Ordering contract
//!
//! A host processes frames strictly in order and, for every *counted*
//! message (`Writes`, `Deltas`, `Reads`, `Expire`), writes any
//! [`HostMsg::Fwd`] frames **before** the closing [`HostMsg::Applied`].
//! Because each socket is FIFO, the coordinator's pump re-increments the
//! engine's `pending` counter for every forwarded batch before it sees the
//! decrement for the message that produced it — which is exactly the
//! invariant the in-process workers maintain with their outbox flush, and
//! what makes `pending == 0` mean "quiescent" in both transports.

use crate::core::EngineState;
use eagr_agg::{Aggregate, DeltaOp, WindowBuffer, WindowSpec, WireHooks};
use eagr_flow::Decisions;
use eagr_graph::NodeId;
use eagr_overlay::{Overlay, OverlayId};
use eagr_util::wire::{Wire, WireError};

/// A shard host's launch / swap plan: the overlay, the push/pull
/// decisions, and the full node→shard map.
#[derive(Clone, Debug)]
pub struct WirePlan {
    /// The aggregation overlay shared by every shard.
    pub overlay: Overlay,
    /// Push/pull decision per overlay id.
    pub decisions: Decisions,
    /// Node→shard map (`map[slot] == owning shard`).
    pub map: Vec<u32>,
}

impl Wire for WirePlan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.overlay.encode(out);
        self.decisions.encode(out);
        self.map.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(WirePlan {
            overlay: Overlay::decode(buf)?,
            decisions: Decisions::decode(buf)?,
            map: Vec::<u32>::decode(buf)?,
        })
    }
}

/// The first frame the coordinator sends on a fresh host socket. It is
/// deliberately aggregate-independent: the host reads it, dispatches on
/// [`InitHeader::aggregate`] to a monomorphic worker loop, and only then
/// decodes aggregate-typed frames.
#[derive(Clone, Debug, PartialEq)]
pub struct InitHeader {
    /// This host's shard index.
    pub shard: u32,
    /// Total shard count.
    pub shards: u32,
    /// Aggregate name ([`WireHooks::name`]) selecting the host's
    /// monomorphic loop.
    pub aggregate: String,
    /// Window semantics, fixed for the engine's lifetime.
    pub window: WindowSpec,
}

impl Wire for InitHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.shards.encode(out);
        self.aggregate.encode(out);
        self.window.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(InitHeader {
            shard: u32::decode(buf)?,
            shards: u32::decode(buf)?,
            aggregate: String::decode(buf)?,
            window: WindowSpec::decode(buf)?,
        })
    }
}

/// One migratable slot: `(overlay slot, PAO partial, window buffer if the
/// slot is a writer)`. Mirrors [`crate::transport::SlotState`].
pub type WireSlot<A> = (u32, <A as Aggregate>::Partial, Option<WindowBuffer>);

/// Coordinator→host frames.
///
/// `Writes`/`Deltas`/`Reads`/`Expire` are the data plane (each is
/// acknowledged by one [`HostMsg::Applied`]); the remaining variants are
/// synchronous state-plane requests correlated by `req_id`.
pub enum WireMsg<A: Aggregate> {
    /// Raw writer updates `(writer slot, value, timestamp)` owned by this
    /// shard.
    Writes(Vec<(OverlayId, i64, u64)>),
    /// Cross-shard deltas relayed from another shard.
    Deltas(Vec<(OverlayId, DeltaOp)>),
    /// Evaluate reads for the listed `(batch position, node)` targets.
    /// `want_reply` selects between a [`HostMsg::ReadReplies`] answer and
    /// fire-and-forget evaluation (read-servicing throughput accounting).
    Reads {
        /// Correlation token (0 when `want_reply` is false).
        req_id: u64,
        /// `(position in the caller's batch, node to read)`.
        targets: Vec<(u64, NodeId)>,
        /// Whether the host must send the answers back.
        want_reply: bool,
    },
    /// Expire window entries older than the timestamp on every writer this
    /// shard owns.
    Expire(u64),
    /// Fetch PAO partial clones for the listed slots.
    FetchPaos {
        /// Correlation token.
        req_id: u64,
        /// Overlay slot indices to fetch.
        slots: Vec<u32>,
    },
    /// Fetch full migratable state (PAO + window) for the listed slots.
    FetchSlots {
        /// Correlation token.
        req_id: u64,
        /// Overlay slot indices to fetch.
        slots: Vec<u32>,
    },
    /// Install migrated slots into this shard's slab.
    InstallSlots {
        /// Correlation token.
        req_id: u64,
        /// The slots to adopt.
        slots: Vec<WireSlot<A>>,
    },
    /// Point updates to the node→shard map (`(slot, new shard)`).
    MapSet {
        /// Correlation token.
        req_id: u64,
        /// Map updates.
        pairs: Vec<(u32, u32)>,
    },
    /// Export this shard's owned engine state (topology-epoch resync).
    FetchState {
        /// Correlation token.
        req_id: u64,
    },
    /// Report observed push/pull counters.
    Counts {
        /// Correlation token.
        req_id: u64,
    },
    /// Decay observed counters by `factor`.
    Decay {
        /// Correlation token.
        req_id: u64,
        /// Multiplicative decay factor.
        factor: f64,
    },
    /// Compact this shard's slabs.
    Compact {
        /// Correlation token.
        req_id: u64,
    },
    /// Count orphaned slab slots.
    Orphans {
        /// Correlation token.
        req_id: u64,
    },
    /// Swap in a new topology plan plus the state slice this shard owns
    /// under it.
    Swap {
        /// Correlation token.
        req_id: u64,
        /// The new overlay/decisions/map. Boxed (with `state`) so the rare
        /// topology swap doesn't inflate every data-plane message.
        plan: Box<WirePlan>,
        /// Carried state for owned slots (others `None`).
        state: Box<EngineState<A::Partial>>,
    },
    /// Exit the worker loop.
    Stop,
}

/// Host→coordinator frames.
pub enum HostMsg<A: Aggregate> {
    /// Handshake acknowledgement: the plan decoded and the engine core is
    /// built.
    Ready,
    /// Cross-shard deltas for the coordinator to relay to `dest`. Always
    /// written *before* the [`HostMsg::Applied`] of the message that
    /// produced them.
    Fwd {
        /// Destination shard.
        dest: u32,
        /// The signed delta batch.
        deltas: Vec<(OverlayId, DeltaOp)>,
    },
    /// One counted message finished; carries this message's counter
    /// deltas so the coordinator's per-shard stats stay exact.
    Applied {
        /// Local PAO applications performed.
        local: u64,
        /// Cross-shard deltas emitted (batches' element total).
        cross: u64,
        /// Reads served.
        reads: u64,
    },
    /// Answers for a [`WireMsg::Reads`] request.
    ReadReplies {
        /// Correlation token.
        req_id: u64,
        /// `(batch position, answer)` pairs.
        answers: Vec<(u64, Option<A::Output>)>,
    },
    /// Reply to [`WireMsg::FetchPaos`].
    Paos {
        /// Correlation token.
        req_id: u64,
        /// `(slot, partial)` clones.
        paos: Vec<(u32, A::Partial)>,
    },
    /// Reply to [`WireMsg::FetchSlots`].
    Slots {
        /// Correlation token.
        req_id: u64,
        /// Full slot state.
        slots: Vec<WireSlot<A>>,
    },
    /// Reply to [`WireMsg::FetchState`].
    State {
        /// Correlation token.
        req_id: u64,
        /// Owned-slot engine state.
        state: EngineState<A::Partial>,
    },
    /// Reply to [`WireMsg::Counts`].
    CountsReply {
        /// Correlation token.
        req_id: u64,
        /// Observed push counters (full overlay length).
        pushed: Vec<u64>,
        /// Observed pull counters (full overlay length).
        pulled: Vec<u64>,
    },
    /// Reply to [`WireMsg::Compact`] / [`WireMsg::Orphans`]: a single
    /// numeric result.
    Num {
        /// Correlation token.
        req_id: u64,
        /// Slots reclaimed / orphaned-slot count.
        value: u64,
    },
    /// Generic success acknowledgement (install, map-set, decay, swap).
    Ok {
        /// Correlation token.
        req_id: u64,
    },
}

fn encode_state<A: Aggregate>(
    state: &EngineState<A::Partial>,
    hooks: &WireHooks<A>,
    out: &mut Vec<u8>,
) {
    state.windows.encode(out);
    state.paos.len().encode(out);
    for pao in &state.paos {
        match pao {
            Some(p) => {
                out.push(1);
                (hooks.enc_partial)(p, out);
            }
            None => out.push(0),
        }
    }
}

fn decode_state<A: Aggregate>(
    buf: &mut &[u8],
    hooks: &WireHooks<A>,
) -> Result<EngineState<A::Partial>, WireError> {
    let windows = Vec::<Option<WindowBuffer>>::decode(buf)?;
    let n = usize::decode(buf)?;
    let mut paos = Vec::with_capacity(n.min(buf.len()));
    for _ in 0..n {
        paos.push(match u8::decode(buf)? {
            0 => None,
            1 => Some((hooks.dec_partial)(buf)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "EngineState pao option",
                    tag,
                })
            }
        });
    }
    Ok(EngineState { windows, paos })
}

fn encode_wire_slots<A: Aggregate>(slots: &[WireSlot<A>], hooks: &WireHooks<A>, out: &mut Vec<u8>) {
    slots.len().encode(out);
    for (slot, pao, window) in slots {
        slot.encode(out);
        (hooks.enc_partial)(pao, out);
        window.encode(out);
    }
}

fn decode_wire_slots<A: Aggregate>(
    buf: &mut &[u8],
    hooks: &WireHooks<A>,
) -> Result<Vec<WireSlot<A>>, WireError> {
    let n = usize::decode(buf)?;
    let mut slots = Vec::with_capacity(n.min(buf.len()));
    for _ in 0..n {
        slots.push((
            u32::decode(buf)?,
            (hooks.dec_partial)(buf)?,
            Option::<WindowBuffer>::decode(buf)?,
        ));
    }
    Ok(slots)
}

impl<A: Aggregate> WireMsg<A> {
    /// Encode into `out` (appends; does not include the frame length
    /// prefix).
    pub fn encode(&self, hooks: &WireHooks<A>, out: &mut Vec<u8>) {
        match self {
            WireMsg::Writes(group) => {
                out.push(0);
                group.encode(out);
            }
            WireMsg::Deltas(group) => {
                out.push(1);
                group.encode(out);
            }
            WireMsg::Reads {
                req_id,
                targets,
                want_reply,
            } => {
                out.push(2);
                req_id.encode(out);
                targets.encode(out);
                want_reply.encode(out);
            }
            WireMsg::Expire(ts) => {
                out.push(3);
                ts.encode(out);
            }
            WireMsg::FetchPaos { req_id, slots } => {
                out.push(4);
                req_id.encode(out);
                slots.encode(out);
            }
            WireMsg::FetchSlots { req_id, slots } => {
                out.push(5);
                req_id.encode(out);
                slots.encode(out);
            }
            WireMsg::InstallSlots { req_id, slots } => {
                out.push(6);
                req_id.encode(out);
                encode_wire_slots(slots, hooks, out);
            }
            WireMsg::MapSet { req_id, pairs } => {
                out.push(7);
                req_id.encode(out);
                pairs.encode(out);
            }
            WireMsg::FetchState { req_id } => {
                out.push(8);
                req_id.encode(out);
            }
            WireMsg::Counts { req_id } => {
                out.push(9);
                req_id.encode(out);
            }
            WireMsg::Decay { req_id, factor } => {
                out.push(10);
                req_id.encode(out);
                factor.encode(out);
            }
            WireMsg::Compact { req_id } => {
                out.push(11);
                req_id.encode(out);
            }
            WireMsg::Orphans { req_id } => {
                out.push(12);
                req_id.encode(out);
            }
            WireMsg::Swap {
                req_id,
                plan,
                state,
            } => {
                out.push(13);
                req_id.encode(out);
                plan.encode(out);
                encode_state(state, hooks, out);
            }
            WireMsg::Stop => out.push(14),
        }
    }

    /// Decode one message from `buf`, consuming it fully.
    pub fn decode(buf: &mut &[u8], hooks: &WireHooks<A>) -> Result<Self, WireError> {
        let msg = match u8::decode(buf)? {
            0 => WireMsg::Writes(Wire::decode(buf)?),
            1 => WireMsg::Deltas(Wire::decode(buf)?),
            2 => WireMsg::Reads {
                req_id: u64::decode(buf)?,
                targets: Wire::decode(buf)?,
                want_reply: bool::decode(buf)?,
            },
            3 => WireMsg::Expire(u64::decode(buf)?),
            4 => WireMsg::FetchPaos {
                req_id: u64::decode(buf)?,
                slots: Wire::decode(buf)?,
            },
            5 => WireMsg::FetchSlots {
                req_id: u64::decode(buf)?,
                slots: Wire::decode(buf)?,
            },
            6 => WireMsg::InstallSlots {
                req_id: u64::decode(buf)?,
                slots: decode_wire_slots(buf, hooks)?,
            },
            7 => WireMsg::MapSet {
                req_id: u64::decode(buf)?,
                pairs: Wire::decode(buf)?,
            },
            8 => WireMsg::FetchState {
                req_id: u64::decode(buf)?,
            },
            9 => WireMsg::Counts {
                req_id: u64::decode(buf)?,
            },
            10 => WireMsg::Decay {
                req_id: u64::decode(buf)?,
                factor: f64::decode(buf)?,
            },
            11 => WireMsg::Compact {
                req_id: u64::decode(buf)?,
            },
            12 => WireMsg::Orphans {
                req_id: u64::decode(buf)?,
            },
            13 => WireMsg::Swap {
                req_id: u64::decode(buf)?,
                plan: Box::new(WirePlan::decode(buf)?),
                state: Box::new(decode_state(buf, hooks)?),
            },
            14 => WireMsg::Stop,
            tag => {
                return Err(WireError::BadTag {
                    what: "WireMsg",
                    tag,
                })
            }
        };
        Ok(msg)
    }
}

impl<A: Aggregate> HostMsg<A> {
    /// Encode into `out` (appends; does not include the frame length
    /// prefix).
    pub fn encode(&self, hooks: &WireHooks<A>, out: &mut Vec<u8>) {
        match self {
            HostMsg::Ready => out.push(0),
            HostMsg::Fwd { dest, deltas } => {
                out.push(1);
                dest.encode(out);
                deltas.encode(out);
            }
            HostMsg::Applied {
                local,
                cross,
                reads,
            } => {
                out.push(2);
                local.encode(out);
                cross.encode(out);
                reads.encode(out);
            }
            HostMsg::ReadReplies { req_id, answers } => {
                out.push(3);
                req_id.encode(out);
                answers.len().encode(out);
                for (pos, ans) in answers {
                    pos.encode(out);
                    match ans {
                        Some(v) => {
                            out.push(1);
                            (hooks.enc_output)(v, out);
                        }
                        None => out.push(0),
                    }
                }
            }
            HostMsg::Paos { req_id, paos } => {
                out.push(4);
                req_id.encode(out);
                paos.len().encode(out);
                for (slot, pao) in paos {
                    slot.encode(out);
                    (hooks.enc_partial)(pao, out);
                }
            }
            HostMsg::Slots { req_id, slots } => {
                out.push(5);
                req_id.encode(out);
                encode_wire_slots(slots, hooks, out);
            }
            HostMsg::State { req_id, state } => {
                out.push(6);
                req_id.encode(out);
                encode_state(state, hooks, out);
            }
            HostMsg::CountsReply {
                req_id,
                pushed,
                pulled,
            } => {
                out.push(7);
                req_id.encode(out);
                pushed.encode(out);
                pulled.encode(out);
            }
            HostMsg::Num { req_id, value } => {
                out.push(8);
                req_id.encode(out);
                value.encode(out);
            }
            HostMsg::Ok { req_id } => {
                out.push(9);
                req_id.encode(out);
            }
        }
    }

    /// Decode one message from `buf`, consuming it fully.
    pub fn decode(buf: &mut &[u8], hooks: &WireHooks<A>) -> Result<Self, WireError> {
        let msg = match u8::decode(buf)? {
            0 => HostMsg::Ready,
            1 => HostMsg::Fwd {
                dest: u32::decode(buf)?,
                deltas: Wire::decode(buf)?,
            },
            2 => HostMsg::Applied {
                local: u64::decode(buf)?,
                cross: u64::decode(buf)?,
                reads: u64::decode(buf)?,
            },
            3 => {
                let req_id = u64::decode(buf)?;
                let n = usize::decode(buf)?;
                let mut answers = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    let pos = u64::decode(buf)?;
                    let ans = match u8::decode(buf)? {
                        0 => None,
                        1 => Some((hooks.dec_output)(buf)?),
                        tag => {
                            return Err(WireError::BadTag {
                                what: "ReadReplies option",
                                tag,
                            })
                        }
                    };
                    answers.push((pos, ans));
                }
                HostMsg::ReadReplies { req_id, answers }
            }
            4 => {
                let req_id = u64::decode(buf)?;
                let n = usize::decode(buf)?;
                let mut paos = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    paos.push((u32::decode(buf)?, (hooks.dec_partial)(buf)?));
                }
                HostMsg::Paos { req_id, paos }
            }
            5 => HostMsg::Slots {
                req_id: u64::decode(buf)?,
                slots: decode_wire_slots(buf, hooks)?,
            },
            6 => HostMsg::State {
                req_id: u64::decode(buf)?,
                state: decode_state(buf, hooks)?,
            },
            7 => HostMsg::CountsReply {
                req_id: u64::decode(buf)?,
                pushed: Wire::decode(buf)?,
                pulled: Wire::decode(buf)?,
            },
            8 => HostMsg::Num {
                req_id: u64::decode(buf)?,
                value: u64::decode(buf)?,
            },
            9 => HostMsg::Ok {
                req_id: u64::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "HostMsg",
                    tag,
                })
            }
        };
        Ok(msg)
    }

    /// The `req_id` correlation token, when this message is a reply.
    pub fn req_id(&self) -> Option<u64> {
        match self {
            HostMsg::ReadReplies { req_id, .. }
            | HostMsg::Paos { req_id, .. }
            | HostMsg::Slots { req_id, .. }
            | HostMsg::State { req_id, .. }
            | HostMsg::CountsReply { req_id, .. }
            | HostMsg::Num { req_id, .. }
            | HostMsg::Ok { req_id } => Some(*req_id),
            _ => None,
        }
    }

    /// The variant name, for protocol-violation diagnostics (the payload
    /// types carry no `Debug` bound).
    pub fn variant_name(&self) -> &'static str {
        match self {
            HostMsg::Ready => "Ready",
            HostMsg::Fwd { .. } => "Fwd",
            HostMsg::Applied { .. } => "Applied",
            HostMsg::ReadReplies { .. } => "ReadReplies",
            HostMsg::Paos { .. } => "Paos",
            HostMsg::Slots { .. } => "Slots",
            HostMsg::State { .. } => "State",
            HostMsg::CountsReply { .. } => "CountsReply",
            HostMsg::Num { .. } => "Num",
            HostMsg::Ok { .. } => "Ok",
        }
    }
}

/// Encode `msg` to a fresh payload buffer.
pub fn wire_msg_bytes<A: Aggregate>(msg: &WireMsg<A>, hooks: &WireHooks<A>) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(hooks, &mut out);
    out
}

/// Encode `msg` to a fresh payload buffer.
pub fn host_msg_bytes<A: Aggregate>(msg: &HostMsg<A>, hooks: &WireHooks<A>) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(hooks, &mut out);
    out
}

/// Decode a full payload buffer as a [`WireMsg`], rejecting trailing bytes.
pub fn wire_msg_from<A: Aggregate>(
    payload: &[u8],
    hooks: &WireHooks<A>,
) -> Result<WireMsg<A>, WireError> {
    let mut buf = payload;
    let msg = WireMsg::decode(&mut buf, hooks)?;
    if buf.is_empty() {
        Ok(msg)
    } else {
        Err(WireError::TrailingBytes(buf.len()))
    }
}

/// Decode a full payload buffer as a [`HostMsg`], rejecting trailing bytes.
pub fn host_msg_from<A: Aggregate>(
    payload: &[u8],
    hooks: &WireHooks<A>,
) -> Result<HostMsg<A>, WireError> {
    let mut buf = payload;
    let msg = HostMsg::decode(&mut buf, hooks)?;
    if buf.is_empty() {
        Ok(msg)
    } else {
        Err(WireError::TrailingBytes(buf.len()))
    }
}
