//! PAO storage backends for the execution core.
//!
//! [`EngineCore`](crate::EngineCore) is generic over how partial aggregate
//! objects are stored and synchronized, behind the [`PaoStore`] trait:
//!
//! * [`LockedStore`] — one `RwLock` per PAO, the paper's "explicit
//!   synchronization" choice. Backs the single-threaded
//!   [`Engine`](crate::Engine) and the two-pool
//!   [`ParallelEngine`](crate::ParallelEngine), whose write pool lets any
//!   worker touch any PAO.
//! * [`ShardedStore`] — PAOs partitioned into shard slabs, each behind one
//!   `RwLock`. The [`ShardedEngine`](crate::ShardedEngine) worker that owns
//!   a shard locks its slab **once per batch** ([`ShardedStore::lock_shard`])
//!   and then mutates PAOs with plain indexed access — no per-PAO locking on
//!   the hot path. Concurrent readers take the slab read lock through the
//!   same [`PaoStore`] interface.

use eagr_graph::{Partition, ShardId};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicU64, Ordering};

/// Storage of one partial aggregate object per overlay node.
///
/// Implementations provide closure-scoped exclusive and shared access by
/// node index; how much state one lock covers (a single PAO, a whole shard)
/// is the implementation's choice.
pub trait PaoStore<P>: Send + Sync {
    /// Number of slots.
    fn len(&self) -> usize;

    /// Whether the store has zero slots.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` with exclusive access to slot `idx`.
    fn with_mut<R>(&self, idx: usize, f: impl FnOnce(&mut P) -> R) -> R;

    /// Run `f` with shared access to slot `idx`.
    fn with_read<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R;
}

/// Read-only PAO resolution, decoupled from [`PaoStore`]'s locking so read
/// evaluation can amortize lock acquisition: [`StoreReader`] reads through
/// a store's own locks, while a [`ShardSnapshot`] resolves the locked
/// shard's slots with plain indexed access and only touches peer locks for
/// foreign nodes. [`crate::EngineCore`]'s `read_via` / pull-evaluation
/// entry points are generic over this trait.
pub trait PaoReader<P> {
    /// Run `f` with shared access to the PAO at slot `idx`.
    fn with_pao<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R;
}

/// [`PaoReader`] adapter over any [`PaoStore`]: every access goes through
/// the store's own per-slot (or per-slab) read locks.
pub struct StoreReader<'a, S>(pub &'a S);

impl<P, S: PaoStore<P>> PaoReader<P> for StoreReader<'_, S> {
    #[inline]
    fn with_pao<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R {
        self.0.with_read(idx, f)
    }
}

/// One `RwLock` per PAO (the original execution-core layout).
pub struct LockedStore<P> {
    slots: Vec<RwLock<P>>,
}

impl<P: Send + Sync> LockedStore<P> {
    /// A store of `n` slots, each initialized by `init`.
    pub fn new(n: usize, mut init: impl FnMut() -> P) -> Self {
        Self {
            slots: (0..n).map(|_| RwLock::new(init())).collect(),
        }
    }
}

impl<P: Send + Sync> PaoStore<P> for LockedStore<P> {
    fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn with_mut<R>(&self, idx: usize, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.slots[idx].write())
    }

    #[inline]
    fn with_read<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R {
        f(&self.slots[idx].read())
    }
}

/// Pack a `(shard, offset)` slot location into one atomic word so readers
/// can resolve it with a single load while migration republishes it.
#[inline]
fn encode_loc(shard: u32, off: u32) -> u64 {
    ((shard as u64) << 32) | off as u64
}

/// Sentinel shard marking a retired slot ([`ShardedStore::retire_slot`]):
/// the node left the overlay, so no slab holds state for it and any access
/// through the store is a bug (retired overlay nodes are unreachable — the
/// overlay's writer/reader lookups return `None` and retirement removed
/// every edge that could cascade into them).
const TOMBSTONE_SHARD: u32 = u32::MAX;

/// Inverse of [`encode_loc`].
#[inline]
fn decode_loc(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

/// Shard-partitioned PAO slabs: slot `idx` lives at `slab[shard_of(idx)]
/// [offset(idx)]`, and each slab is guarded by a single `RwLock`.
///
/// Slot locations are *migratable*: [`relocate`](Self::relocate) hands a
/// node's PAO to another slab and atomically republishes its location, the
/// storage half of live shard rebalancing. Each location is one atomic
/// word (`shard << 32 | offset`), so concurrent readers racing a migration
/// resolve either the old slot (which keeps the pre-handoff value — the
/// handoff *copies* rather than drains, so there is no window where a
/// reader can observe an emptied PAO) or the new slot with the same value.
pub struct ShardedStore<P> {
    /// Global index → packed (shard, offset-within-slab). See
    /// [`encode_loc`].
    loc: Vec<AtomicU64>,
    slabs: Vec<RwLock<Vec<P>>>,
    /// Slots abandoned by [`relocate`](Self::relocate) — kept, not
    /// reclaimed, so memory grows by one PAO per migration until a
    /// compaction pass exists (ROADMAP follow-up). Exposed via
    /// [`orphaned_slots`](Self::orphaned_slots) so long-lived engines
    /// under an automatic rebalance policy can watch the accumulation.
    orphans: AtomicU64,
}

impl<P: Send + Sync> ShardedStore<P> {
    /// Build shard slabs for the given node partition, initializing every
    /// slot with `init`.
    pub fn new(partition: &Partition, mut init: impl FnMut() -> P) -> Self {
        let mut sizes = vec![0u32; partition.shards];
        let loc: Vec<AtomicU64> = partition
            .of
            .iter()
            .map(|s| {
                let off = sizes[s.idx()];
                sizes[s.idx()] += 1;
                AtomicU64::new(encode_loc(s.0, off))
            })
            .collect();
        let slabs = sizes
            .iter()
            .map(|&sz| RwLock::named((0..sz).map(|_| init()).collect(), "slab"))
            .collect();
        Self {
            loc,
            slabs,
            orphans: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slabs.len()
    }

    /// Current packed location of global slot `idx`.
    #[inline]
    fn loc_of(&self, idx: usize) -> (u32, u32) {
        decode_loc(self.loc[idx].load(Ordering::Acquire))
    }

    /// Shard owning global slot `idx`.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        ShardId(self.loc_of(idx).0)
    }

    /// Migrate global slot `idx` into `dest`'s slab, installing `value` as
    /// its PAO (the handed-off state extracted by the old owner) at a
    /// fresh offset, then republish the location.
    ///
    /// Publication order is the correctness argument: the value is in
    /// place under the destination slab's write lock *before* the location
    /// flips (`Release`), so any reader that observes the new location
    /// (`Acquire`) finds the migrated state. Readers still holding the old
    /// location read the old slot, which retains the pre-handoff value —
    /// the slot becomes an orphan rather than being cleared, trading one
    /// PAO of memory per migration for a tear-free handoff under
    /// concurrent relaxed reads. Orphans persist until the next
    /// [`compact`](Self::compact) pass repacks the slabs; readers that
    /// loaded a stale location revalidate it under the slab lock (see
    /// [`PaoStore::with_read`] for this type), so reuse is safe.
    pub fn relocate(&self, idx: usize, dest: ShardId, value: P) {
        let mut slab = self.slabs[dest.idx()].write();
        let off = slab.len() as u32;
        slab.push(value);
        drop(slab);
        self.loc[idx].store(encode_loc(dest.0, off), Ordering::Release);
        self.orphans.fetch_add(1, Ordering::Relaxed);
    }

    /// Slots orphaned by migrations since the last compaction (one per
    /// [`relocate`](Self::relocate) call): the store's memory overhead
    /// beyond one PAO per node, in PAOs. [`compact`](Self::compact)
    /// returns this to zero.
    pub fn orphaned_slots(&self) -> u64 {
        self.orphans.load(Ordering::Relaxed)
    }

    /// Retire global slot `idx`: its overlay node left the graph, so its
    /// slab slot is abandoned into the same orphan accounting migrations
    /// use and reclaimed by the next [`compact`](Self::compact) pass. The
    /// location is replaced with a tombstone; any subsequent access through
    /// the store panics (retired overlay nodes are unreachable, so an
    /// access is a routing bug, not a race). Idempotent.
    pub fn retire_slot(&self, idx: usize) {
        let packed = self.loc[idx].swap(encode_loc(TOMBSTONE_SHARD, 0), Ordering::AcqRel);
        if decode_loc(packed).0 != TOMBSTONE_SHARD {
            self.orphans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether global slot `idx` has been retired
    /// ([`retire_slot`](Self::retire_slot)).
    pub fn is_retired_slot(&self, idx: usize) -> bool {
        self.loc_of(idx).0 == TOMBSTONE_SHARD
    }

    /// Repack every slab in place, dropping orphaned slots and
    /// republishing the surviving slots' locations. Returns the number of
    /// slots reclaimed.
    ///
    /// Each slab is compacted under its own write lock: live slots are
    /// swapped down over orphans, their locations re-stored *before* the
    /// lock is released, and the tail truncated. A concurrent relaxed
    /// reader that loaded a pre-compaction location blocks on that slab
    /// lock and then revalidates the location (the retry loop in this
    /// type's [`PaoStore::with_read`]/[`PaoStore::with_mut`]), so it can
    /// never index a moved or truncated slot. Slots are only ever
    /// reassigned under the slab write lock, which is what makes the
    /// revalidation sound.
    ///
    /// Callers must ensure no [`ShardGuard`] or [`ShardSnapshot`] is held
    /// across the call (the sharded engine runs compaction under its
    /// exclusive epoch gate with all workers drained), otherwise this
    /// deadlocks on the slab lock.
    pub fn compact(&self) -> u64 {
        // One pass over the location table groups live slots by shard;
        // tombstoned slots ([`retire_slot`](Self::retire_slot)) point at no
        // slab, so the slab slots they abandoned simply never make the live
        // list and get swept with the migration orphans below.
        let mut live: Vec<Vec<(u32, usize)>> = vec![Vec::new(); self.slabs.len()];
        for (idx, loc) in self.loc.iter().enumerate() {
            let (shard, off) = decode_loc(loc.load(Ordering::Acquire));
            if shard == TOMBSTONE_SHARD {
                continue;
            }
            live[shard as usize].push((off, idx));
        }
        let mut reclaimed = 0u64;
        for (shard, mut slots) in live.into_iter().enumerate() {
            let mut slab = self.slabs[shard].write();
            slots.sort_unstable();
            let mut w = 0u32;
            for (off, idx) in slots {
                if off != w {
                    slab.swap(w as usize, off as usize);
                    self.loc[idx].store(encode_loc(shard as u32, w), Ordering::Release);
                }
                w += 1;
            }
            reclaimed += (slab.len() - w as usize) as u64;
            slab.truncate(w as usize);
        }
        let mut seen = self.orphans.load(Ordering::Relaxed);
        loop {
            let next = seen.saturating_sub(reclaimed);
            match self.orphans.compare_exchange_weak(
                seen,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => seen = cur,
            }
        }
        reclaimed
    }

    /// Take the write lock of one shard's slab for the duration of a batch.
    /// The returned guard resolves *global* node indexes; it panics if
    /// asked for a node outside the locked shard.
    pub fn lock_shard(&self, shard: ShardId) -> ShardGuard<'_, P> {
        ShardGuard {
            slab: self.slabs[shard.idx()].write(),
            loc: &self.loc,
            shard: shard.0,
        }
    }

    /// Take the read lock of one shard's slab for the duration of a read
    /// batch. The snapshot resolves the locked shard's nodes with plain
    /// indexed access — one lock per batch instead of one per read — and
    /// falls through to per-slab read locks for foreign nodes (a
    /// cross-shard pull subtree).
    pub fn snapshot_shard(&self, shard: ShardId) -> ShardSnapshot<'_, P> {
        ShardSnapshot {
            slab: self.slabs[shard.idx()].read(),
            store: self,
            shard: shard.0,
        }
    }
}

/// Shared access to one shard's PAO slab (see
/// [`ShardedStore::snapshot_shard`]), resolving *global* node indexes:
/// locked-shard slots read lock-free through the held guard, foreign slots
/// through their own slab's read lock.
pub struct ShardSnapshot<'a, P> {
    slab: RwLockReadGuard<'a, Vec<P>>,
    store: &'a ShardedStore<P>,
    shard: u32,
}

impl<P: Send + Sync> PaoReader<P> for ShardSnapshot<'_, P> {
    #[inline]
    fn with_pao<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R {
        let (shard, off) = self.store.loc_of(idx);
        if shard == self.shard {
            f(&self.slab[off as usize])
        } else {
            self.store.with_read(idx, f)
        }
    }
}

/// Exclusive access to one shard's PAO slab, indexed by global node index.
pub struct ShardGuard<'a, P> {
    slab: RwLockWriteGuard<'a, Vec<P>>,
    loc: &'a [AtomicU64],
    shard: u32,
}

impl<P> ShardGuard<'_, P> {
    /// Mutable access to the PAO at global index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` does not belong to the locked shard.
    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> &mut P {
        let (shard, off) = decode_loc(self.loc[idx].load(Ordering::Acquire));
        assert_eq!(
            shard, self.shard,
            "node {idx} not owned by shard {}",
            self.shard
        );
        &mut self.slab[off as usize]
    }
}

impl<P: Send + Sync> PaoStore<P> for ShardedStore<P> {
    fn len(&self) -> usize {
        self.loc.len()
    }

    // Both accessors revalidate the location after acquiring the slab
    // lock: a migration or compaction may republish the slot between the
    // load and the lock, and compaction reuses offsets, so indexing with a
    // stale location would read the wrong PAO (or past the truncated
    // tail). Locations only change under the owning slab's write lock, so
    // a location that still matches once the lock is held is current.
    #[inline]
    fn with_mut<R>(&self, idx: usize, f: impl FnOnce(&mut P) -> R) -> R {
        loop {
            let packed = self.loc[idx].load(Ordering::Acquire);
            let (shard, off) = decode_loc(packed);
            let mut slab = self.slabs[shard as usize].write();
            if self.loc[idx].load(Ordering::Acquire) == packed {
                return f(&mut slab[off as usize]);
            }
        }
    }

    // Callers may already hold a *shared* slab lock: `ShardSnapshot::with_pao`
    // resolves foreign (cross-shard pull) slots through here while its own
    // shard's read guard is live. That nesting is shared-shared at the same
    // rank, which the lock-order rail's SHARED_REENTRANT exception permits.
    #[inline]
    // lint: holds(slab)
    fn with_read<R>(&self, idx: usize, f: impl FnOnce(&P) -> R) -> R {
        loop {
            let packed = self.loc[idx].load(Ordering::Acquire);
            let (shard, off) = decode_loc(packed);
            let slab = self.slabs[shard as usize].read();
            if self.loc[idx].load(Ordering::Acquire) == packed {
                return f(&slab[off as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_graph::Partitioner;

    #[test]
    fn locked_store_round_trips() {
        let store = LockedStore::new(4, || 0i64);
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
        store.with_mut(2, |p| *p = 7);
        assert_eq!(store.with_read(2, |p| *p), 7);
        assert_eq!(store.with_read(0, |p| *p), 0);
    }

    #[test]
    fn sharded_store_places_every_slot() {
        let part = Partitioner::hash(3).partition(100);
        let store = ShardedStore::new(&part, || 0i64);
        assert_eq!(store.len(), 100);
        assert_eq!(store.shard_count(), 3);
        for i in 0..100 {
            store.with_mut(i, |p| *p = i as i64);
        }
        for i in 0..100 {
            assert_eq!(store.with_read(i, |p| *p), i as i64);
            assert_eq!(store.shard_of(i), part.shard_of(i));
        }
    }

    #[test]
    fn shard_guard_resolves_global_indexes() {
        let part = Partitioner::chunked(2, 4).partition(16);
        let store = ShardedStore::new(&part, || 0i64);
        let owned: Vec<usize> = (0..16)
            .filter(|&i| part.shard_of(i) == ShardId(0))
            .collect();
        {
            let mut g = store.lock_shard(ShardId(0));
            for &i in &owned {
                *g.get_mut(i) = 40 + i as i64;
            }
        }
        for &i in &owned {
            assert_eq!(store.with_read(i, |p| *p), 40 + i as i64);
        }
    }

    #[test]
    fn shard_snapshot_resolves_local_and_foreign_nodes() {
        let part = Partitioner::chunked(2, 4).partition(16);
        let store = ShardedStore::new(&part, || 0i64);
        for i in 0..16 {
            store.with_mut(i, |p| *p = 100 + i as i64);
        }
        let snap = store.snapshot_shard(ShardId(0));
        for i in 0..16 {
            // Local slots read through the held guard, foreign ones through
            // their own slab lock — same answers either way.
            assert_eq!(snap.with_pao(i, |p| *p), 100 + i as i64);
        }
    }

    #[test]
    fn store_reader_matches_with_read() {
        let store = LockedStore::new(3, || 0i64);
        store.with_mut(1, |p| *p = 9);
        assert_eq!(StoreReader(&store).with_pao(1, |p| *p), 9);
    }

    #[test]
    fn relocate_moves_state_and_republishes_location() {
        let part = Partitioner::chunked(2, 4).partition(8);
        let store = ShardedStore::new(&part, || 0i64);
        for i in 0..8 {
            store.with_mut(i, |p| *p = 10 + i as i64);
        }
        // Hand node 1 (shard 0 under chunk 4 / 2 shards) to shard 1 with
        // its current value, the way the migration protocol does.
        let v = store.with_read(1, |p| *p);
        assert_eq!(store.shard_of(1), ShardId(0));
        store.relocate(1, ShardId(1), v);
        assert_eq!(store.shard_of(1), ShardId(1));
        assert_eq!(store.with_read(1, |p| *p), 11);
        // The new owner's guard now resolves it; writes land in the new slab.
        {
            let mut g = store.lock_shard(ShardId(1));
            *g.get_mut(1) += 100;
        }
        assert_eq!(store.with_read(1, |p| *p), 111);
        // Snapshots from both shards agree on every node.
        for shard in [ShardId(0), ShardId(1)] {
            let snap = store.snapshot_shard(shard);
            assert_eq!(snap.with_pao(1, |p| *p), 111);
            assert_eq!(snap.with_pao(0, |p| *p), 10);
        }
    }

    #[test]
    fn compact_reclaims_orphans_and_preserves_values() {
        let part = Partitioner::chunked(2, 4).partition(8);
        let store = ShardedStore::new(&part, || 0i64);
        for i in 0..8 {
            store.with_mut(i, |p| *p = 10 + i as i64);
        }
        // Shuffle ownership around: 3 relocations, 3 orphans.
        store.relocate(1, ShardId(1), store.with_read(1, |p| *p));
        store.relocate(5, ShardId(0), store.with_read(5, |p| *p));
        store.relocate(1, ShardId(0), store.with_read(1, |p| *p));
        assert_eq!(store.orphaned_slots(), 3);
        assert_eq!(store.compact(), 3);
        assert_eq!(store.orphaned_slots(), 0);
        for i in 0..8 {
            assert_eq!(store.with_read(i, |p| *p), 10 + i as i64);
        }
        // Slabs hold exactly one slot per live node.
        let total: usize = (0..store.shard_count())
            .map(|s| store.slabs[s].read().len())
            .sum();
        assert_eq!(total, store.len());
        // Writes through the new owners still land.
        {
            let mut g = store.lock_shard(ShardId(0));
            *g.get_mut(1) += 100;
            *g.get_mut(5) += 100;
        }
        assert_eq!(store.with_read(1, |p| *p), 111);
        assert_eq!(store.with_read(5, |p| *p), 115);
        // Idempotent with nothing to reclaim.
        assert_eq!(store.compact(), 0);
    }

    #[test]
    fn retire_slot_orphans_into_compaction() {
        let part = Partitioner::chunked(2, 4).partition(8);
        let store = ShardedStore::new(&part, || 0i64);
        for i in 0..8 {
            store.with_mut(i, |p| *p = 10 + i as i64);
        }
        store.retire_slot(3);
        store.retire_slot(6);
        store.retire_slot(3); // idempotent
        assert!(store.is_retired_slot(3));
        assert!(!store.is_retired_slot(0));
        assert_eq!(store.orphaned_slots(), 2);
        assert_eq!(store.compact(), 2);
        assert_eq!(store.orphaned_slots(), 0);
        // Live slots keep their values and stay writable.
        for i in [0, 1, 2, 4, 5, 7] {
            assert_eq!(store.with_read(i, |p| *p), 10 + i as i64);
        }
        let total: usize = (0..store.shard_count())
            .map(|s| store.slabs[s].read().len())
            .sum();
        assert_eq!(total, 6, "retired slots reclaimed from the slabs");
    }

    #[test]
    #[should_panic(expected = "not owned by shard")]
    fn old_owner_guard_rejects_node_after_relocate() {
        let part = Partitioner::chunked(2, 4).partition(8);
        let store = ShardedStore::new(&part, || 0i64);
        store.relocate(1, ShardId(1), 7);
        let mut g = store.lock_shard(ShardId(0));
        let _ = g.get_mut(1);
    }

    #[test]
    #[should_panic(expected = "not owned by shard")]
    fn shard_guard_rejects_foreign_nodes() {
        let part = Partitioner::chunked(2, 1).partition(4);
        let store = ShardedStore::new(&part, || 0i64);
        let mut g = store.lock_shard(ShardId(0));
        // Index 1 belongs to shard 1 under chunk_size 1 / 2 shards.
        let _ = g.get_mut(1);
    }
}
