//! Execution instrumentation: latency recording and throughput computation
//! (the evaluation metrics of §5.1 and Fig 13c).

use eagr_util::LatencySummary;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Thread-safe collector of per-operation latencies (milliseconds).
#[derive(Default)]
pub struct LatencyRecorder {
    samples: Mutex<Vec<f64>>,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency.
    pub fn record(&self, d: Duration) {
        self.samples.lock().push(d.as_secs_f64() * 1e3);
    }

    /// Time a closure and record its latency, returning its result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(t0.elapsed());
        out
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// Worst / p95 / average summary (Fig 13c's three series); drains
    /// nothing.
    pub fn summary(&self) -> LatencySummary {
        let mut samples = self.samples.lock().clone();
        LatencySummary::from_samples(&mut samples)
    }

    /// Clear all samples.
    pub fn reset(&self) {
        self.samples.lock().clear();
    }
}

/// End-to-end throughput: operations per second over a wall-clock duration
/// (the paper's headline metric: "the total number of read and write
/// queries served per second").
pub fn throughput(ops: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    ops as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let r = LatencyRecorder::new();
        for ms in [1.0, 2.0, 3.0] {
            r.record(Duration::from_secs_f64(ms / 1e3));
        }
        assert_eq!(r.len(), 3);
        let s = r.summary();
        assert!(s.avg >= 1.9 && s.avg <= 2.1, "avg {}", s.avg);
        assert!(s.worst >= 2.9);
        r.reset();
        assert!(r.is_empty());
    }

    #[test]
    fn time_closure() {
        let r = LatencyRecorder::new();
        let out = r.time(|| 21 * 2);
        assert_eq!(out, 42);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn throughput_math() {
        assert_eq!(throughput(1000, Duration::from_secs(2)), 500.0);
        assert_eq!(throughput(10, Duration::ZERO), 0.0);
    }
}
