//! Runtime adaptation of dataflow decisions (§4.8).
//!
//! [`AdaptiveEngine`] wraps an [`EngineCore`] and periodically re-evaluates
//! the push/pull frontier against the *observed* push/pull frequencies the
//! core collects. A flip is applied through
//! [`EngineCore::set_decision`], which materializes (pull→push) or clears
//! (push→pull) the node's PAO.

use crate::core::EngineCore;
use eagr_agg::{Aggregate, CostModel};
use eagr_graph::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Adaptive wrapper: processes events and re-plans the frontier every
/// `check_every` operations.
pub struct AdaptiveEngine<A: Aggregate> {
    core: Arc<EngineCore<A>>,
    cost: CostModel,
    writer_window: usize,
    check_every: u64,
    ops: AtomicU64,
    flips_total: AtomicU64,
}

impl<A: Aggregate> AdaptiveEngine<A> {
    /// Wrap a core with an adaptation period (in processed operations).
    pub fn new(
        core: Arc<EngineCore<A>>,
        cost: CostModel,
        writer_window: usize,
        check_every: u64,
    ) -> Self {
        assert!(check_every > 0);
        Self {
            core,
            cost,
            writer_window,
            check_every,
            ops: AtomicU64::new(0),
            flips_total: AtomicU64::new(0),
        }
    }

    /// The wrapped core.
    pub fn core(&self) -> &Arc<EngineCore<A>> {
        &self.core
    }

    /// Process a write; may trigger adaptation.
    pub fn write(&self, v: NodeId, value: i64, ts: u64) -> usize {
        let n = self.core.write(v, value, ts);
        self.tick();
        n
    }

    /// Process a read; may trigger adaptation.
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        let out = self.core.read(v);
        self.tick();
        out
    }

    fn tick(&self) {
        let prev = self.ops.fetch_add(1, Ordering::Relaxed);
        if (prev + 1) % self.check_every == 0 {
            self.adapt_now();
        }
    }

    /// Re-evaluate the frontier immediately. Returns the number of flips.
    pub fn adapt_now(&self) -> usize {
        let observed = self.core.observed_frequencies();
        let mut decisions = self.core.decisions();
        let flips = eagr_flow::adapt_frontier(
            self.core.overlay(),
            &mut decisions,
            &observed,
            &self.cost,
            self.writer_window,
        );
        if flips > 0 {
            for n in self.core.overlay().ids() {
                let want = decisions.is_push(n);
                if want != self.core.is_push(n) {
                    self.core.set_decision(n, want);
                }
            }
        }
        self.core.reset_observed();
        self.flips_total.fetch_add(flips as u64, Ordering::Relaxed);
        flips
    }

    /// Total decision flips performed so far.
    pub fn total_flips(&self) -> u64 {
        self.flips_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::{Sum, WindowSpec};
    use eagr_flow::Decisions;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};
    use eagr_overlay::Overlay;

    fn adaptive_engine(check_every: u64) -> AdaptiveEngine<Sum> {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        // Start from the *wrong* plan for a read-heavy workload: all pull.
        let d = Decisions::all_pull(&ov);
        let core = Arc::new(EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1)));
        AdaptiveEngine::new(core, CostModel::unit_sum(), 1, check_every)
    }

    #[test]
    fn adapts_to_read_heavy_workload() {
        let eng = adaptive_engine(100);
        // Seed some state then hammer reads.
        for v in 0..7u32 {
            eng.write(NodeId(v), v as i64, v as u64);
        }
        for i in 0..500u32 {
            eng.read(NodeId(i % 7));
        }
        assert!(
            eng.total_flips() > 0,
            "read-heavy load must flip pulls to pushes"
        );
        // Results stay correct after adaptation.
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        for (i, r, inputs) in ag.iter() {
            let _ = i;
            let want: i64 = inputs.iter().map(|w| w.0 as i64).sum();
            assert_eq!(eng.read(NodeId(r.0)), Some(want), "reader {r:?}");
        }
    }

    #[test]
    fn stable_after_convergence() {
        let eng = adaptive_engine(50);
        for v in 0..7u32 {
            eng.write(NodeId(v), 1, v as u64);
        }
        for i in 0..1000u32 {
            eng.read(NodeId(i % 7));
        }
        let flips_mid = eng.total_flips();
        for i in 0..1000u32 {
            eng.read(NodeId(i % 7));
        }
        // Once converged to all-push for a read-only load, nothing flips
        // back and forth.
        assert_eq!(eng.total_flips(), flips_mid);
    }
}
