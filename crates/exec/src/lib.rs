//! Execution engines for EAGr overlays (paper §2.2.2).
//!
//! * [`core`] — [`EngineCore`]: overlay-frozen runtime state (windows, PAO
//!   slots, atomic decisions, observation counters) with the write/read
//!   execution flow.
//! * [`engine`] — the single-threaded reference engine.
//! * [`parallel`] — the two-pool multi-threaded engine (queueing-model
//!   writes, uni-thread reads).
//! * [`adaptive`] — the §4.8 runtime decision adaptation.
//! * [`metrics`] — latency recording and throughput computation.

pub mod adaptive;
pub mod core;
pub mod engine;
pub mod metrics;
pub mod parallel;

pub use crate::core::EngineCore;
pub use adaptive::AdaptiveEngine;
pub use engine::Engine;
pub use metrics::{throughput, LatencyRecorder};
pub use parallel::{ParallelConfig, ParallelEngine};
