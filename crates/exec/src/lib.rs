//! Execution engines for EAGr overlays (paper §2.2.2).
//!
//! * [`store`] — pluggable PAO storage: per-PAO locks ([`store::LockedStore`])
//!   or shard slabs ([`store::ShardedStore`]) behind the [`store::PaoStore`]
//!   trait.
//! * [`core`] — [`EngineCore`]: overlay-frozen runtime state (windows, PAO
//!   store, atomic decisions, observation counters) with the write/read
//!   execution flow, generic over the storage backend.
//! * [`engine`] — the single-threaded reference engine.
//! * [`parallel`] — the two-pool multi-threaded engine (queueing-model
//!   writes, uni-thread reads).
//! * [`sharded`] — the shard-owned, batch-ingesting runtime: workers own
//!   disjoint PAO shards and exchange batched cross-shard deltas over
//!   bounded channels, drained in epochs.
//! * [`adaptive`] — the §4.8 runtime decision adaptation.
//! * [`metrics`] — latency recording and throughput computation.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod core;
pub mod engine;
pub mod metrics;
pub mod parallel;
pub mod sharded;
pub mod store;

pub use crate::core::{EngineCore, EngineState};
pub use adaptive::AdaptiveEngine;
pub use engine::Engine;
pub use metrics::{throughput, LatencyRecorder};
pub use parallel::{ParallelConfig, ParallelEngine};
pub use sharded::{
    LivePartition, MapSnapshot, MigrationReport, RebalancePolicy, ShardStats, ShardedConfig,
    ShardedCore, ShardedEngine, TopoEpochReport,
};
pub use store::{LockedStore, PaoReader, PaoStore, ShardSnapshot, ShardedStore, StoreReader};
