//! Execution engines for EAGr overlays (paper §2.2.2).
//!
//! * [`store`] — pluggable PAO storage: per-PAO locks ([`store::LockedStore`])
//!   or shard slabs ([`store::ShardedStore`]) behind the [`store::PaoStore`]
//!   trait.
//! * [`core`] — [`EngineCore`]: overlay-frozen runtime state (windows, PAO
//!   store, atomic decisions, observation counters) with the write/read
//!   execution flow, generic over the storage backend.
//! * [`engine`] — the single-threaded reference engine.
//! * [`parallel`] — the two-pool multi-threaded engine (queueing-model
//!   writes, uni-thread reads).
//! * [`sharded`] — the shard-owned, batch-ingesting runtime: workers own
//!   disjoint PAO shards and exchange batched cross-shard deltas over
//!   bounded channels, drained in epochs.
//! * [`adaptive`] — the §4.8 runtime decision adaptation.
//! * [`transport`] — the [`transport::ShardTransport`] seam under the
//!   sharded runtime: in-process worker threads (default) or
//!   `eagr-shard-host` OS processes over Unix-domain sockets.
//! * [`metrics`] — latency recording and throughput computation.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod core;
pub mod engine;
pub mod metrics;
pub mod parallel;
pub mod sharded;
pub mod store;
pub mod transport;

pub use crate::core::{EngineCore, EngineState};
pub use adaptive::AdaptiveEngine;
pub use engine::Engine;
pub use metrics::{throughput, LatencyRecorder};
pub use parallel::{ParallelConfig, ParallelEngine};
pub use sharded::{
    LivePartition, MapSnapshot, MigrationReport, ReadReplies, RebalancePolicy, ShardMsg,
    ShardStats, ShardedConfig, ShardedConfigBuilder, ShardedCore, ShardedEngine, TopoEpochReport,
    TopoSwap,
};
pub use store::{LockedStore, PaoReader, PaoStore, ShardSnapshot, ShardedStore, StoreReader};
pub use transport::{PlanUpdate, ShardTransport, SlotState, TransportError, TransportKind};
