//! The multi-threaded execution engine (§2.2.2).
//!
//! Two thread pools, exactly as the paper prescribes:
//!
//! * **write pool** — the *queueing model*: a write is subdivided into
//!   micro-tasks at overlay-node granularity; each micro-task performs one
//!   PAO update and enqueues follow-on micro-tasks for the node's push
//!   consumers. Any worker may execute any micro-task (PAOs are
//!   individually locked), so one shared MPMC channel feeds the pool.
//! * **read pool** — the *uni-thread model*: a worker picks up a read and
//!   evaluates it fully (pull recursion included) before taking the next.
//!
//! "The relative sizes of the two thread pools can be set based on the
//! expected number of reads vs writes" — both sizes are configurable.
//!
//! Reads may observe partially propagated writes; the paper explicitly
//! tolerates this relaxed consistency.

use crate::core::EngineCore;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use eagr_agg::{Aggregate, DeltaOp};
use eagr_graph::NodeId;
use eagr_overlay::OverlayId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Pool sizes for the two-pool execution model.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Write-pool (queueing model) workers.
    pub write_threads: usize,
    /// Read-pool (uni-thread model) workers.
    pub read_threads: usize,
}

impl Default for ParallelConfig {
    /// Split the available cores between the two pools, always reserving
    /// at least one writer *and* one reader: on a single-core box
    /// (`available_parallelism() == 1`) the naive `cores / 2` split would
    /// degenerate both pools to the same size, so the core count is floored
    /// at 2 before splitting.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2);
        let write_threads = (cores / 2).max(1);
        Self {
            write_threads,
            read_threads: (cores - write_threads).max(1),
        }
    }
}

enum WriteMsg {
    Micro(OverlayId, DeltaOp),
    Stop,
}

enum ReadMsg<O> {
    Read(NodeId),
    ReadReply(NodeId, Sender<Option<O>>),
    Stop,
}

/// Multi-threaded engine over a shared [`EngineCore`].
pub struct ParallelEngine<A: Aggregate> {
    core: Arc<EngineCore<A>>,
    write_tx: Sender<WriteMsg>,
    read_tx: Sender<ReadMsg<A::Output>>,
    pending: Arc<AtomicU64>,
    reads_done: Arc<AtomicU64>,
    cfg: ParallelConfig,
    handles: Vec<JoinHandle<()>>,
}

impl<A: Aggregate> ParallelEngine<A>
where
    A::Output: Send,
{
    /// Spawn the worker pools.
    pub fn new(core: Arc<EngineCore<A>>, cfg: ParallelConfig) -> Self {
        assert!(cfg.write_threads >= 1 && cfg.read_threads >= 1);
        let (write_tx, write_rx) = unbounded::<WriteMsg>();
        let (read_tx, read_rx) = unbounded::<ReadMsg<A::Output>>();
        let pending = Arc::new(AtomicU64::new(0));
        let reads_done = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();

        for i in 0..cfg.write_threads {
            let core = Arc::clone(&core);
            let rx: Receiver<WriteMsg> = write_rx.clone();
            let tx = write_tx.clone();
            let pending = Arc::clone(&pending);
            let h = std::thread::Builder::new()
                .name(format!("eagr-write-{i}"))
                .spawn(move || {
                    let mut buf: Vec<(OverlayId, DeltaOp)> = Vec::with_capacity(16);
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WriteMsg::Micro(n, op) => {
                                buf.clear();
                                core.apply_op(n, op, &mut buf);
                                pending.fetch_add(buf.len() as u64, Ordering::AcqRel);
                                for &(m, op2) in &buf {
                                    tx.send(WriteMsg::Micro(m, op2)).expect("pool alive");
                                }
                                pending.fetch_sub(1, Ordering::AcqRel);
                            }
                            WriteMsg::Stop => break,
                        }
                    }
                })
                .expect("spawn write worker");
            handles.push(h);
        }

        for i in 0..cfg.read_threads {
            let core = Arc::clone(&core);
            let rx: Receiver<ReadMsg<A::Output>> = read_rx.clone();
            let pending = Arc::clone(&pending);
            let reads_done = Arc::clone(&reads_done);
            let h = std::thread::Builder::new()
                .name(format!("eagr-read-{i}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ReadMsg::Read(v) => {
                                std::hint::black_box(core.read(v));
                                reads_done.fetch_add(1, Ordering::AcqRel);
                                pending.fetch_sub(1, Ordering::AcqRel);
                            }
                            ReadMsg::ReadReply(v, reply) => {
                                let out = core.read(v);
                                let _ = reply.send(out);
                                reads_done.fetch_add(1, Ordering::AcqRel);
                                pending.fetch_sub(1, Ordering::AcqRel);
                            }
                            ReadMsg::Stop => break,
                        }
                    }
                })
                .expect("spawn read worker");
            handles.push(h);
        }

        Self {
            core,
            write_tx,
            read_tx,
            pending,
            reads_done,
            cfg,
            handles,
        }
    }

    /// The shared core.
    pub fn core(&self) -> &Arc<EngineCore<A>> {
        &self.core
    }

    /// Ingest a write and enqueue its propagation micro-tasks.
    ///
    /// The window shift and the writer's own PAO update happen inline on
    /// the calling thread — per-writer ordering must be preserved (a
    /// sliding window is order-sensitive), and the window lock serializes
    /// concurrent submitters. Everything downstream is subdivided into
    /// overlay-node micro-tasks handled by the write pool (the paper's
    /// queueing model).
    pub fn submit_write(&self, v: NodeId, value: i64, ts: u64) {
        let tasks = self.core.write_local(v, value, ts);
        self.pending.fetch_add(tasks.len() as u64, Ordering::AcqRel);
        for (n, op) in tasks {
            self.write_tx
                .send(WriteMsg::Micro(n, op))
                .expect("pool alive");
        }
    }

    /// Enqueue a read whose result is discarded (throughput measurement).
    pub fn submit_read(&self, v: NodeId) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.read_tx.send(ReadMsg::Read(v)).expect("pool alive");
    }

    /// Enqueue a read and wait for its answer.
    pub fn read_blocking(&self, v: NodeId) -> Option<A::Output> {
        let (tx, rx) = bounded(1);
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.read_tx
            .send(ReadMsg::ReadReply(v, tx))
            .expect("pool alive");
        rx.recv().expect("read worker replies")
    }

    /// Number of fire-and-forget reads completed.
    pub fn reads_completed(&self) -> u64 {
        self.reads_done.load(Ordering::Acquire)
    }

    /// Wait until every enqueued write has fully propagated and every read
    /// has completed.
    pub fn drain(&self) {
        while self.pending.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Drain, stop the pools, and join the workers.
    pub fn shutdown(mut self) {
        self.drain();
        self.stop_workers();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<A: Aggregate> ParallelEngine<A> {
    fn stop_workers(&self) {
        for _ in 0..self.cfg.write_threads {
            let _ = self.write_tx.send(WriteMsg::Stop);
        }
        for _ in 0..self.cfg.read_threads {
            let _ = self.read_tx.send(ReadMsg::Stop);
        }
    }
}

impl<A: Aggregate> Drop for ParallelEngine<A> {
    /// Every write worker holds a `write_tx` clone (to enqueue follow-on
    /// micro-tasks), so the write channel never disconnects on its own —
    /// without explicit stops an abandoned engine would leak its write
    /// pool forever. Queued work still drains first (stops are FIFO behind
    /// it); workers are not joined here so drop never blocks on them.
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop_workers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::{Sum, WindowSpec};
    use eagr_flow::Decisions;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};
    use eagr_overlay::Overlay;
    use eagr_util::SplitMix64;

    fn parallel_core(all_push: bool) -> Arc<EngineCore<Sum>> {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Arc::new(Overlay::direct_from_bipartite(&ag));
        let d = if all_push {
            Decisions::all_push(&ov)
        } else {
            Decisions::all_pull(&ov)
        };
        Arc::new(EngineCore::new(Sum, ov, &d, WindowSpec::Tuple(1)))
    }

    #[test]
    fn parallel_matches_paper_results() {
        let core = parallel_core(true);
        let eng = ParallelEngine::new(
            Arc::clone(&core),
            ParallelConfig {
                write_threads: 3,
                read_threads: 2,
            },
        );
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut ts = 0;
        for (node, vals) in streams {
            for &v in vals {
                eng.submit_write(NodeId(node), v, ts);
                ts += 1;
            }
        }
        eng.drain();
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(eng.read_blocking(NodeId(v as u32)), Some(w), "reader {v}");
        }
        eng.shutdown();
    }

    #[test]
    fn concurrent_writes_converge_to_sequential_result() {
        // Hammer the engine with a deterministic random workload, then
        // compare the drained state with a single-threaded replay. Window
        // ingestion happens at submission (ordered); propagation
        // micro-tasks race but commute.
        let core = parallel_core(true);
        let eng = ParallelEngine::new(Arc::clone(&core), ParallelConfig::default());
        let mut rng = SplitMix64::new(42);
        let mut ops = Vec::new();
        for ts in 0..2000u64 {
            let node = rng.index(7) as u32;
            let value = rng.range(0, 100) as i64;
            ops.push((node, value, ts));
        }
        for &(n, v, ts) in &ops {
            eng.submit_write(NodeId(n), v, ts);
        }
        eng.drain();

        let seq = parallel_core(true);
        // Writes to the same node must replay in submission order; the
        // engine serializes per-writer via the window lock, and Tuple(1)
        // windows make the final state depend only on each node's last
        // write — replay sequentially for the oracle.
        for &(n, v, ts) in &ops {
            seq.write(NodeId(n), v, ts);
        }
        for v in 0..7u32 {
            assert_eq!(
                eng.read_blocking(NodeId(v)),
                seq.read(NodeId(v)),
                "reader {v}"
            );
        }
        eng.shutdown();
    }

    #[test]
    fn fire_and_forget_reads_counted() {
        let core = parallel_core(false);
        let eng = ParallelEngine::new(core, ParallelConfig::default());
        for _ in 0..50 {
            eng.submit_read(NodeId(0));
        }
        eng.drain();
        assert_eq!(eng.reads_completed(), 50);
        eng.shutdown();
    }

    #[test]
    fn drop_without_shutdown_stops_workers() {
        // An abandoned engine must release its pools: write workers hold
        // their own tx clones, so only the Drop-sent stops let them exit.
        let core = parallel_core(true);
        let eng = ParallelEngine::new(
            core,
            ParallelConfig {
                write_threads: 2,
                read_threads: 1,
            },
        );
        eng.submit_write(NodeId(2), 6, 0);
        eng.drain();
        drop(eng); // must not hang, and must terminate the pools
    }

    #[test]
    fn default_config_reserves_both_pools() {
        // Whatever available_parallelism() reports (including 1), the
        // default split must keep at least one thread in each pool and
        // never size a pool to zero.
        let cfg = ParallelConfig::default();
        assert!(cfg.write_threads >= 1);
        assert!(cfg.read_threads >= 1);
    }

    #[test]
    fn drain_on_idle_engine_returns() {
        let core = parallel_core(true);
        let eng = ParallelEngine::new(core, ParallelConfig::default());
        eng.drain();
        eng.shutdown();
    }
}
