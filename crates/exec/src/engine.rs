//! The single-threaded execution engine (§2.2.2's baseline model).
//!
//! Processes writes and reads "in the order in which they are received,
//! finishing each one fully before handling the next one" — well-defined,
//! consistent state, and the reference the multi-threaded engine is tested
//! against.

use crate::core::EngineCore;
use eagr_agg::{Aggregate, WindowSpec};
use eagr_flow::Plan;
use eagr_graph::NodeId;
use std::sync::Arc;

/// Single-threaded engine over an [`EngineCore`].
pub struct Engine<A: Aggregate> {
    core: Arc<EngineCore<A>>,
}

impl<A: Aggregate> Engine<A> {
    /// Build an engine from a dataflow [`Plan`].
    pub fn from_plan(plan: Plan, agg: A, window: WindowSpec) -> Self {
        let overlay = Arc::new(plan.overlay);
        let core = EngineCore::new(agg, overlay, &plan.decisions, window);
        Self {
            core: Arc::new(core),
        }
    }

    /// Build an engine from pre-assembled parts.
    pub fn from_core(core: Arc<EngineCore<A>>) -> Self {
        Self { core }
    }

    /// The shared core (e.g. to hand to a [`crate::ParallelEngine`] or an
    /// adaptive controller).
    pub fn core(&self) -> &Arc<EngineCore<A>> {
        &self.core
    }

    /// Process a write fully (update + push propagation). Returns the
    /// number of PAO updates performed.
    pub fn write(&self, v: NodeId, value: i64, ts: u64) -> usize {
        self.core.write(v, value, ts)
    }

    /// Evaluate a read.
    pub fn read(&self, v: NodeId) -> Option<A::Output> {
        self.core.read(v)
    }

    /// Expire time-window values up to `ts`.
    pub fn advance_time(&self, ts: u64) -> usize {
        self.core.advance_time(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::{Max, Sum, TopK, WindowSpec};
    use eagr_flow::{plan, DecisionAlgorithm, PlannerConfig, Rates};
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};
    use eagr_overlay::Overlay;

    fn planned_engine<A: Aggregate>(agg: A, alg: DecisionAlgorithm) -> Engine<A> {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let ov = Overlay::direct_from_bipartite(&ag);
        let p = plan(
            ov,
            &Rates::uniform(7, 1.0),
            &eagr_agg::CostModel::unit_sum(),
            &PlannerConfig {
                algorithm: alg,
                split: false,
                writer_window: 1,
                push_amplification: 2.0,
            },
        );
        Engine::from_plan(p, agg, WindowSpec::Tuple(1))
    }

    #[test]
    fn sum_under_optimal_decisions_matches_paper() {
        let e = planned_engine(Sum, DecisionAlgorithm::MaxFlow);
        let streams: [(u32, &[i64]); 7] = [
            (0, &[1, 4]),
            (1, &[3, 7]),
            (2, &[6, 9]),
            (3, &[8, 4, 3]),
            (4, &[5, 9, 1]),
            (5, &[3, 6, 6]),
            (6, &[5]),
        ];
        let mut ts = 0;
        for (node, vals) in streams {
            for &v in vals {
                e.write(NodeId(node), v, ts);
                ts += 1;
            }
        }
        let want = [19, 10, 30, 30, 23, 30, 30];
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(e.read(NodeId(v as u32)), Some(w));
        }
    }

    #[test]
    fn max_engine() {
        let e = planned_engine(Max, DecisionAlgorithm::MaxFlow);
        e.write(NodeId(2), 6, 0);
        e.write(NodeId(3), 8, 1);
        e.write(NodeId(3), 4, 2); // replaces 8 under c=1 window
        assert_eq!(e.read(NodeId(0)), Some(Some(6)));
    }

    #[test]
    fn topk_engine() {
        let e = planned_engine(TopK::new(2), DecisionAlgorithm::Greedy);
        // Writers c,d,e,f feed reader a; values act as "topics".
        e.write(NodeId(2), 42, 0);
        e.write(NodeId(3), 42, 1);
        e.write(NodeId(4), 7, 2);
        e.write(NodeId(5), 42, 3);
        assert_eq!(e.read(NodeId(0)), Some(vec![(42, 3), (7, 1)]));
    }
}
