//! `eagr-shard-host` — one OS process owning one shard of the sharded
//! EAGr engine.
//!
//! Spawned by the coordinator (a [`eagr_exec::ShardedEngine`] built with
//! [`eagr_exec::TransportKind::Process`]) with the coordinator's
//! Unix-socket path as the only argument; all further configuration
//! arrives over the socket during the handshake. Not intended to be run
//! by hand.

#[cfg(unix)]
fn main() {
    std::process::exit(eagr_exec::transport::host::host_main());
}

#[cfg(not(unix))]
fn main() {
    eprintln!("eagr-shard-host requires Unix-domain sockets");
    std::process::exit(2);
}
