//! [`Wire`] codecs for the aggregation layer, plus [`WireHooks`] — the
//! per-aggregate codec vtable the multi-process shard transport uses to ship
//! PAO partials and query outputs between the coordinator and shard hosts.
//!
//! An [`Aggregate`] opts into process transport by returning hooks from
//! [`Aggregate::wire_hooks`]; every builtin except [`TopK`](crate::TopK)
//! does (TopK partials embed per-instance configuration, left for a future
//! PR). Aggregates without hooks still run fine on the in-process transport
//! — nothing there ever serializes.

use crate::aggregate::Aggregate;
use crate::op::{DeltaOp, Sign};
use crate::window::{WindowBuffer, WindowSpec};
use eagr_util::wire::{Wire, WireError};

impl Wire for Sign {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Sign::Pos => 0,
            Sign::Neg => 1,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Sign::Pos),
            1 => Ok(Sign::Neg),
            tag => Err(WireError::BadTag { what: "Sign", tag }),
        }
    }
}

impl Wire for DeltaOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeltaOp::Insert(v) => {
                out.push(0);
                v.encode(out);
            }
            DeltaOp::Remove(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(DeltaOp::Insert(i64::decode(buf)?)),
            1 => Ok(DeltaOp::Remove(i64::decode(buf)?)),
            tag => Err(WireError::BadTag {
                what: "DeltaOp",
                tag,
            }),
        }
    }
}

impl Wire for WindowSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WindowSpec::Tuple(c) => {
                out.push(0);
                c.encode(out);
            }
            WindowSpec::Time(t) => {
                out.push(1);
                t.encode(out);
            }
            WindowSpec::Unbounded => out.push(2),
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(WindowSpec::Tuple(usize::decode(buf)?)),
            1 => Ok(WindowSpec::Time(u64::decode(buf)?)),
            2 => Ok(WindowSpec::Unbounded),
            tag => Err(WireError::BadTag {
                what: "WindowSpec",
                tag,
            }),
        }
    }
}

impl Wire for WindowBuffer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.spec().encode(out);
        self.len().encode(out);
        for (t, v) in self.entries() {
            t.encode(out);
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let spec = WindowSpec::decode(buf)?;
        let n = usize::decode(buf)?;
        let mut entries = Vec::with_capacity(n.min(buf.len()));
        for _ in 0..n {
            entries.push(<(u64, i64)>::decode(buf)?);
        }
        Ok(WindowBuffer::from_entries(spec, entries))
    }
}

impl Wire for crate::builtins::AvgPao {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sum.encode(out);
        self.count.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self {
            sum: i64::decode(buf)?,
            count: i64::decode(buf)?,
        })
    }
}

/// Codec vtable for one aggregate: how to put its `Partial` and `Output`
/// types on the wire, plus the name shard-host processes dispatch on.
///
/// Held as plain function pointers so the sharded engine can stash one
/// per-instance without making [`Aggregate`] itself depend on [`Wire`]
/// bounds (which would infect every generic signature in exec).
pub struct WireHooks<A: Aggregate + ?Sized> {
    /// Dispatch name the `eagr-shard-host` binary matches on; by convention
    /// the aggregate's [`Aggregate::name`].
    pub name: &'static str,
    /// Encode a PAO partial.
    pub enc_partial: fn(&A::Partial, &mut Vec<u8>),
    /// Decode a PAO partial.
    pub dec_partial: fn(&mut &[u8]) -> Result<A::Partial, WireError>,
    /// Encode a query output.
    pub enc_output: fn(&A::Output, &mut Vec<u8>),
    /// Decode a query output.
    pub dec_output: fn(&mut &[u8]) -> Result<A::Output, WireError>,
}

impl<A: Aggregate + ?Sized> Clone for WireHooks<A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<A: Aggregate + ?Sized> Copy for WireHooks<A> {}

impl<A: Aggregate + ?Sized> std::fmt::Debug for WireHooks<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireHooks")
            .field("name", &self.name)
            .finish()
    }
}

impl<A: Aggregate> WireHooks<A>
where
    A::Partial: Wire,
    A::Output: Wire,
{
    /// Derive hooks from the `Wire` impls of the aggregate's associated
    /// types. This is all any builtin needs.
    pub fn auto(name: &'static str) -> Self {
        Self {
            name,
            enc_partial: <A::Partial as Wire>::encode,
            dec_partial: <A::Partial as Wire>::decode,
            enc_output: <A::Output as Wire>::encode,
            dec_output: <A::Output as Wire>::decode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::Sum;

    #[test]
    fn ops_round_trip() {
        for op in [DeltaOp::Insert(-3), DeltaOp::Remove(i64::MAX)] {
            assert_eq!(DeltaOp::from_wire(&op.to_wire()).unwrap(), op);
        }
        for s in [Sign::Pos, Sign::Neg] {
            assert_eq!(Sign::from_wire(&s.to_wire()).unwrap(), s);
        }
    }

    #[test]
    fn window_buffer_round_trips() {
        let mut w = WindowBuffer::new(WindowSpec::Time(10));
        let mut expired = Vec::new();
        w.push(1, 5, &mut expired);
        w.push(4, -2, &mut expired);
        let back = WindowBuffer::from_wire(&w.to_wire()).unwrap();
        assert_eq!(back.spec(), w.spec());
        assert_eq!(
            back.entries().collect::<Vec<_>>(),
            w.entries().collect::<Vec<_>>()
        );
    }

    #[test]
    fn hooks_encode_partials() {
        let hooks = Sum.wire_hooks().expect("SUM is wire-capable");
        let mut bytes = Vec::new();
        (hooks.enc_partial)(&42i64, &mut bytes);
        let mut cursor = &bytes[..];
        assert_eq!((hooks.dec_partial)(&mut cursor).unwrap(), 42);
        assert!(cursor.is_empty());
    }
}
