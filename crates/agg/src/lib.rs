//! The EAGr aggregation framework (paper §2.2).
//!
//! The central abstraction is the [`Aggregate`] trait — the user-defined
//! aggregate API of §2.2.3 (INITIALIZE / UPDATE / FINALIZE plus the MERGE
//! capability the overlay requires) — expressed as a *partial aggregate
//! object* (PAO) algebra:
//!
//! * [`Aggregate::empty`] — INITIALIZE: a PAO over zero inputs,
//! * [`Aggregate::insert`] / [`Aggregate::remove`] — apply a raw stream
//!   value entering / leaving a sliding window,
//! * [`Aggregate::merge`] / [`Aggregate::unmerge`] — combine PAOs across
//!   overlay edges (`unmerge` implements the paper's *negative edges*),
//! * [`Aggregate::finalize`] — FINALIZE: produce the query answer.
//!
//! Two structural properties drive overlay construction (§3.1):
//! [`AggProps::duplicate_insensitive`] permits multiple writer→reader paths
//! (MAX/MIN/UNIQUE-style aggregates), and [`AggProps::subtractable`] permits
//! negative edges (SUM/COUNT/TOP-K-style aggregates).
//!
//! Built-in aggregates live in [`builtins`]; sliding windows (time- and
//! tuple-based, §2.1) in [`window`]; the push/pull cost functions `H(k)` and
//! `L(k)` with their calibration routine (§4.2) in [`cost`].

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod builtins;
pub mod cost;
pub mod op;
pub mod window;
pub mod wire;

pub use aggregate::{AggProps, Aggregate};
pub use builtins::{Avg, Count, Distinct, Max, Min, Sum, TopK};
pub use cost::{calibrate, CostFn, CostModel};
pub use op::{DeltaOp, Sign};
pub use window::{WindowBuffer, WindowSpec};
pub use wire::WireHooks;
