//! SUM, COUNT, and AVG — the distributive/algebraic aggregates with O(1)
//! pushes and exact subtraction.

use crate::aggregate::{AggProps, Aggregate};

/// SUM over the in-window values of the neighborhood (the paper's running
/// example, Fig 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Sum;

impl Aggregate for Sum {
    type Partial = i64;
    type Output = i64;

    fn name(&self) -> &'static str {
        "SUM"
    }
    fn empty(&self) -> i64 {
        0
    }
    #[inline]
    fn insert(&self, p: &mut i64, v: i64) {
        *p = p.wrapping_add(v);
    }
    #[inline]
    fn remove(&self, p: &mut i64, v: i64) {
        *p = p.wrapping_sub(v);
    }
    #[inline]
    fn merge(&self, into: &mut i64, other: &i64) {
        *into = into.wrapping_add(*other);
    }
    #[inline]
    fn unmerge(&self, into: &mut i64, other: &i64) {
        *into = into.wrapping_sub(*other);
    }
    fn finalize(&self, p: &i64) -> i64 {
        *p
    }
    fn props(&self) -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }
    fn push_cost(&self, _k: usize) -> f64 {
        1.0
    }
    fn pull_cost(&self, k: usize) -> f64 {
        k as f64
    }
    fn wire_hooks(&self) -> Option<crate::wire::WireHooks<Self>> {
        Some(crate::wire::WireHooks::auto("SUM"))
    }
}

/// COUNT of in-window values.
#[derive(Clone, Copy, Debug, Default)]
pub struct Count;

impl Aggregate for Count {
    type Partial = i64;
    type Output = i64;

    fn name(&self) -> &'static str {
        "COUNT"
    }
    fn empty(&self) -> i64 {
        0
    }
    #[inline]
    fn insert(&self, p: &mut i64, _v: i64) {
        *p += 1;
    }
    #[inline]
    fn remove(&self, p: &mut i64, _v: i64) {
        *p -= 1;
    }
    #[inline]
    fn merge(&self, into: &mut i64, other: &i64) {
        *into += *other;
    }
    #[inline]
    fn unmerge(&self, into: &mut i64, other: &i64) {
        *into -= *other;
    }
    fn finalize(&self, p: &i64) -> i64 {
        *p
    }
    fn props(&self) -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }
    fn push_cost(&self, _k: usize) -> f64 {
        1.0
    }
    fn pull_cost(&self, k: usize) -> f64 {
        k as f64
    }
    fn wire_hooks(&self) -> Option<crate::wire::WireHooks<Self>> {
        Some(crate::wire::WireHooks::auto("COUNT"))
    }
}

/// PAO of [`Avg`]: an algebraic aggregate is a tuple of distributive ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AvgPao {
    /// Sum of in-window values.
    pub sum: i64,
    /// Number of in-window values.
    pub count: i64,
}

/// AVG over in-window values; `None` over an empty window.
#[derive(Clone, Copy, Debug, Default)]
pub struct Avg;

impl Aggregate for Avg {
    type Partial = AvgPao;
    type Output = Option<f64>;

    fn name(&self) -> &'static str {
        "AVG"
    }
    fn empty(&self) -> AvgPao {
        AvgPao::default()
    }
    #[inline]
    fn insert(&self, p: &mut AvgPao, v: i64) {
        p.sum = p.sum.wrapping_add(v);
        p.count += 1;
    }
    #[inline]
    fn remove(&self, p: &mut AvgPao, v: i64) {
        p.sum = p.sum.wrapping_sub(v);
        p.count -= 1;
    }
    #[inline]
    fn merge(&self, into: &mut AvgPao, other: &AvgPao) {
        into.sum = into.sum.wrapping_add(other.sum);
        into.count += other.count;
    }
    #[inline]
    fn unmerge(&self, into: &mut AvgPao, other: &AvgPao) {
        into.sum = into.sum.wrapping_sub(other.sum);
        into.count -= other.count;
    }
    fn finalize(&self, p: &AvgPao) -> Option<f64> {
        (p.count != 0).then(|| p.sum as f64 / p.count as f64)
    }
    fn props(&self) -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }
    fn push_cost(&self, _k: usize) -> f64 {
        1.0
    }
    fn pull_cost(&self, k: usize) -> f64 {
        k as f64
    }
    fn wire_hooks(&self) -> Option<crate::wire::WireHooks<Self>> {
        Some(crate::wire::WireHooks::auto("AVG"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_algebra() {
        let s = Sum;
        let mut a = s.empty();
        s.insert(&mut a, 3);
        s.insert(&mut a, 4);
        let mut b = s.empty();
        s.insert(&mut b, 10);
        s.merge(&mut a, &b);
        assert_eq!(s.finalize(&a), 17);
        s.unmerge(&mut a, &b);
        assert_eq!(s.finalize(&a), 7);
        s.remove(&mut a, 3);
        assert_eq!(s.finalize(&a), 4);
    }

    #[test]
    fn sum_paper_example_reader_a() {
        // Fig 1(b): read on a = 9 + 3 + 1 + 6 = 19 (latest writes of c,d,e,f).
        let s = Sum;
        let mut p = s.empty();
        for v in [9, 3, 1, 6] {
            s.insert(&mut p, v);
        }
        assert_eq!(s.finalize(&p), 19);
    }

    #[test]
    fn count_ignores_value() {
        let c = Count;
        let mut p = c.empty();
        c.insert(&mut p, 100);
        c.insert(&mut p, -100);
        assert_eq!(c.finalize(&p), 2);
        c.remove(&mut p, 100);
        assert_eq!(c.finalize(&p), 1);
    }

    #[test]
    fn avg_empty_is_none() {
        let a = Avg;
        assert_eq!(a.finalize(&a.empty()), None);
        let mut p = a.empty();
        a.insert(&mut p, 4);
        a.insert(&mut p, 8);
        assert_eq!(a.finalize(&p), Some(6.0));
        a.remove(&mut p, 8);
        assert_eq!(a.finalize(&p), Some(4.0));
        a.remove(&mut p, 4);
        assert_eq!(a.finalize(&p), None);
    }

    #[test]
    fn sum_wrapping_does_not_panic() {
        let s = Sum;
        let mut p = i64::MAX;
        s.insert(&mut p, 1); // would overflow with checked arithmetic
        s.remove(&mut p, 1);
        assert_eq!(p, i64::MAX);
    }

    #[test]
    fn cost_shapes() {
        let s = Sum;
        assert_eq!(s.push_cost(100), s.push_cost(1));
        assert!(s.pull_cost(100) > s.pull_cost(10));
    }
}
