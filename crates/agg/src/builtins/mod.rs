//! Built-in aggregate functions (paper §2.1: "sum, max, min, top-k, etc.").
//!
//! | Aggregate | PAO | duplicate-insensitive | subtractable | H(k) | L(k) |
//! |---|---|---|---|---|---|
//! | [`Sum`] | running sum | no | yes | ∝1 | ∝k |
//! | [`Count`] | running count | no | yes | ∝1 | ∝k |
//! | [`Avg`] | (sum, count) | no | yes | ∝1 | ∝k |
//! | [`Max`]/[`Min`] | multiset (the paper's "priority queue", §4.2) | yes | no | ∝log₂k | ∝k |
//! | [`TopK`] | frequency map (holistic; generalizes *mode*, §5.1) | no | yes | ∝1 | ∝k |
//! | [`Distinct`] | multiplicity map | no | yes | ∝1 | ∝k |

mod distinct;
mod minmax;
mod numeric;
mod topk;

pub use distinct::Distinct;
pub use minmax::{Max, Min, MultisetPao};
pub use numeric::{Avg, AvgPao, Count, Sum};
pub use topk::{FreqMapPao, TopK};
