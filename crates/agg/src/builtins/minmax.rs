//! MAX and MIN — duplicate-insensitive aggregates over an ordered multiset.
//!
//! The paper (§4.2) models MAX with a priority queue at each aggregation
//! node: pushes cost `H(k) ∝ log₂ k`, pulls cost `L(k) ∝ k`. We use an
//! ordered multiset (`BTreeMap<value, multiplicity>`), which supports the
//! retraction needed by sliding-window expiry. MAX/MIN remain
//! *duplicate-insensitive* — double-counting a value along two overlay
//! paths inflates multiplicities but never changes the extremum — and are
//! flagged **not** subtractable, so overlay construction uses duplicate
//! paths (VNM_D) rather than negative edges for them, exactly as the paper
//! prescribes.

use crate::aggregate::{AggProps, Aggregate};
use std::collections::BTreeMap;

/// Ordered multiset PAO shared by [`Max`] and [`Min`].
pub type MultisetPao = BTreeMap<i64, i64>;

fn multiset_insert(p: &mut MultisetPao, v: i64, times: i64) {
    let e = p.entry(v).or_insert(0);
    *e += times;
    if *e == 0 {
        p.remove(&v);
    }
}

fn multiset_merge(into: &mut MultisetPao, other: &MultisetPao, sign: i64) {
    for (&v, &c) in other {
        multiset_insert(into, v, c * sign);
    }
}

macro_rules! extremum_aggregate {
    ($(#[$doc:meta])* $name:ident, $strname:literal, $pick:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;

        impl Aggregate for $name {
            type Partial = MultisetPao;
            type Output = Option<i64>;

            fn name(&self) -> &'static str {
                $strname
            }
            fn empty(&self) -> MultisetPao {
                MultisetPao::new()
            }
            #[inline]
            fn insert(&self, p: &mut MultisetPao, v: i64) {
                multiset_insert(p, v, 1);
            }
            #[inline]
            fn remove(&self, p: &mut MultisetPao, v: i64) {
                multiset_insert(p, v, -1);
            }
            fn merge(&self, into: &mut MultisetPao, other: &MultisetPao) {
                multiset_merge(into, other, 1);
            }
            fn unmerge(&self, into: &mut MultisetPao, other: &MultisetPao) {
                multiset_merge(into, other, -1);
            }
            fn finalize(&self, p: &MultisetPao) -> Option<i64> {
                p.iter().filter(|(_, &c)| c > 0).map(|(&v, _)| v).$pick()
            }
            fn props(&self) -> AggProps {
                AggProps {
                    duplicate_insensitive: true,
                    subtractable: false,
                }
            }
            fn push_cost(&self, k: usize) -> f64 {
                ((k.max(2)) as f64).log2()
            }
            fn pull_cost(&self, k: usize) -> f64 {
                k as f64
            }
            fn partial_size_bytes(&self, p: &MultisetPao) -> usize {
                std::mem::size_of::<MultisetPao>() + p.len() * 32
            }
            fn wire_hooks(&self) -> Option<crate::wire::WireHooks<Self>> {
                Some(crate::wire::WireHooks::auto($strname))
            }
        }
    };
}

extremum_aggregate!(
    /// MAX over the in-window values of the neighborhood; `None` when empty.
    Max,
    "MAX",
    last
);
extremum_aggregate!(
    /// MIN over the in-window values of the neighborhood; `None` when empty.
    Min,
    "MIN",
    next
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_basic() {
        let m = Max;
        let mut p = m.empty();
        assert_eq!(m.finalize(&p), None);
        for v in [5, 1, 9, 9, 3] {
            m.insert(&mut p, v);
        }
        assert_eq!(m.finalize(&p), Some(9));
        m.remove(&mut p, 9);
        assert_eq!(m.finalize(&p), Some(9), "duplicate 9 still present");
        m.remove(&mut p, 9);
        assert_eq!(m.finalize(&p), Some(5));
    }

    #[test]
    fn min_basic() {
        let m = Min;
        let mut p = m.empty();
        for v in [5, 1, 9] {
            m.insert(&mut p, v);
        }
        assert_eq!(m.finalize(&p), Some(1));
        m.remove(&mut p, 1);
        assert_eq!(m.finalize(&p), Some(5));
    }

    #[test]
    fn duplicate_paths_do_not_change_extremum() {
        // Simulate a duplicate-insensitive overlay double-delivering writer
        // values: the multiset counts inflate but the max is unchanged.
        let m = Max;
        let mut once = m.empty();
        let mut twice = m.empty();
        for v in [4, 7, 2] {
            m.insert(&mut once, v);
            m.insert(&mut twice, v);
            m.insert(&mut twice, v);
        }
        assert_eq!(m.finalize(&once), m.finalize(&twice));
        // ... and double-retraction on update stays consistent.
        m.remove(&mut twice, 7);
        m.remove(&mut twice, 7);
        m.insert(&mut twice, 1);
        m.insert(&mut twice, 1);
        assert_eq!(m.finalize(&twice), Some(4));
    }

    #[test]
    fn merge_unmerge_roundtrip() {
        let m = Max;
        let mut a = m.empty();
        m.insert(&mut a, 3);
        let mut b = m.empty();
        m.insert(&mut b, 10);
        m.insert(&mut b, 3);
        m.merge(&mut a, &b);
        assert_eq!(m.finalize(&a), Some(10));
        m.unmerge(&mut a, &b);
        assert_eq!(m.finalize(&a), Some(3));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn properties_match_paper() {
        assert!(Max.props().duplicate_insensitive);
        assert!(!Max.props().subtractable);
        // H(k) ∝ log2(k): grows but sublinearly.
        assert!(Max.push_cost(1024) > Max.push_cost(4));
        assert!(Max.push_cost(1024) < Max.pull_cost(1024));
    }
}
