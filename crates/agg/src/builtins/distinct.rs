//! DISTINCT — the number of distinct values among the inputs.
//!
//! Kept as a multiplicity map so retraction (window expiry) and negative
//! edges both work exactly; the *set*-based variant the paper calls UNIQUE
//! would be duplicate-insensitive but lossy under retraction, so we expose
//! the exact group-structured form.

use crate::aggregate::{AggProps, Aggregate};
use eagr_util::FastMap;

/// COUNT(DISTINCT) over in-window values.
#[derive(Clone, Copy, Debug, Default)]
pub struct Distinct;

impl Aggregate for Distinct {
    type Partial = FastMap<i64, i64>;
    type Output = usize;

    fn name(&self) -> &'static str {
        "DISTINCT"
    }
    fn empty(&self) -> Self::Partial {
        FastMap::default()
    }
    #[inline]
    fn insert(&self, p: &mut Self::Partial, v: i64) {
        let e = p.entry(v).or_insert(0);
        *e += 1;
        if *e == 0 {
            p.remove(&v);
        }
    }
    #[inline]
    fn remove(&self, p: &mut Self::Partial, v: i64) {
        let e = p.entry(v).or_insert(0);
        *e -= 1;
        if *e == 0 {
            p.remove(&v);
        }
    }
    fn merge(&self, into: &mut Self::Partial, other: &Self::Partial) {
        for (&v, &c) in other {
            let e = into.entry(v).or_insert(0);
            *e += c;
            if *e == 0 {
                into.remove(&v);
            }
        }
    }
    fn unmerge(&self, into: &mut Self::Partial, other: &Self::Partial) {
        for (&v, &c) in other {
            let e = into.entry(v).or_insert(0);
            *e -= c;
            if *e == 0 {
                into.remove(&v);
            }
        }
    }
    fn finalize(&self, p: &Self::Partial) -> usize {
        p.values().filter(|&&c| c > 0).count()
    }
    fn props(&self) -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }
    fn push_cost(&self, _k: usize) -> f64 {
        3.0
    }
    fn pull_cost(&self, k: usize) -> f64 {
        6.0 * k as f64
    }
    fn partial_size_bytes(&self, p: &Self::Partial) -> usize {
        std::mem::size_of::<Self::Partial>() + p.capacity() * 24
    }
    fn wire_hooks(&self) -> Option<crate::wire::WireHooks<Self>> {
        Some(crate::wire::WireHooks::auto("DISTINCT"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct() {
        let d = Distinct;
        let mut p = d.empty();
        for v in [1, 1, 2, 3, 3, 3] {
            d.insert(&mut p, v);
        }
        assert_eq!(d.finalize(&p), 3);
    }

    #[test]
    fn retraction_exact() {
        let d = Distinct;
        let mut p = d.empty();
        d.insert(&mut p, 5);
        d.insert(&mut p, 5);
        d.remove(&mut p, 5);
        assert_eq!(d.finalize(&p), 1, "one copy of 5 remains");
        d.remove(&mut p, 5);
        assert_eq!(d.finalize(&p), 0);
        assert!(p.is_empty(), "empty map after full retraction");
    }

    #[test]
    fn merge_unmerge_inverse() {
        let d = Distinct;
        let mut a = d.empty();
        d.insert(&mut a, 1);
        let mut b = d.empty();
        d.insert(&mut b, 1);
        d.insert(&mut b, 2);
        d.merge(&mut a, &b);
        assert_eq!(d.finalize(&a), 2);
        d.unmerge(&mut a, &b);
        assert_eq!(d.finalize(&a), 1);
    }
}
