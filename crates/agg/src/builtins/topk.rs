//! TOP-K — the k most frequent values among the inputs (paper §5.1: "TOP-K
//! asks for the k most frequent values among the input values, and is a
//! holistic aggregate ... a generalization of mode, not max").
//!
//! The PAO is a full frequency map — holistic aggregates cannot be
//! summarized losslessly in sublinear state — which makes TOP-K exactly the
//! computationally expensive aggregate for which the paper reports the
//! biggest overlay wins (Fig 14a). Frequency maps form a group under
//! pointwise addition, so TOP-K *is* subtractable (negative edges are
//! permitted) but not duplicate-insensitive (double-counting corrupts
//! frequencies).

use crate::aggregate::{AggProps, Aggregate};
use eagr_util::FastMap;

/// Frequency-map PAO of [`TopK`].
pub type FreqMapPao = FastMap<i64, i64>;

/// TOP-K most frequent values.
#[derive(Clone, Copy, Debug)]
pub struct TopK {
    /// How many (value, count) pairs `finalize` reports.
    pub k: usize,
}

impl TopK {
    /// Top-k with the given result size.
    pub fn new(k: usize) -> Self {
        Self { k }
    }
}

impl Default for TopK {
    fn default() -> Self {
        Self { k: 10 }
    }
}

fn bump(p: &mut FreqMapPao, v: i64, delta: i64) {
    let e = p.entry(v).or_insert(0);
    *e += delta;
    if *e == 0 {
        p.remove(&v);
    }
}

impl Aggregate for TopK {
    type Partial = FreqMapPao;
    type Output = Vec<(i64, i64)>;

    fn name(&self) -> &'static str {
        "TOP-K"
    }
    fn empty(&self) -> FreqMapPao {
        FreqMapPao::default()
    }
    #[inline]
    fn insert(&self, p: &mut FreqMapPao, v: i64) {
        bump(p, v, 1);
    }
    #[inline]
    fn remove(&self, p: &mut FreqMapPao, v: i64) {
        bump(p, v, -1);
    }
    fn merge(&self, into: &mut FreqMapPao, other: &FreqMapPao) {
        for (&v, &c) in other {
            bump(into, v, c);
        }
    }
    fn unmerge(&self, into: &mut FreqMapPao, other: &FreqMapPao) {
        for (&v, &c) in other {
            bump(into, v, -c);
        }
    }
    /// The k most frequent values, ordered by descending count then
    /// ascending value (deterministic tie-break).
    fn finalize(&self, p: &FreqMapPao) -> Vec<(i64, i64)> {
        let mut items: Vec<(i64, i64)> = p
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&v, &c)| (v, c))
            .collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(self.k);
        items
    }
    fn props(&self) -> AggProps {
        AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        }
    }
    fn push_cost(&self, _k: usize) -> f64 {
        // One hash-map update per push, but with a larger constant than SUM:
        // the calibration experiments put a map bump at roughly 4× an
        // integer add.
        4.0
    }
    fn pull_cost(&self, k: usize) -> f64 {
        // Merging k frequency maps plus a final sort; dominated by the k
        // merges with a map-sized constant.
        8.0 * k as f64
    }
    fn partial_size_bytes(&self, p: &FreqMapPao) -> usize {
        std::mem::size_of::<FreqMapPao>() + p.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top2_of_stream() {
        let t = TopK::new(2);
        let mut p = t.empty();
        for v in [1, 2, 2, 3, 3, 3, 4] {
            t.insert(&mut p, v);
        }
        assert_eq!(t.finalize(&p), vec![(3, 3), (2, 2)]);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let t = TopK::new(3);
        let mut p = t.empty();
        for v in [5, 5, 1, 1, 9] {
            t.insert(&mut p, v);
        }
        assert_eq!(t.finalize(&p), vec![(1, 2), (5, 2), (9, 1)]);
    }

    #[test]
    fn remove_shifts_ranking() {
        let t = TopK::new(1);
        let mut p = t.empty();
        for v in [7, 7, 8] {
            t.insert(&mut p, v);
        }
        assert_eq!(t.finalize(&p), vec![(7, 2)]);
        t.remove(&mut p, 7);
        t.insert(&mut p, 8);
        assert_eq!(t.finalize(&p), vec![(8, 2)]);
    }

    #[test]
    fn merge_and_unmerge_are_inverse() {
        let t = TopK::new(10);
        let mut a = t.empty();
        for v in [1, 1, 2] {
            t.insert(&mut a, v);
        }
        let snapshot = t.finalize(&a);
        let mut b = t.empty();
        for v in [2, 3, 3] {
            t.insert(&mut b, v);
        }
        t.merge(&mut a, &b);
        assert_eq!(t.finalize(&a), vec![(1, 2), (2, 2), (3, 2)]);
        t.unmerge(&mut a, &b);
        assert_eq!(t.finalize(&a), snapshot);
        assert!(!a.contains_key(&3), "zero-count entries dropped");
    }

    #[test]
    fn k_larger_than_support() {
        let t = TopK::new(100);
        let mut p = t.empty();
        t.insert(&mut p, 42);
        assert_eq!(t.finalize(&p), vec![(42, 1)]);
    }

    #[test]
    fn properties() {
        assert!(TopK::new(5).props().subtractable);
        assert!(!TopK::new(5).props().duplicate_insensitive);
    }
}
