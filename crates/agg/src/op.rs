//! Elementary delta operations flowing through the overlay.
//!
//! All built-in PAOs are homomorphic images of the multiset of in-window raw
//! values, so the execution engine propagates elementary `Insert`/`Remove`
//! ops through push-annotated overlay nodes instead of old/new PAO pairs
//! (see DESIGN.md, "Delta-op execution"). Crossing a *negative* overlay edge
//! flips the op's sign — that is exactly the "subtract the contribution"
//! semantics of §2.2.1.

/// Edge sign in the overlay: positive edges contribute, negative edges
/// subtract (paper §2.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Normal contributing edge.
    Pos,
    /// Negative edge: the upstream aggregate is subtracted downstream.
    Neg,
}

impl Sign {
    /// Compose two signs (crossing a negative edge flips polarity).
    #[inline]
    pub fn compose(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Pos, s) | (s, Sign::Pos) => s,
            (Sign::Neg, Sign::Neg) => Sign::Pos,
        }
    }

    /// True for [`Sign::Neg`].
    #[inline]
    pub fn is_negative(self) -> bool {
        matches!(self, Sign::Neg)
    }
}

/// An elementary update to the multiset of in-window values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// A value entered a window.
    Insert(i64),
    /// A value left a window.
    Remove(i64),
}

impl DeltaOp {
    /// The op as seen across an edge of the given sign.
    #[inline]
    pub fn signed(self, sign: Sign) -> DeltaOp {
        match sign {
            Sign::Pos => self,
            Sign::Neg => self.flip(),
        }
    }

    /// Insert ↔ Remove.
    #[inline]
    pub fn flip(self) -> DeltaOp {
        match self {
            DeltaOp::Insert(v) => DeltaOp::Remove(v),
            DeltaOp::Remove(v) => DeltaOp::Insert(v),
        }
    }

    /// The raw value carried by the op.
    #[inline]
    pub fn value(self) -> i64 {
        match self {
            DeltaOp::Insert(v) | DeltaOp::Remove(v) => v,
        }
    }

    /// Apply this op to a PAO through an aggregate.
    #[inline]
    pub fn apply<A: crate::Aggregate>(self, agg: &A, p: &mut A::Partial) {
        match self {
            DeltaOp::Insert(v) => agg.insert(p, v),
            DeltaOp::Remove(v) => agg.remove(p, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::Sum;
    use crate::Aggregate;

    #[test]
    fn sign_composition() {
        assert_eq!(Sign::Pos.compose(Sign::Pos), Sign::Pos);
        assert_eq!(Sign::Pos.compose(Sign::Neg), Sign::Neg);
        assert_eq!(Sign::Neg.compose(Sign::Pos), Sign::Neg);
        assert_eq!(Sign::Neg.compose(Sign::Neg), Sign::Pos);
    }

    #[test]
    fn flip_roundtrip() {
        let op = DeltaOp::Insert(5);
        assert_eq!(op.flip(), DeltaOp::Remove(5));
        assert_eq!(op.flip().flip(), op);
        assert_eq!(op.signed(Sign::Neg), DeltaOp::Remove(5));
        assert_eq!(op.signed(Sign::Pos), op);
    }

    #[test]
    fn apply_through_aggregate() {
        let s = Sum;
        let mut p = s.empty();
        DeltaOp::Insert(10).apply(&s, &mut p);
        DeltaOp::Insert(5).apply(&s, &mut p);
        DeltaOp::Remove(10).apply(&s, &mut p);
        assert_eq!(s.finalize(&p), 5);
    }
}
