//! Push/pull cost functions `H(k)` and `L(k)` (paper §4.2).
//!
//! `H(k)` is the average cost of one push into an aggregation node with `k`
//! inputs and `L(k)` the average cost of one pull from it. The paper assumes
//! they are "either provided, or are computed through a calibration process
//! where we invoke the aggregation function for a range of different inputs
//! and learn the H() and L() functions" — [`calibrate`] implements that
//! process, fitting the scale of an assumed shape (constant / logarithmic /
//! linear) by timing the aggregate's own operations.

use crate::aggregate::Aggregate;
use std::time::Instant;

/// A parametric cost curve in the fan-in `k`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostFn {
    /// `cost = a` (e.g. SUM pushes).
    Constant(f64),
    /// `cost = a · log₂(max(k, 2))` (e.g. MAX pushes via a priority queue).
    Log(f64),
    /// `cost = a · k` (pulls of the built-ins).
    Linear(f64),
}

impl CostFn {
    /// Evaluate the curve at fan-in `k`.
    #[inline]
    pub fn eval(&self, k: usize) -> f64 {
        match *self {
            CostFn::Constant(a) => a,
            CostFn::Log(a) => a * (k.max(2) as f64).log2(),
            CostFn::Linear(a) => a * k as f64,
        }
    }

    /// Scale the curve by a factor (used to sweep push:pull cost ratios,
    /// Fig 13c).
    pub fn scaled(&self, factor: f64) -> CostFn {
        match *self {
            CostFn::Constant(a) => CostFn::Constant(a * factor),
            CostFn::Log(a) => CostFn::Log(a * factor),
            CostFn::Linear(a) => CostFn::Linear(a * factor),
        }
    }
}

/// The (H, L) pair used by dataflow decisions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// `H(k)`: cost of one push.
    pub push: CostFn,
    /// `L(k)`: cost of one pull.
    pub pull: CostFn,
}

impl CostModel {
    /// `H(k)`.
    #[inline]
    pub fn push_cost(&self, k: usize) -> f64 {
        self.push.eval(k)
    }

    /// `L(k)`.
    #[inline]
    pub fn pull_cost(&self, k: usize) -> f64 {
        self.pull.eval(k)
    }

    /// Take `H`/`L` directly from an aggregate's declared costs, sampled at
    /// representative fan-ins to recover the scale of its declared shape.
    pub fn from_aggregate<A: Aggregate>(agg: &A) -> CostModel {
        // Recover the constants by probing the declared curves.
        let h1 = agg.push_cost(2);
        let h2 = agg.push_cost(1024);
        let push = if (h2 - h1).abs() < 1e-9 {
            CostFn::Constant(h1)
        } else {
            // log2(1024)=10, log2(2)=1: solve a·log2(k).
            CostFn::Log((h2 - h1) / 9.0 * 1.0f64.max(1.0)).scaled(1.0)
        };
        let l1 = agg.pull_cost(1);
        let pull = CostFn::Linear(l1.max(1e-9));
        CostModel { push, pull }
    }

    /// The paper's illustrative model for SUM: `H(k) = 1`, `L(k) = k`
    /// (used in Figs 5 and 7).
    pub fn unit_sum() -> CostModel {
        CostModel {
            push: CostFn::Constant(1.0),
            pull: CostFn::Linear(1.0),
        }
    }
}

/// Calibrate `H` and `L` for an aggregate by timing its own operations
/// (paper §4.2's "calibration process").
///
/// For each fan-in `k` in `fan_ins` the routine times (a) one `insert` into
/// a PAO built over `k` values — a push — and (b) merging `k` singleton PAOs
/// — a pull. It then fits the scale of the aggregate's declared shape by
/// least squares and returns the fitted [`CostModel`] with costs in
/// nanoseconds.
pub fn calibrate<A: Aggregate>(agg: &A, fan_ins: &[usize], reps: usize) -> CostModel {
    assert!(!fan_ins.is_empty() && reps > 0);
    let mut push_samples = Vec::with_capacity(fan_ins.len());
    let mut pull_samples = Vec::with_capacity(fan_ins.len());

    for &k in fan_ins {
        // Build a PAO over k values and singleton PAOs for merging.
        let mut base = agg.empty();
        let singles: Vec<A::Partial> = (0..k)
            .map(|i| {
                let mut s = agg.empty();
                agg.insert(&mut s, i as i64 % 17);
                agg.insert(&mut base, i as i64 % 17);
                s
            })
            .collect();

        let t0 = Instant::now();
        for r in 0..reps {
            agg.insert(&mut base, (r % 17) as i64);
            agg.remove(&mut base, (r % 17) as i64);
        }
        // Each rep did an insert+remove pair; halve for a single push.
        let push_ns = t0.elapsed().as_nanos() as f64 / (2 * reps) as f64;

        let t1 = Instant::now();
        for _ in 0..reps {
            let mut acc = agg.empty();
            for s in &singles {
                agg.merge(&mut acc, s);
            }
            std::hint::black_box(&acc);
        }
        let pull_ns = t1.elapsed().as_nanos() as f64 / reps as f64;

        push_samples.push((k, push_ns));
        pull_samples.push((k, pull_ns));
    }

    // Fit the scale of the declared shapes by least squares on the basis
    // function: a = Σ(y·b) / Σ(b²) where b is the shape evaluated at k.
    let declared_push_varies =
        (agg.push_cost(fan_ins[fan_ins.len() - 1]) - agg.push_cost(fan_ins[0])).abs() > 1e-9;
    let push = if declared_push_varies {
        CostFn::Log(fit_scale(&push_samples, |k| (k.max(2) as f64).log2()))
    } else {
        CostFn::Constant(
            push_samples.iter().map(|&(_, y)| y).sum::<f64>() / push_samples.len() as f64,
        )
    };
    let pull = CostFn::Linear(fit_scale(&pull_samples, |k| k as f64));
    CostModel { push, pull }
}

fn fit_scale(samples: &[(usize, f64)], basis: impl Fn(usize) -> f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(k, y) in samples {
        let b = basis(k);
        num += y * b;
        den += b * b;
    }
    if den == 0.0 {
        1.0
    } else {
        (num / den).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::{Max, Sum};

    #[test]
    fn cost_fn_shapes() {
        assert_eq!(CostFn::Constant(2.0).eval(1000), 2.0);
        assert_eq!(CostFn::Linear(2.0).eval(10), 20.0);
        assert!((CostFn::Log(1.0).eval(1024) - 10.0).abs() < 1e-12);
        assert!(
            (CostFn::Log(1.0).eval(0) - 1.0).abs() < 1e-12,
            "clamped at k=2"
        );
    }

    #[test]
    fn scaled() {
        assert_eq!(CostFn::Linear(1.0).scaled(3.0).eval(2), 6.0);
        assert_eq!(CostFn::Constant(1.0).scaled(0.5).eval(9), 0.5);
    }

    #[test]
    fn unit_sum_matches_paper_figures() {
        // Fig 5 uses H(k)=1, L(k)=k.
        let m = CostModel::unit_sum();
        assert_eq!(m.push_cost(60), 1.0);
        assert_eq!(m.pull_cost(60), 60.0);
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let m = calibrate(&Sum, &[1, 8, 64], 200);
        assert!(m.push_cost(10) > 0.0);
        assert!(m.pull_cost(10) > 0.0);
        // Pull of a 64-input node costs more than of a 1-input node.
        assert!(m.pull_cost(64) > m.pull_cost(1));
    }

    #[test]
    fn calibration_shape_follows_declaration() {
        let sum = calibrate(&Sum, &[2, 16, 128], 100);
        assert!(matches!(sum.push, CostFn::Constant(_)), "SUM push is O(1)");
        let max = calibrate(&Max, &[2, 16, 128], 100);
        assert!(matches!(max.push, CostFn::Log(_)), "MAX push is O(log k)");
    }

    #[test]
    fn fit_scale_recovers_linear_coefficient() {
        let samples: Vec<(usize, f64)> = (1..=10).map(|k| (k, 3.0 * k as f64)).collect();
        let a = fit_scale(&samples, |k| k as f64);
        assert!((a - 3.0).abs() < 1e-9);
    }
}
