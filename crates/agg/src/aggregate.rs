//! The user-defined aggregate API (paper §2.2.3).

/// Structural properties of an aggregate that overlay construction exploits
/// (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AggProps {
    /// The aggregate tolerates a writer contributing along multiple
    /// overlay paths (MAX, MIN, UNIQUE): enables the denser overlays of
    /// VNM_D (§3.2.4).
    pub duplicate_insensitive: bool,
    /// The aggregate supports efficient subtraction of a contribution
    /// (SUM, COUNT, frequency-map TOP-K): enables negative edges / VNM_N
    /// (§3.2.3).
    pub subtractable: bool,
}

/// An aggregate function `F` with its partial aggregate object (PAO) algebra.
///
/// Stream values are `i64` (the paper assumes homogeneous content streams;
/// §2.1 notes relaxing this is straightforward — for TOP-K the value is the
/// *item* being counted). A PAO must represent the multiset of in-window
/// values it has absorbed faithfully enough that:
///
/// * `insert`/`remove` are exact inverses,
/// * `merge` is commutative and associative,
/// * `unmerge` inverts `merge` **when [`AggProps::subtractable`]**,
/// * `finalize` depends only on the represented multiset (so that, for
///   duplicate-insensitive aggregates, double-counting a writer along two
///   overlay paths cannot change the answer).
///
/// These laws are what the overlay-equivalence property tests check.
pub trait Aggregate: Send + Sync + 'static {
    /// Partial aggregate object maintained at overlay nodes.
    type Partial: Clone + Send + Sync + 'static;
    /// Final answer type returned to the querier. `Send` so shard-executed
    /// reads can return answers across worker threads.
    type Output: PartialEq + Clone + std::fmt::Debug + Send;

    /// Human-readable name ("SUM", "MAX", ...).
    fn name(&self) -> &'static str;

    /// INITIALIZE: the PAO over zero inputs (identity of `merge`).
    fn empty(&self) -> Self::Partial;

    /// Absorb one raw stream value.
    fn insert(&self, p: &mut Self::Partial, v: i64);

    /// Retract one raw stream value (window expiry). The value is guaranteed
    /// to have been inserted before.
    fn remove(&self, p: &mut Self::Partial, v: i64);

    /// Merge another PAO into `into`.
    fn merge(&self, into: &mut Self::Partial, other: &Self::Partial);

    /// Subtract a previously merged PAO from `into` (negative edges).
    ///
    /// Only called when [`AggProps::subtractable`] is set, except that
    /// implementations whose representation happens to support retraction
    /// (e.g. the multiset behind MAX) may also be exercised by window
    /// expiry paths.
    fn unmerge(&self, into: &mut Self::Partial, other: &Self::Partial);

    /// The paper's `UPDATE(PAO, PAO_old, PAO_new)`: one input changed from
    /// `old` to `new`. Default = `unmerge(old); merge(new)`.
    fn update(&self, p: &mut Self::Partial, old: &Self::Partial, new: &Self::Partial) {
        self.unmerge(p, old);
        self.merge(p, new);
    }

    /// FINALIZE: compute the answer from the PAO.
    fn finalize(&self, p: &Self::Partial) -> Self::Output;

    /// Structural properties (duplicate insensitivity, subtractability).
    fn props(&self) -> AggProps;

    /// `H(k)`: average cost of one push into an aggregation node with `k`
    /// inputs, in abstract cost units (§4.2). E.g. `∝ 1` for SUM,
    /// `∝ log₂ k` for MAX's priority queue.
    fn push_cost(&self, k: usize) -> f64;

    /// `L(k)`: average cost of one pull at an aggregation node with `k`
    /// inputs (`∝ k` for the built-ins).
    fn pull_cost(&self, k: usize) -> f64;

    /// Approximate heap size of a PAO in bytes (memory accounting, Fig 10b).
    fn partial_size_bytes(&self, _p: &Self::Partial) -> usize {
        std::mem::size_of::<Self::Partial>()
    }

    /// Wire codecs for this aggregate's `Partial`/`Output` types, or `None`
    /// if the aggregate cannot cross a process boundary. The in-process
    /// sharded transport never consults this; the Unix-socket transport
    /// refuses to launch without it. All builtins except `TopK` return
    /// hooks.
    fn wire_hooks(&self) -> Option<crate::wire::WireHooks<Self>>
    where
        Self: Sized,
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal user-defined aggregate exercising the default `update`:
    /// counts values, implemented outside `builtins` exactly the way a
    /// library user would.
    struct EvenCount;

    impl Aggregate for EvenCount {
        type Partial = i64;
        type Output = i64;

        fn name(&self) -> &'static str {
            "EVEN_COUNT"
        }
        fn empty(&self) -> i64 {
            0
        }
        fn insert(&self, p: &mut i64, v: i64) {
            if v % 2 == 0 {
                *p += 1;
            }
        }
        fn remove(&self, p: &mut i64, v: i64) {
            if v % 2 == 0 {
                *p -= 1;
            }
        }
        fn merge(&self, into: &mut i64, other: &i64) {
            *into += *other;
        }
        fn unmerge(&self, into: &mut i64, other: &i64) {
            *into -= *other;
        }
        fn finalize(&self, p: &i64) -> i64 {
            *p
        }
        fn props(&self) -> AggProps {
            AggProps {
                duplicate_insensitive: false,
                subtractable: true,
            }
        }
        fn push_cost(&self, _k: usize) -> f64 {
            1.0
        }
        fn pull_cost(&self, k: usize) -> f64 {
            k as f64
        }
    }

    #[test]
    fn user_defined_aggregate_via_trait() {
        let a = EvenCount;
        let mut p = a.empty();
        for v in [1, 2, 3, 4, 6] {
            a.insert(&mut p, v);
        }
        assert_eq!(a.finalize(&p), 3);
        a.remove(&mut p, 4);
        assert_eq!(a.finalize(&p), 2);
    }

    #[test]
    fn default_update_is_unmerge_then_merge() {
        let a = EvenCount;
        let mut acc = a.empty();
        let mut old = a.empty();
        a.insert(&mut old, 2); // old input PAO: one even
        a.merge(&mut acc, &old);
        let mut new = a.empty();
        a.insert(&mut new, 2);
        a.insert(&mut new, 4); // new input PAO: two evens
        a.update(&mut acc, &old, &new);
        assert_eq!(a.finalize(&acc), 2);
    }
}
