//! Sliding windows over content streams (paper §2.1).
//!
//! A query's window `w` is either *tuple-based* (the last `c` updates of
//! each writer) or *time-based* (updates within the last `T` time units).
//! Each writer maintains a [`WindowBuffer`]; a write produces the inserted
//! value plus any values that simultaneously expire, and time passing can
//! expire values on its own (the engine propagates both as
//! [`DeltaOp`](crate::DeltaOp)s).
//!
//! The paper's running example uses `c = 1` ("the most recent value written
//! by each neighbor"), which is [`WindowSpec::Tuple`]`(1)`.

use std::collections::VecDeque;

/// Sliding-window specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep the last `c` values (tuple/count-based). `c ≥ 1`.
    Tuple(usize),
    /// Keep values with timestamp `> now − duration` (time-based).
    Time(u64),
    /// Keep everything (landmark window / running aggregate).
    Unbounded,
}

impl WindowSpec {
    /// Expected number of in-window values for cost modeling (§4.2 assigns
    /// a writer `w` inputs where `w` is the average window fill).
    ///
    /// `avg_write_interval` is the mean time between two writes of one
    /// writer; `stream_horizon` is the stream length (in the same time
    /// units) the plan is expected to serve. A landmark window
    /// ([`WindowSpec::Unbounded`]) never expires anything, so its fill is
    /// the writer's entire history — writer rate × stream horizon — not the
    /// single value it was previously modeled as holding (which made the §4
    /// cost model wildly underestimate the pull cost of running
    /// aggregates).
    pub fn expected_size(&self, avg_write_interval: f64, stream_horizon: f64) -> f64 {
        match self {
            WindowSpec::Tuple(c) => *c as f64,
            WindowSpec::Time(t) => {
                if avg_write_interval <= 0.0 {
                    1.0
                } else {
                    (*t as f64 / avg_write_interval).max(1.0)
                }
            }
            WindowSpec::Unbounded => {
                if avg_write_interval <= 0.0 {
                    1.0
                } else {
                    (stream_horizon / avg_write_interval).max(1.0)
                }
            }
        }
    }
}

/// Per-writer buffer of in-window `(timestamp, value)` pairs.
#[derive(Clone, Debug)]
pub struct WindowBuffer {
    spec: WindowSpec,
    buf: VecDeque<(u64, i64)>,
}

impl WindowBuffer {
    /// Empty buffer with the given window semantics.
    pub fn new(spec: WindowSpec) -> Self {
        Self {
            spec,
            buf: VecDeque::new(),
        }
    }

    /// The window spec.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Number of in-window values.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no values are in the window.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterate over in-window values (oldest first).
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        self.buf.iter().map(|&(_, v)| v)
    }

    /// Iterate over in-window `(timestamp, value)` entries (oldest first).
    /// This is the wire-encoding view: [`from_entries`](Self::from_entries)
    /// rebuilds an identical buffer from it on the far side of a socket.
    pub fn entries(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.buf.iter().copied()
    }

    /// Rebuild a buffer from its spec and `(timestamp, value)` entries as
    /// produced by [`entries`](Self::entries) (oldest first). The entries
    /// are installed verbatim — callers must pass a sequence that already
    /// respects the spec, which any [`entries`](Self::entries) output does.
    pub fn from_entries(spec: WindowSpec, entries: impl IntoIterator<Item = (u64, i64)>) -> Self {
        Self {
            spec,
            buf: entries.into_iter().collect(),
        }
    }

    /// Record a write at time `now`; expired values are appended to
    /// `expired`. Timestamps must be non-decreasing across calls.
    pub fn push(&mut self, now: u64, value: i64, expired: &mut Vec<i64>) {
        debug_assert!(self.buf.back().is_none_or(|&(t, _)| t <= now));
        self.buf.push_back((now, value));
        match self.spec {
            WindowSpec::Tuple(c) => {
                while self.buf.len() > c.max(1) {
                    expired.push(self.buf.pop_front().expect("len > c >= 1").1);
                }
            }
            WindowSpec::Time(t) => {
                if let Some(cutoff) = now.checked_sub(t) {
                    self.expire_before(cutoff, expired);
                }
            }
            WindowSpec::Unbounded => {}
        }
    }

    /// Advance time without a write (time-based windows only); expired
    /// values are appended to `expired`.
    pub fn advance(&mut self, now: u64, expired: &mut Vec<i64>) {
        if let WindowSpec::Time(t) = self.spec {
            if let Some(cutoff) = now.checked_sub(t) {
                self.expire_before(cutoff, expired);
            }
        }
    }

    fn expire_before(&mut self, cutoff: u64, expired: &mut Vec<i64>) {
        while let Some(&(t, v)) = self.buf.front() {
            if t <= cutoff {
                self.buf.pop_front();
                expired.push(v);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_window_keeps_last_c() {
        let mut w = WindowBuffer::new(WindowSpec::Tuple(2));
        let mut ex = Vec::new();
        w.push(1, 10, &mut ex);
        w.push(2, 20, &mut ex);
        assert!(ex.is_empty());
        w.push(3, 30, &mut ex);
        assert_eq!(ex, vec![10]);
        assert_eq!(w.values().collect::<Vec<_>>(), vec![20, 30]);
    }

    #[test]
    fn tuple_window_c1_is_latest_value() {
        // The paper's running example: c = 1.
        let mut w = WindowBuffer::new(WindowSpec::Tuple(1));
        let mut ex = Vec::new();
        w.push(1, 5, &mut ex);
        w.push(2, 9, &mut ex);
        assert_eq!(ex, vec![5]);
        assert_eq!(w.values().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn time_window_expiry_on_push() {
        let mut w = WindowBuffer::new(WindowSpec::Time(10));
        let mut ex = Vec::new();
        w.push(0, 1, &mut ex);
        w.push(5, 2, &mut ex);
        w.push(11, 3, &mut ex);
        // cutoff = 11 - 10 = 1: the t=0 value expires.
        assert_eq!(ex, vec![1]);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn time_window_advance_without_write() {
        let mut w = WindowBuffer::new(WindowSpec::Time(10));
        let mut ex = Vec::new();
        w.push(0, 1, &mut ex);
        w.push(2, 2, &mut ex);
        w.advance(100, &mut ex);
        assert_eq!(ex, vec![1, 2]);
        assert!(w.is_empty());
    }

    #[test]
    fn unbounded_never_expires() {
        let mut w = WindowBuffer::new(WindowSpec::Unbounded);
        let mut ex = Vec::new();
        for i in 0..100 {
            w.push(i, i as i64, &mut ex);
        }
        assert!(ex.is_empty());
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn advance_noop_for_tuple_windows() {
        let mut w = WindowBuffer::new(WindowSpec::Tuple(3));
        let mut ex = Vec::new();
        w.push(0, 7, &mut ex);
        w.advance(1_000_000, &mut ex);
        assert!(ex.is_empty());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn expected_size() {
        assert_eq!(WindowSpec::Tuple(10).expected_size(123.0, 1e6), 10.0);
        assert_eq!(WindowSpec::Time(100).expected_size(10.0, 1e6), 10.0);
        assert_eq!(WindowSpec::Time(100).expected_size(1000.0, 1e6), 1.0);
        // Landmark fill = writer rate × stream horizon, not 1.
        assert_eq!(WindowSpec::Unbounded.expected_size(1.0, 10_000.0), 10_000.0);
        assert_eq!(WindowSpec::Unbounded.expected_size(4.0, 10_000.0), 2500.0);
        // Degenerate inputs clamp to one value.
        assert_eq!(WindowSpec::Unbounded.expected_size(0.0, 10_000.0), 1.0);
        assert_eq!(WindowSpec::Unbounded.expected_size(1.0, 0.0), 1.0);
    }
}
