//! [`Wire`] codecs for the graph-layer types that cross process boundaries:
//! node/shard ids, partition strategies, and materialized partitions. The
//! shard-host launch plan ships a full [`Partition`] so every host routes
//! cross-shard deltas with the same map the coordinator holds.

use crate::data_graph::NodeId;
use crate::partition::{Partition, PartitionStrategy, ShardId};
use eagr_util::wire::{Wire, WireError};

impl Wire for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(NodeId(u32::decode(buf)?))
    }
}

impl Wire for ShardId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ShardId(u32::decode(buf)?))
    }
}

impl Wire for PartitionStrategy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PartitionStrategy::Hash => out.push(0),
            PartitionStrategy::Chunk { chunk_size } => {
                out.push(1);
                chunk_size.encode(out);
            }
            PartitionStrategy::EdgeCut => out.push(2),
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(PartitionStrategy::Hash),
            1 => Ok(PartitionStrategy::Chunk {
                chunk_size: usize::decode(buf)?,
            }),
            2 => Ok(PartitionStrategy::EdgeCut),
            tag => Err(WireError::BadTag {
                what: "PartitionStrategy",
                tag,
            }),
        }
    }
}

impl Wire for Partition {
    fn encode(&self, out: &mut Vec<u8>) {
        self.of.encode(out);
        self.shards.encode(out);
        self.strategy.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Partition {
            of: Vec::<ShardId>::decode(buf)?,
            shards: usize::decode(buf)?,
            strategy: PartitionStrategy::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_round_trips() {
        let p = Partition {
            of: vec![ShardId(0), ShardId(2), ShardId(1)],
            shards: 3,
            strategy: PartitionStrategy::Chunk { chunk_size: 64 },
        };
        assert_eq!(Partition::from_wire(&p.to_wire()).unwrap(), p);
        for s in [
            PartitionStrategy::Hash,
            PartitionStrategy::EdgeCut,
            PartitionStrategy::Chunk { chunk_size: 7 },
        ] {
            assert_eq!(PartitionStrategy::from_wire(&s.to_wire()).unwrap(), s);
        }
        assert_eq!(NodeId::from_wire(&NodeId(9).to_wire()).unwrap(), NodeId(9));
    }
}
