//! Neighborhood selection functions `N()` (paper §2.1).
//!
//! `N(v)` produces the list of nodes whose content streams form the input of
//! the ego-centric aggregate at `v`. The paper's running example uses
//! `N(x) = {y | y → x}` (in-neighbors); the framework also supports
//! out-neighbor, undirected, multi-hop (§5.4, Fig 14c evaluates 2-hop), and
//! filtered neighborhoods ("only aggregating over subsets of
//! neighborhoods", §1).

use crate::data_graph::{DataGraph, NodeId};
use std::sync::Arc;

/// Predicate used by [`Neighborhood::Filtered`] to keep a subset of a base
/// neighborhood. Receives `(ego, candidate)`.
pub type NeighborFilter = Arc<dyn Fn(NodeId, NodeId) -> bool + Send + Sync>;

/// A neighborhood selection function.
#[derive(Clone)]
pub enum Neighborhood {
    /// `{y | y → v}` — nodes with an edge *into* `v` (the paper's default).
    In,
    /// `{y | v → y}` — nodes `v` points to (e.g. "follows" feeds).
    Out,
    /// Union of in- and out-neighbors.
    Undirected,
    /// All distinct nodes within `k` hops following incoming edges,
    /// excluding `v` itself. `KHopIn(1)` ≡ `In`.
    KHopIn(usize),
    /// All distinct nodes within `k` hops following outgoing edges.
    KHopOut(usize),
    /// A base neighborhood restricted by a predicate.
    Filtered {
        /// Neighborhood to filter.
        base: Box<Neighborhood>,
        /// Keep `u ∈ base(v)` iff `filter(v, u)`.
        filter: NeighborFilter,
    },
}

impl std::fmt::Debug for Neighborhood {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Neighborhood::In => write!(f, "In"),
            Neighborhood::Out => write!(f, "Out"),
            Neighborhood::Undirected => write!(f, "Undirected"),
            Neighborhood::KHopIn(k) => write!(f, "KHopIn({k})"),
            Neighborhood::KHopOut(k) => write!(f, "KHopOut({k})"),
            Neighborhood::Filtered { base, .. } => write!(f, "Filtered({base:?})"),
        }
    }
}

impl Neighborhood {
    /// Materialize `N(v)` as a deduplicated node list (order unspecified,
    /// `v` never included).
    pub fn select(&self, g: &DataGraph, v: NodeId) -> Vec<NodeId> {
        match self {
            Neighborhood::In => g.in_neighbors(v).to_vec(),
            Neighborhood::Out => g.out_neighbors(v).to_vec(),
            Neighborhood::Undirected => {
                let mut all = g.in_neighbors(v).to_vec();
                for &u in g.out_neighbors(v) {
                    if !all.contains(&u) {
                        all.push(u);
                    }
                }
                all
            }
            Neighborhood::KHopIn(k) => g.in_neighbors_k_hop(v, *k),
            Neighborhood::KHopOut(k) => g.out_neighbors_k_hop(v, *k),
            Neighborhood::Filtered { base, filter } => base
                .select(g, v)
                .into_iter()
                .filter(|&u| filter(v, u))
                .collect(),
        }
    }

    /// Convenience constructor for a filtered neighborhood.
    pub fn filtered(
        base: Neighborhood,
        filter: impl Fn(NodeId, NodeId) -> bool + Send + Sync + 'static,
    ) -> Self {
        Neighborhood::Filtered {
            base: Box::new(base),
            filter: Arc::new(filter),
        }
    }

    /// The hop radius this neighborhood spans (used by incremental overlay
    /// maintenance to bound which readers an edge change can affect).
    pub fn radius(&self) -> usize {
        match self {
            Neighborhood::In | Neighborhood::Out | Neighborhood::Undirected => 1,
            Neighborhood::KHopIn(k) | Neighborhood::KHopOut(k) => *k,
            Neighborhood::Filtered { base, .. } => base.radius(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_graph::paper_example_graph;

    fn sorted(mut v: Vec<NodeId>) -> Vec<u32> {
        v.sort();
        v.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn in_neighborhood_matches_paper() {
        let g = paper_example_graph();
        // N(a) = {c, d, e, f} per Fig 1(b).
        assert_eq!(
            sorted(Neighborhood::In.select(&g, NodeId(0))),
            vec![2, 3, 4, 5]
        );
        // N(g) = everything.
        assert_eq!(
            sorted(Neighborhood::In.select(&g, NodeId(6))),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn out_neighborhood() {
        let g = DataGraph::from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(sorted(Neighborhood::Out.select(&g, NodeId(0))), vec![1, 2]);
        assert!(Neighborhood::Out.select(&g, NodeId(1)).is_empty());
    }

    #[test]
    fn undirected_deduplicates() {
        let g = DataGraph::from_edges(3, &[(0, 1), (1, 0), (2, 0)]);
        assert_eq!(
            sorted(Neighborhood::Undirected.select(&g, NodeId(0))),
            vec![1, 2]
        );
    }

    #[test]
    fn two_hop() {
        let g = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(
            sorted(Neighborhood::KHopIn(2).select(&g, NodeId(3))),
            vec![1, 2]
        );
        assert_eq!(
            sorted(Neighborhood::KHopOut(2).select(&g, NodeId(0))),
            vec![1, 2]
        );
        assert_eq!(Neighborhood::KHopIn(1).select(&g, NodeId(3)).len(), 1);
    }

    #[test]
    fn filtered_neighborhood() {
        let g = paper_example_graph();
        // Keep only even-id neighbors of g.
        let n = Neighborhood::filtered(Neighborhood::In, |_, u| u.0 % 2 == 0);
        assert_eq!(sorted(n.select(&g, NodeId(6))), vec![0, 2, 4]);
    }

    #[test]
    fn radius() {
        assert_eq!(Neighborhood::In.radius(), 1);
        assert_eq!(Neighborhood::KHopIn(3).radius(), 3);
        assert_eq!(
            Neighborhood::filtered(Neighborhood::KHopOut(2), |_, _| true).radius(),
            2
        );
    }
}
