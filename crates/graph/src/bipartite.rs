//! The bipartite writer/reader graph `AG(V', E')` (paper §3.1, Fig 1c).
//!
//! Given a data graph and a query ⟨F, w, N, pred⟩, every node acts as a
//! writer `v_w`, and every node satisfying `pred` contributes a reader `v_r`
//! whose *input list* is `{u_w | u ∈ N(v)}`. The overlay construction
//! algorithms (FP-tree mining, VNM, IOB) all operate on this bipartite view,
//! and the overlay's *sharing index* is defined relative to its edge count.

use crate::data_graph::{DataGraph, NodeId};
use crate::neighborhood::Neighborhood;

/// The bipartite writer/reader graph.
///
/// Writers are identified by their data-graph [`NodeId`]; readers are dense
/// indexes `0..reader_count()` with a mapping back to their data-graph node.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    /// `readers[i]` is the data-graph node of reader `i`.
    readers: Vec<NodeId>,
    /// `inputs[i]` is reader `i`'s input list (deduplicated, sorted).
    inputs: Vec<Vec<NodeId>>,
    /// Number of writer slots (= data-graph id bound).
    writer_bound: usize,
    /// `writer_out_degree[w]` = number of readers whose input list contains
    /// writer `w` (the writer's "frequency of occurrence", used by the
    /// FP-tree sort order, §3.2.1).
    writer_out_degree: Vec<u32>,
    /// Total number of bipartite edges.
    edge_count: usize,
}

impl BipartiteGraph {
    /// Build `AG` from a data graph, a neighborhood function, and a
    /// predicate selecting reader nodes.
    ///
    /// Readers with empty input lists are skipped: they have nothing to
    /// aggregate (matching Fig 1(c), where a reader is present for every
    /// node but a writer only feeds readers it can reach).
    pub fn build(
        g: &DataGraph,
        neighborhood: &Neighborhood,
        pred: impl Fn(NodeId) -> bool,
    ) -> Self {
        let mut readers = Vec::new();
        let mut inputs = Vec::new();
        let writer_bound = g.id_bound();
        let mut writer_out_degree = vec![0u32; writer_bound];
        let mut edge_count = 0;
        for v in g.nodes() {
            if !pred(v) {
                continue;
            }
            let mut list = neighborhood.select(g, v);
            if list.is_empty() {
                continue;
            }
            list.sort_unstable();
            list.dedup();
            for &w in &list {
                writer_out_degree[w.idx()] += 1;
            }
            edge_count += list.len();
            readers.push(v);
            inputs.push(list);
        }
        Self {
            readers,
            inputs,
            writer_bound,
            writer_out_degree,
            edge_count,
        }
    }

    /// Build from explicit reader input lists (used by tests and by overlay
    /// algorithms that synthesize bipartite instances).
    pub fn from_input_lists(writer_bound: usize, lists: Vec<(NodeId, Vec<NodeId>)>) -> Self {
        let mut writer_out_degree = vec![0u32; writer_bound];
        let mut edge_count = 0;
        let mut readers = Vec::with_capacity(lists.len());
        let mut inputs = Vec::with_capacity(lists.len());
        for (r, mut list) in lists {
            list.sort_unstable();
            list.dedup();
            for &w in &list {
                writer_out_degree[w.idx()] += 1;
            }
            edge_count += list.len();
            readers.push(r);
            inputs.push(list);
        }
        Self {
            readers,
            inputs,
            writer_bound,
            writer_out_degree,
            edge_count,
        }
    }

    /// Number of readers.
    pub fn reader_count(&self) -> usize {
        self.readers.len()
    }

    /// Upper bound on writer ids.
    pub fn writer_bound(&self) -> usize {
        self.writer_bound
    }

    /// The data-graph node of reader `i`.
    pub fn reader_node(&self, i: usize) -> NodeId {
        self.readers[i]
    }

    /// Reader `i`'s input list (sorted, deduplicated writer ids).
    pub fn inputs(&self, i: usize) -> &[NodeId] {
        &self.inputs[i]
    }

    /// Number of readers that aggregate writer `w`.
    pub fn writer_out_degree(&self, w: NodeId) -> u32 {
        self.writer_out_degree[w.idx()]
    }

    /// Total bipartite edge count — the denominator of the sharing index.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over `(reader_index, reader_node, input_list)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, NodeId, &[NodeId])> + '_ {
        self.readers
            .iter()
            .enumerate()
            .map(move |(i, &r)| (i, r, self.inputs[i].as_slice()))
    }

    /// Writers that actually feed at least one reader.
    pub fn active_writers(&self) -> Vec<NodeId> {
        (0..self.writer_bound)
            .filter(|&w| self.writer_out_degree[w] > 0)
            .map(|w| NodeId(w as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_graph::paper_example_graph;

    #[test]
    fn paper_example_bipartite() {
        let g = paper_example_graph();
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        // All 7 nodes have nonempty N(v), so all are readers.
        assert_eq!(ag.reader_count(), 7);
        // 35 edges total (sum of input-list sizes).
        assert_eq!(ag.edge_count(), 35);
        // Writer g (node 6) feeds no reader.
        assert_eq!(ag.writer_out_degree(NodeId(6)), 0);
        assert_eq!(ag.active_writers().len(), 6);
        // Writer d (node 3) appears in every input list (self-loop
        // included) → out-degree 7, the top of the FP-tree sort order.
        assert_eq!(ag.writer_out_degree(NodeId(3)), 7);
    }

    #[test]
    fn predicate_filters_readers() {
        let g = paper_example_graph();
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |v| v.0 < 2);
        assert_eq!(ag.reader_count(), 2);
        assert_eq!(ag.edge_count(), 4 + 3); // |N(a)| + |N(b)|
    }

    #[test]
    fn empty_neighborhoods_skipped() {
        let g = DataGraph::from_edges(3, &[(0, 1)]);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        // Only node 1 has an in-neighbor.
        assert_eq!(ag.reader_count(), 1);
        assert_eq!(ag.reader_node(0), NodeId(1));
        assert_eq!(ag.inputs(0), &[NodeId(0)]);
    }

    #[test]
    fn input_lists_deduplicated_and_sorted() {
        let ag = BipartiteGraph::from_input_lists(
            5,
            vec![(NodeId(0), vec![NodeId(3), NodeId(1), NodeId(3), NodeId(2)])],
        );
        assert_eq!(ag.inputs(0), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(ag.edge_count(), 3);
        assert_eq!(ag.writer_out_degree(NodeId(3)), 1);
    }

    #[test]
    fn two_hop_bipartite_is_larger() {
        let g = paper_example_graph();
        let one = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let two = BipartiteGraph::build(&g, &Neighborhood::KHopIn(2), |_| true);
        assert!(two.edge_count() >= one.edge_count());
    }
}
