//! The dynamic data graph `G(V, E)`.
//!
//! Nodes are dense `u32` ids. Deletion uses tombstones so ids stay stable
//! (the overlay and execution engine index by id); adjacency is kept in both
//! directions because ego-centric neighborhoods are most often defined over
//! *in*-neighbors (`N(x) = {y | y → x}`, Fig 1) while traversals and
//! incremental overlay maintenance need out-neighbors too.

use eagr_util::FastSet;
use std::fmt;

/// Identifier of a node in the data graph.
///
/// A plain newtype over `u32`: the paper's largest graphs (hundreds of
/// millions of nodes) still fit, and half-width ids keep adjacency lists and
/// overlay edge lists cache-friendly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A dynamic directed graph with tombstoned deletion.
#[derive(Clone, Default)]
pub struct DataGraph {
    out: Vec<Vec<NodeId>>,
    inc: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    live_nodes: usize,
    edges: usize,
}

impl DataGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Graph with `n` pre-allocated live nodes (ids `0..n`) and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            alive: vec![true; n],
            live_nodes: n,
            edges: 0,
        }
    }

    /// Build a graph from a directed edge list; node count is inferred.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::with_nodes(n);
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Upper bound of node ids ever allocated (including tombstones); useful
    /// for sizing id-indexed arrays.
    pub fn id_bound(&self) -> usize {
        self.out.len()
    }

    /// Whether `v` is a live node.
    pub fn contains(&self, v: NodeId) -> bool {
        v.idx() < self.alive.len() && self.alive[v.idx()]
    }

    /// Add a fresh node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.out.len() as u32);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.alive.push(true);
        self.live_nodes += 1;
        id
    }

    /// Remove a node and all its incident edges.
    ///
    /// # Panics
    /// Panics if `v` is not a live node.
    pub fn remove_node(&mut self, v: NodeId) {
        assert!(self.contains(v), "remove_node: {v:?} not live");
        let outs = std::mem::take(&mut self.out[v.idx()]);
        for w in outs {
            self.inc[w.idx()].retain(|&x| x != v);
            self.edges -= 1;
        }
        let ins = std::mem::take(&mut self.inc[v.idx()]);
        for u in ins {
            self.out[u.idx()].retain(|&x| x != v);
            self.edges -= 1;
        }
        self.alive[v.idx()] = false;
        self.live_nodes -= 1;
    }

    /// Add a directed edge `u → v`. Parallel edges are ignored (returns
    /// `false` if the edge already existed).
    ///
    /// # Panics
    /// Panics if either endpoint is not a live node.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(self.contains(u), "add_edge: {u:?} not live");
        assert!(self.contains(v), "add_edge: {v:?} not live");
        if self.out[u.idx()].contains(&v) {
            return false;
        }
        self.out[u.idx()].push(v);
        self.inc[v.idx()].push(u);
        self.edges += 1;
        true
    }

    /// Add both `u → v` and `v → u` (a symmetric "friendship" edge).
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Remove the directed edge `u → v`; returns `false` if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.contains(u) || !self.contains(v) {
            return false;
        }
        let before = self.out[u.idx()].len();
        self.out[u.idx()].retain(|&x| x != v);
        if self.out[u.idx()].len() == before {
            return false;
        }
        self.inc[v.idx()].retain(|&x| x != u);
        self.edges -= 1;
        true
    }

    /// Whether the edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.contains(u) && self.out[u.idx()].contains(&v)
    }

    /// Out-neighbors of `v` (targets of edges leaving `v`).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.out[v.idx()]
    }

    /// In-neighbors of `v` (sources of edges entering `v`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.inc[v.idx()]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.idx()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v.idx()].len()
    }

    /// Iterator over live node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out[u.idx()].iter().map(move |&v| (u, v)))
    }

    /// Distinct nodes reachable from `v` within `hops` hops following
    /// *incoming* edges (used for k-hop ego networks); excludes `v` itself.
    pub fn in_neighbors_k_hop(&self, v: NodeId, hops: usize) -> Vec<NodeId> {
        self.k_hop(v, hops, /* follow_in */ true)
    }

    /// Distinct nodes reachable from `v` within `hops` hops following
    /// *outgoing* edges; excludes `v` itself.
    pub fn out_neighbors_k_hop(&self, v: NodeId, hops: usize) -> Vec<NodeId> {
        self.k_hop(v, hops, /* follow_in */ false)
    }

    fn k_hop(&self, v: NodeId, hops: usize, follow_in: bool) -> Vec<NodeId> {
        let mut seen = FastSet::default();
        seen.insert(v);
        let mut frontier = vec![v];
        let mut result = Vec::new();
        for _ in 0..hops {
            let mut next = Vec::new();
            for &u in &frontier {
                let nbrs = if follow_in {
                    self.in_neighbors(u)
                } else {
                    self.out_neighbors(u)
                };
                for &w in nbrs {
                    if seen.insert(w) {
                        next.push(w);
                        result.push(w);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        result
    }
}

impl fmt::Debug for DataGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DataGraph({} nodes, {} edges)",
            self.live_nodes, self.edges
        )
    }
}

/// The 7-node running example of the paper (Fig 1a).
///
/// Nodes a..g are ids 0..6; `N(x) = {y | y → x}` gives the input lists of
/// Fig 1(b)-(c). The lists are reverse-engineered from the paper's own
/// numbers: the read results (19, 10, 30, 30, 23, 30, 30) with the final
/// stream values a=4 b=7 c=9 d=3 e=1 f=6, and the FP-tree writer order
/// {d, c, e, f, a, b} (decreasing out-degree 7, 6, 6, 6, 5, 5 with ties
/// broken arbitrarily). Note that c, d, and f carry self-loops (they appear
/// in their own neighborhoods). Exposed here because tests across the
/// workspace reuse it.
pub fn paper_example_graph() -> DataGraph {
    // Edges are directed y → x when y is in N(x):
    //   N(a) = {c, d, e, f}            N(b) = {d, e, f}
    //   N(c) = {a, b, c, d, e, f}      N(d) = {a, b, c, d, e, f}
    //   N(e) = {a, b, c, d}            N(f) = {a, b, c, d, e, f}
    //   N(g) = {a, b, c, d, e, f}
    let (a, b, c, d, e, f, g) = (0, 1, 2, 3, 4, 5, 6);
    let mut edges = Vec::new();
    let inputs: [(u32, &[u32]); 7] = [
        (a, &[c, d, e, f]),
        (b, &[d, e, f]),
        (c, &[a, b, c, d, e, f]),
        (d, &[a, b, c, d, e, f]),
        (e, &[a, b, c, d]),
        (f, &[a, b, c, d, e, f]),
        (g, &[a, b, c, d, e, f]),
    ];
    for (reader, ins) in inputs {
        for &w in ins {
            edges.push((w, reader));
        }
    }
    DataGraph::from_edges(7, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = DataGraph::with_nodes(3);
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(0), NodeId(1)), "parallel edge ignored");
        assert!(g.add_edge(NodeId(1), NodeId(2)));
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.in_neighbors(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn remove_edge() {
        let mut g = DataGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 2);
        assert!(g.in_neighbors(NodeId(1)).is_empty());
    }

    #[test]
    fn remove_node_cleans_adjacency() {
        let mut g = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 1), (3, 1)]);
        g.remove_node(NodeId(1));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.contains(NodeId(1)));
        assert!(g.out_neighbors(NodeId(0)).is_empty());
        assert!(g.in_neighbors(NodeId(2)).is_empty());
        // Ids remain stable; adding a node creates a fresh id.
        let n = g.add_node();
        assert_eq!(n, NodeId(4));
    }

    #[test]
    fn undirected_edge_is_two_directed() {
        let mut g = DataGraph::with_nodes(2);
        g.add_undirected_edge(NodeId(0), NodeId(1));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn k_hop_in_neighbors() {
        // 0 → 1 → 2 → 3; in-neighbors of 3 within 2 hops are {2, 1}.
        let g = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut two_hop = g.in_neighbors_k_hop(NodeId(3), 2);
        two_hop.sort();
        assert_eq!(two_hop, vec![NodeId(1), NodeId(2)]);
        let mut three_hop = g.in_neighbors_k_hop(NodeId(3), 3);
        three_hop.sort();
        assert_eq!(three_hop, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn k_hop_excludes_self_on_cycles() {
        let g = DataGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let hop = g.in_neighbors_k_hop(NodeId(0), 5);
        assert!(!hop.contains(&NodeId(0)));
        assert_eq!(hop.len(), 2);
    }

    #[test]
    fn paper_example_shape() {
        let g = paper_example_graph();
        assert_eq!(g.node_count(), 7);
        // Sum of the input-list sizes: 4+3+6+6+4+6+6 = 35.
        assert_eq!(g.edge_count(), 35);
        // FP-tree writer order check: out-degrees d=7, c=e=f=6, a=b=5
        // reproduce the paper's sort {d, c, e, f, a, b} (ties arbitrary).
        let deg: Vec<usize> = (0..7).map(|v| g.out_degree(NodeId(v))).collect();
        assert_eq!(deg, vec![5, 5, 6, 7, 6, 6, 0]);
        // N(a) = in-neighbors of a = {c, d, e, f}.
        let mut na: Vec<_> = g.in_neighbors(NodeId(0)).to_vec();
        na.sort();
        assert_eq!(na, vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]);
        // g (node 6) writes to nobody: its out-degree is 0.
        assert_eq!(g.out_degree(NodeId(6)), 0);
    }

    #[test]
    fn edges_iterator_consistent() {
        let g = DataGraph::from_edges(5, &[(0, 1), (2, 3), (4, 0)]);
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected.len(), g.edge_count());
    }
}
