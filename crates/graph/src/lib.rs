//! Data model substrate for EAGr (paper §2.1 and §3.1).
//!
//! * [`DataGraph`] — the underlying connection graph `G(V, E)`: a dynamic
//!   directed graph with both out- and in-adjacency, supporting node/edge
//!   additions and deletions (the *structure data stream* `S_G`).
//! * [`Neighborhood`] — the neighborhood selection function `N()` of an
//!   ego-centric query: 1-hop (in / out / undirected), multi-hop, and
//!   filtered variants.
//! * [`BipartiteGraph`] — the directed bipartite writer/reader graph `AG`
//!   derived from a data graph and a query: for each node `v` satisfying the
//!   query predicate there is a reader `v_r` whose input list is
//!   `{u_w | u ∈ N(v)}` (§3.1, Fig 1c).
//! * [`partition`] — node→shard assignment ([`Partitioner`], [`Partition`])
//!   for the sharded engine runtime.

#![forbid(unsafe_code)]

pub mod bipartite;
pub mod csr;
pub mod data_graph;
pub mod neighborhood;
pub mod partition;
pub mod wire;

pub use bipartite::BipartiteGraph;
pub use csr::CsrSnapshot;
pub use data_graph::{paper_example_graph, DataGraph, NodeId};
pub use neighborhood::Neighborhood;
pub use partition::{
    edge_cut_partition, hash_shard, refine_partition, refine_partition_live, AffinityGraph,
    EdgeCutConfig, Partition, PartitionStrategy, Partitioner, RefineConfig, RefineStats, ShardId,
    DEFAULT_CHUNK_SIZE,
};
