//! Node-to-shard partitioning for the sharded engine runtime.
//!
//! The sharded execution model assigns every overlay node to exactly one
//! [`ShardId`]; the worker that owns a shard is the only thread that
//! mutates the PAOs of that shard's nodes, so the hot write path needs no
//! per-PAO locking. This module is deliberately index-based (it maps plain
//! `usize` arena indexes, not a specific id type) so it can partition any
//! arena-allocated node space — the overlay uses it via `OverlayId::idx()`.
//!
//! Two strategies are provided:
//!
//! * [`PartitionStrategy::Hash`] — a multiplicative bit-mix of the index.
//!   Spreads load evenly regardless of id allocation order; baseline
//!   strategy with no locality assumptions.
//! * [`PartitionStrategy::Chunk`] — contiguous blocks of `chunk_size`
//!   indexes land on the same shard, round-robin across shards. Overlay
//!   construction allocates the readers of one VNM chunk (and the partial
//!   nodes feeding them) consecutively, so chunk partitioning co-locates a
//!   partial aggregation node with most of its consumers and turns would-be
//!   cross-shard deltas into local applies.

/// Identifier of one shard in a sharded engine runtime.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// How node indexes are mapped to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Stateless multiplicative hash of the index — uniform spread, no
    /// locality.
    Hash,
    /// Blocks of `chunk_size` consecutive indexes share a shard,
    /// round-robin over shards — exploits the allocation locality of
    /// overlay construction (one VNM chunk ⇒ consecutive ids).
    Chunk {
        /// Number of consecutive indexes per block.
        chunk_size: usize,
    },
}

/// SplitMix64 finalizer: a full-avalanche bit mix, so consecutive indexes
/// land on unrelated shards.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps node indexes to [`ShardId`]s. Pure and deterministic: the same
/// `(shards, strategy)` pair always produces the same mapping, so every
/// component (planner, engine, tests) can re-derive it independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    shards: u32,
    strategy: PartitionStrategy,
}

impl Partitioner {
    /// A partitioner over `shards` shards with the given strategy.
    ///
    /// # Panics
    /// Panics if `shards == 0` or a chunk strategy has `chunk_size == 0`.
    pub fn new(shards: usize, strategy: PartitionStrategy) -> Self {
        assert!(shards > 0, "at least one shard");
        if let PartitionStrategy::Chunk { chunk_size } = strategy {
            assert!(chunk_size > 0, "chunk_size must be positive");
        }
        Self {
            shards: shards as u32,
            strategy,
        }
    }

    /// Hash partitioner over `shards` shards.
    pub fn hash(shards: usize) -> Self {
        Self::new(shards, PartitionStrategy::Hash)
    }

    /// Chunk-locality partitioner over `shards` shards.
    pub fn chunked(shards: usize, chunk_size: usize) -> Self {
        Self::new(shards, PartitionStrategy::Chunk { chunk_size })
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The strategy in use.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Shard owning node index `idx`.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        let s = match self.strategy {
            PartitionStrategy::Hash => mix(idx as u64) % self.shards as u64,
            PartitionStrategy::Chunk { chunk_size } => {
                (idx / chunk_size) as u64 % self.shards as u64
            }
        };
        ShardId(s as u32)
    }

    /// Materialize the mapping for an `n`-node arena.
    pub fn partition(&self, n: usize) -> Partition {
        Partition {
            of: (0..n).map(|i| self.shard_of(i)).collect(),
            shards: self.shard_count(),
            strategy: self.strategy,
        }
    }
}

/// A materialized node→shard assignment for a fixed-size node arena, as
/// produced by [`Partitioner::partition`]. Dataflow plans carry one of
/// these so the execution layer and the planner agree on shard ownership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Shard per node index.
    pub of: Vec<ShardId>,
    /// Number of shards.
    pub shards: usize,
    /// The strategy this partition was derived with.
    pub strategy: PartitionStrategy,
}

impl Partition {
    /// Shard owning node index `idx`.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        self.of[idx]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.of.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Node count per shard (load-balance diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.shards];
        for s in &self.of {
            sizes[s.idx()] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Chunk { chunk_size: 8 },
        ] {
            let a = Partitioner::new(4, strategy).partition(1000);
            let b = Partitioner::new(4, strategy).partition(1000);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_shards_in_range() {
        for shards in 1..9 {
            let p = Partitioner::hash(shards);
            for i in 0..500 {
                assert!(p.shard_of(i).idx() < shards);
            }
            let c = Partitioner::chunked(shards, 16);
            for i in 0..500 {
                assert!(c.shard_of(i).idx() < shards);
            }
        }
    }

    #[test]
    fn hash_spread_is_balanced() {
        let part = Partitioner::hash(8).partition(8000);
        let sizes = part.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 8000);
        for &s in &sizes {
            // Within ±30% of the mean for a decent mixer.
            assert!(s > 700 && s < 1300, "shard size {s} badly unbalanced");
        }
    }

    #[test]
    fn chunk_strategy_keeps_blocks_together() {
        let p = Partitioner::chunked(4, 32);
        for block in 0..10 {
            let first = p.shard_of(block * 32);
            for i in 0..32 {
                assert_eq!(p.shard_of(block * 32 + i), first);
            }
        }
        // Consecutive blocks rotate across shards.
        assert_ne!(p.shard_of(0), p.shard_of(32));
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let p = Partitioner::hash(1);
        for i in 0..100 {
            assert_eq!(p.shard_of(i), ShardId(0));
        }
    }

    #[test]
    fn partition_len_and_sizes_consistent() {
        let part = Partitioner::chunked(3, 5).partition(47);
        assert_eq!(part.len(), 47);
        assert!(!part.is_empty());
        assert_eq!(part.shard_sizes().iter().sum::<usize>(), 47);
    }
}
