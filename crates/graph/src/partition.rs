//! Node-to-shard partitioning for the sharded engine runtime.
//!
//! The sharded execution model assigns every overlay node to exactly one
//! [`ShardId`]; the worker that owns a shard is the only thread that
//! mutates the PAOs of that shard's nodes, so the hot write path needs no
//! per-PAO locking. This module is deliberately index-based (it maps plain
//! `usize` arena indexes, not a specific id type) so it can partition any
//! arena-allocated node space — the overlay uses it via `OverlayId::idx()`.
//!
//! Three strategies are provided:
//!
//! * [`PartitionStrategy::Hash`] — a multiplicative bit-mix of the index.
//!   Spreads load evenly regardless of id allocation order; baseline
//!   strategy with no locality assumptions.
//! * [`PartitionStrategy::Chunk`] — contiguous blocks of `chunk_size`
//!   indexes land on the same shard, round-robin across shards. Overlay
//!   construction allocates the readers of one VNM chunk (and the partial
//!   nodes feeding them) consecutively, so chunk partitioning co-locates a
//!   partial aggregation node with most of its consumers and turns would-be
//!   cross-shard deltas into local applies.
//! * [`PartitionStrategy::EdgeCut`] — structure-aware: minimize the weight
//!   of affinity edges crossing shard boundaries under a balance
//!   constraint, computed by the greedy LDG-style streaming assigner
//!   [`edge_cut_partition`] over an [`AffinityGraph`] (for EAGr, the
//!   overlay's weighted push topology). Not index-derivable: a
//!   [`Partitioner`] cannot be constructed with it — the materialized
//!   [`Partition`] must be built from the affinity view and handed to the
//!   engine.

/// Identifier of one shard in a sharded engine runtime.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Default block size of [`PartitionStrategy::Chunk`]: matches the typical
/// VNM reader-group allocation run, and is the single definition the
/// engine's default config and the planner's auto-scored chunk candidate
/// both use (tune it in one place).
pub const DEFAULT_CHUNK_SIZE: usize = 64;

/// How node indexes are mapped to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Stateless multiplicative hash of the index — uniform spread, no
    /// locality.
    Hash,
    /// Blocks of `chunk_size` consecutive indexes share a shard,
    /// round-robin over shards — exploits the allocation locality of
    /// overlay construction (one VNM chunk ⇒ consecutive ids).
    Chunk {
        /// Number of consecutive indexes per block.
        chunk_size: usize,
    },
    /// Affinity-derived edge-cut assignment ([`edge_cut_partition`]):
    /// neighbors in the affinity graph gravitate to the same shard so
    /// cross-shard traffic shrinks. Only valid on a materialized
    /// [`Partition`]; [`Partitioner::new`] rejects it.
    EdgeCut,
}

/// Read-only weighted neighbor view consumed by [`edge_cut_partition`].
///
/// Lives in this crate (below the overlay) so the assigner can partition
/// any arena-indexed structure; `eagr_overlay`'s push-edge view implements
/// it over the overlay's push topology.
pub trait AffinityGraph {
    /// Number of nodes in the arena.
    fn node_count(&self) -> usize;

    /// Weighted neighbors of node `idx`: `(neighbor index, affinity)`.
    /// Affinity is symmetric intent — if `a` lists `b`, `b` should list
    /// `a` with the same weight for the assigner's scores to be stable.
    fn neighbors(&self, idx: usize) -> &[(u32, f32)];
}

/// Tuning knobs of the streaming edge-cut assigner.
#[derive(Clone, Copy, Debug)]
pub struct EdgeCutConfig {
    /// Maximum shard load as a multiple of the perfectly balanced load
    /// `n / shards`. `1.0` forces exact balance (degenerates to
    /// round-robin tie-breaking); `1.1` allows 10% skew.
    pub balance: f64,
    /// Refinement passes after the initial streaming pass. During
    /// refinement every node reconsiders its shard with the complete
    /// assignment known, moving only when the move strictly reduces the
    /// weight of cut edges and respects the balance cap.
    pub passes: usize,
}

impl Default for EdgeCutConfig {
    fn default() -> Self {
        Self {
            balance: 1.1,
            passes: 2,
        }
    }
}

/// Greedy LDG-style streaming edge-cut partitioner (Stanton–Kliot linear
/// deterministic greedy, plus bounded refinement passes).
///
/// Nodes are processed in arena order; each is assigned to the shard
/// maximizing `affinity(node, shard) × (1 − load/capacity)` — neighbor
/// affinity pulls nodes toward their consumers, the load penalty keeps
/// shards balanced. Isolated nodes fall back to the least-loaded shard, so
/// the result is always total and deterministic.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn edge_cut_partition<G: AffinityGraph + ?Sized>(
    g: &G,
    shards: usize,
    cfg: &EdgeCutConfig,
) -> Partition {
    assert!(shards > 0, "at least one shard");
    let n = g.node_count();
    let capacity = ((n as f64 / shards as f64) * cfg.balance.max(1.0))
        .ceil()
        .max(1.0);
    let mut of: Vec<ShardId> = vec![ShardId(u32::MAX); n];
    let mut load = vec![0usize; shards];
    let mut score = vec![0.0f64; shards];
    // Streaming pass: place each node next to its already-placed neighbors.
    for v in 0..n {
        for s in score.iter_mut() {
            *s = 0.0;
        }
        for &(u, w) in g.neighbors(v) {
            let owner = of[u as usize];
            if owner != ShardId(u32::MAX) {
                score[owner.idx()] += w as f64;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for s in 0..shards {
            if load[s] as f64 >= capacity {
                continue;
            }
            let penalty = 1.0 - load[s] as f64 / capacity;
            // Affinity-weighted when the node has placed neighbors; the
            // pure load penalty (least-loaded) otherwise.
            let sc = if score[s] > 0.0 {
                score[s] * penalty
            } else {
                penalty * 1e-9
            };
            if sc > best_score {
                best_score = sc;
                best = s;
            }
        }
        of[v] = ShardId(best as u32);
        load[best] += 1;
    }
    // Refinement passes: with the full assignment known, greedily move
    // nodes whose affinity to another shard exceeds their local affinity.
    for _ in 0..cfg.passes {
        let mut moved = false;
        for v in 0..n {
            for s in score.iter_mut() {
                *s = 0.0;
            }
            for &(u, w) in g.neighbors(v) {
                score[of[u as usize].idx()] += w as f64;
            }
            let cur = of[v].idx();
            let mut best = cur;
            for s in 0..shards {
                if s != cur && score[s] > score[best] && (load[s] as f64) < capacity {
                    best = s;
                }
            }
            if best != cur {
                load[cur] -= 1;
                load[best] += 1;
                of[v] = ShardId(best as u32);
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    Partition {
        of,
        shards,
        strategy: PartitionStrategy::EdgeCut,
    }
}

/// Tuning knobs of [`refine_partition`], the bounded incremental
/// re-partitioner behind live shard rebalancing (§4.8: feed the observed
/// push counters back into the placement).
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// Maximum shard load as a multiple of the balanced load `n / shards`
    /// (same meaning as [`EdgeCutConfig::balance`]).
    pub balance: f64,
    /// Upper bound on the fraction of nodes moved per call. Live
    /// rebalancing migrates PAO state for every moved node, so the move
    /// set must stay small: the refinement keeps the current map and only
    /// relocates the highest-gain nodes instead of re-assigning from
    /// scratch.
    pub max_move_fraction: f64,
    /// Minimum *absolute* affinity gain (weight moved off the cut) a node
    /// must offer to be considered. Filters noise moves whose migration
    /// cost would exceed their traffic savings.
    pub min_gain: f64,
    /// Candidate-selection passes. Each pass re-scores against the
    /// assignment left by the previous one, so chains of dependent moves
    /// (a node following its just-moved neighbor) are found.
    pub passes: usize,
    /// Fennel-style load-penalty weight γ: the score of moving a node to
    /// shard `s` is `affinity(v, s) − γ · mean_affinity · load(s)/cap`.
    /// `0` disables balance pressure beyond the hard cap.
    pub gamma: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            balance: 1.1,
            max_move_fraction: 0.15,
            min_gain: 0.0,
            passes: 2,
            gamma: 1.0,
        }
    }
}

/// What [`refine_partition`] did: move count and the cut weight before and
/// after (both measured on the affinity view handed in, so callers can
/// apply a commit threshold before paying for state migration).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineStats {
    /// Nodes whose shard changed.
    pub moved: usize,
    /// Cut weight of the starting partition.
    pub cut_before: f64,
    /// Cut weight of the refined partition.
    pub cut_after: f64,
}

impl RefineStats {
    /// Relative cut improvement in `[0, 1]` (`0` when nothing was cut to
    /// begin with).
    pub fn gain_fraction(&self) -> f64 {
        if self.cut_before > 0.0 {
            (self.cut_before - self.cut_after).max(0.0) / self.cut_before
        } else {
            0.0
        }
    }
}

/// Incremental, bounded refinement of an existing partition against a
/// (possibly re-weighted) affinity view — the planner-free half of live
/// shard rebalancing.
///
/// Unlike [`edge_cut_partition`], which streams every node from scratch,
/// this keeps `current` and relocates only the nodes with the largest
/// positive cut gain, Fennel-style: each candidate is scored by
/// `affinity(v, s) − γ · mean_affinity · load(s)/capacity`, candidates are
/// applied best-gain-first under the balance cap, and the total move set
/// is bounded by [`RefineConfig::max_move_fraction`]. Gains are
/// re-validated at apply time against the evolving assignment, so a
/// neighbor's earlier move can never turn a queued move harmful.
///
/// Deterministic: the same `(view, current, cfg)` always yields the same
/// refined map. The result never has a larger cut than `current`.
///
/// # Panics
/// Panics if `current` does not cover the view's node arena.
pub fn refine_partition<G: AffinityGraph + ?Sized>(
    g: &G,
    current: &Partition,
    cfg: &RefineConfig,
) -> (Partition, RefineStats) {
    refine_partition_live(g, current, None, cfg)
}

/// [`refine_partition`] with node removals folded in: `live[v] == false`
/// marks a retired arena slot. Dead nodes keep their (now meaningless) map
/// entry but are never move candidates and — the part that matters — stop
/// counting toward shard load, so a shard whose nodes churned away frees
/// real capacity for the balance cap instead of hoarding phantom load.
/// `live == None` treats every slot as live.
///
/// # Panics
/// Panics if `current` (or `live`, when given) does not cover the view's
/// node arena.
pub fn refine_partition_live<G: AffinityGraph + ?Sized>(
    g: &G,
    current: &Partition,
    live: Option<&[bool]>,
    cfg: &RefineConfig,
) -> (Partition, RefineStats) {
    let n = g.node_count();
    assert_eq!(
        current.len(),
        n,
        "partition must cover every node of the affinity view"
    );
    if let Some(live) = live {
        assert_eq!(live.len(), n, "liveness mask must cover the arena");
    }
    let is_live = |v: usize| live.is_none_or(|l| l[v]);
    let shards = current.shards;
    let cut_before = current.cut_weight(g);
    let mut of = current.of.clone();
    let mut load = vec![0usize; shards];
    let mut live_n = 0usize;
    for v in 0..n {
        if is_live(v) {
            load[of[v].idx()] += 1;
            live_n += 1;
        }
    }
    let capacity = ((live_n as f64 / shards as f64) * cfg.balance.max(1.0))
        .ceil()
        .max(1.0);
    let budget =
        ((live_n as f64 * cfg.max_move_fraction.clamp(0.0, 1.0)).floor() as usize).min(live_n);
    // Mean per-node affinity mass, the γ penalty's scale (so γ is a pure
    // knob, independent of the view's absolute weights).
    let mean_aff = if live_n > 0 {
        let total: f64 = (0..n)
            .filter(|&v| is_live(v))
            .map(|v| g.neighbors(v).iter().map(|&(_, w)| w as f64).sum::<f64>())
            .sum();
        (total / live_n as f64).max(f64::MIN_POSITIVE)
    } else {
        1.0
    };
    let mut moved_total = 0usize;
    let mut aff = vec![0.0f64; shards];
    for _ in 0..cfg.passes.max(1) {
        if moved_total >= budget {
            break;
        }
        // Score every node against the current assignment of this pass.
        let mut candidates: Vec<(f64, usize, ShardId)> = Vec::new();
        for v in 0..n {
            if !is_live(v) {
                continue; // retired slots never move
            }
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                continue; // an isolated node cannot change the cut
            }
            for a in aff.iter_mut() {
                *a = 0.0;
            }
            for &(u, w) in nbrs {
                aff[of[u as usize].idx()] += w as f64;
            }
            let cur = of[v].idx();
            let mut best = cur;
            let mut best_score = aff[cur] - cfg.gamma * mean_aff * (load[cur] as f64 / capacity);
            for s in 0..shards {
                if s == cur || load[s] as f64 + 1.0 > capacity {
                    continue;
                }
                let score = aff[s] - cfg.gamma * mean_aff * (load[s] as f64 / capacity);
                if score > best_score {
                    best_score = score;
                    best = s;
                }
            }
            let gain = aff[best] - aff[cur];
            if best != cur && gain > cfg.min_gain && gain > 0.0 {
                candidates.push((gain, v, ShardId(best as u32)));
            }
        }
        // Best-gain-first, deterministic tie-break on the node index.
        candidates.sort_by(|(ga, va, _), (gb, vb, _)| gb.total_cmp(ga).then_with(|| va.cmp(vb)));
        let mut moved_this_pass = 0usize;
        for (_, v, dest) in candidates {
            if moved_total >= budget {
                break;
            }
            let cur = of[v].idx();
            let d = dest.idx();
            if d == cur || load[d] as f64 + 1.0 > capacity {
                continue;
            }
            // Re-validate against the assignment as already mutated by
            // earlier (higher-gain) moves in this pass.
            for a in aff.iter_mut() {
                *a = 0.0;
            }
            for &(u, w) in g.neighbors(v) {
                aff[of[u as usize].idx()] += w as f64;
            }
            if aff[d] - aff[cur] <= cfg.min_gain.max(0.0) {
                continue;
            }
            load[cur] -= 1;
            load[d] += 1;
            of[v] = dest;
            moved_total += 1;
            moved_this_pass += 1;
        }
        if moved_this_pass == 0 {
            break;
        }
    }
    let refined = Partition {
        of,
        shards,
        strategy: current.strategy,
    };
    let cut_after = refined.cut_weight(g);
    let moved = refined
        .of
        .iter()
        .zip(&current.of)
        .filter(|(a, b)| a != b)
        .count();
    (
        refined,
        RefineStats {
            moved,
            cut_before,
            cut_after,
        },
    )
}

/// SplitMix64 finalizer: a full-avalanche bit mix, so consecutive indexes
/// land on unrelated shards.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless hash assignment of an index to one of `shards` shards — the
/// [`PartitionStrategy::Hash`] formula as a free function. This is the
/// shared *fallback route* for node indexes beyond a materialized map's
/// length (nodes born after the map was built): every layer that routes by
/// index (the engine's live map, its per-batch snapshots, and
/// [`Partition::shard_of`] itself) falls back to this same formula, so an
/// out-of-range index has one well-defined owner everywhere instead of a
/// panic or a silent misroute.
///
/// # Panics
/// Panics if `shards == 0`.
#[inline]
pub fn hash_shard(idx: usize, shards: usize) -> ShardId {
    assert!(shards > 0, "at least one shard");
    ShardId((mix(idx as u64) % shards as u64) as u32)
}

/// Maps node indexes to [`ShardId`]s. Pure and deterministic: the same
/// `(shards, strategy)` pair always produces the same mapping, so every
/// component (planner, engine, tests) can re-derive it independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    shards: u32,
    strategy: PartitionStrategy,
}

impl Partitioner {
    /// A partitioner over `shards` shards with the given strategy.
    ///
    /// # Panics
    /// Panics if `shards == 0`, a chunk strategy has `chunk_size == 0`, or
    /// the strategy is [`PartitionStrategy::EdgeCut`] (not index-derivable
    /// — build the map with [`edge_cut_partition`] instead).
    pub fn new(shards: usize, strategy: PartitionStrategy) -> Self {
        assert!(shards > 0, "at least one shard");
        match strategy {
            PartitionStrategy::Chunk { chunk_size } => {
                assert!(chunk_size > 0, "chunk_size must be positive");
            }
            PartitionStrategy::EdgeCut => {
                panic!("EdgeCut is not index-derivable; use edge_cut_partition")
            }
            PartitionStrategy::Hash => {}
        }
        Self {
            shards: shards as u32,
            strategy,
        }
    }

    /// Hash partitioner over `shards` shards.
    pub fn hash(shards: usize) -> Self {
        Self::new(shards, PartitionStrategy::Hash)
    }

    /// Chunk-locality partitioner over `shards` shards.
    pub fn chunked(shards: usize, chunk_size: usize) -> Self {
        Self::new(shards, PartitionStrategy::Chunk { chunk_size })
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The strategy in use.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Shard owning node index `idx`.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        let s = match self.strategy {
            PartitionStrategy::Hash => mix(idx as u64) % self.shards as u64,
            PartitionStrategy::Chunk { chunk_size } => {
                (idx / chunk_size) as u64 % self.shards as u64
            }
            // Rejected by the constructor.
            PartitionStrategy::EdgeCut => unreachable!("EdgeCut has no index formula"),
        };
        ShardId(s as u32)
    }

    /// Materialize the mapping for an `n`-node arena.
    pub fn partition(&self, n: usize) -> Partition {
        Partition {
            of: (0..n).map(|i| self.shard_of(i)).collect(),
            shards: self.shard_count(),
            strategy: self.strategy,
        }
    }
}

/// A materialized node→shard assignment for a fixed-size node arena, as
/// produced by [`Partitioner::partition`]. Dataflow plans carry one of
/// these so the execution layer and the planner agree on shard ownership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Shard per node index.
    pub of: Vec<ShardId>,
    /// Number of shards.
    pub shards: usize,
    /// The strategy this partition was derived with.
    pub strategy: PartitionStrategy,
}

impl Partition {
    /// Shard owning node index `idx`. Indexes beyond the materialized map
    /// (nodes born after the map was built) fall back to the stateless
    /// [`hash_shard`] assignment instead of panicking, so routing stays
    /// total under topology growth.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> ShardId {
        match self.of.get(idx) {
            Some(&s) => s,
            None => hash_shard(idx, self.shards),
        }
    }

    /// Assign one node *online*, LDG-style, extending the map as needed:
    /// the node goes to the shard maximizing `affinity × (1 −
    /// load/capacity)` over its already-assigned neighbors (`affinity` is
    /// `(neighbor index, weight)` pairs; out-of-map neighbors are scored at
    /// their [`hash_shard`] fallback), or to the least-loaded shard when it
    /// has none — the same scoring [`edge_cut_partition`] streams with,
    /// applied to a single late arrival. Any gap below `node` is filled
    /// with the hash fallback (matching what [`shard_of`](Self::shard_of)
    /// already answered for those indexes). Idempotent: an already-mapped
    /// `node` keeps its assignment.
    pub fn assign_online(&mut self, node: usize, affinity: &[(u32, f32)]) -> ShardId {
        if let Some(&s) = self.of.get(node) {
            return s;
        }
        while self.of.len() < node {
            let gap = self.of.len();
            self.of.push(hash_shard(gap, self.shards));
        }
        let load = self.shard_sizes();
        let capacity = (((self.of.len() + 1) as f64 / self.shards as f64) * 1.1)
            .ceil()
            .max(1.0);
        let mut score = vec![0.0f64; self.shards];
        for &(u, w) in affinity {
            let owner = self.shard_of(u as usize);
            score[owner.idx()] += w as f64;
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for s in 0..self.shards {
            let penalty = 1.0 - (load[s] as f64 / capacity).min(1.0);
            let sc = if score[s] > 0.0 {
                score[s] * penalty
            } else {
                penalty * 1e-9
            };
            if sc > best_score {
                best_score = sc;
                best = s;
            }
        }
        self.of.push(ShardId(best as u32));
        ShardId(best as u32)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.of.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Node count per shard (load-balance diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.shards];
        for s in &self.of {
            sizes[s.idx()] += 1;
        }
        sizes
    }

    /// Total weight of affinity edges this partition cuts (each symmetric
    /// edge counted once). The objective [`edge_cut_partition`] minimizes,
    /// and the score the planner compares candidate strategies by: cut
    /// weight is proportional to the cross-shard delta volume the sharded
    /// engine will ship.
    ///
    /// # Panics
    /// Panics if the partition does not cover the view's node arena — a
    /// partition scored against a view of a different (e.g. post-split)
    /// overlay is a caller bug, not a quantity with a meaning.
    pub fn cut_weight<G: AffinityGraph + ?Sized>(&self, g: &G) -> f64 {
        assert_eq!(
            self.of.len(),
            g.node_count(),
            "partition must cover every node of the affinity view"
        );
        let mut cut = 0.0;
        for v in 0..self.of.len() {
            for &(u, w) in g.neighbors(v) {
                if self.of[u as usize] != self.of[v] {
                    cut += w as f64;
                }
            }
        }
        // A symmetric view lists every edge from both endpoints.
        cut / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Chunk { chunk_size: 8 },
        ] {
            let a = Partitioner::new(4, strategy).partition(1000);
            let b = Partitioner::new(4, strategy).partition(1000);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_shards_in_range() {
        for shards in 1..9 {
            let p = Partitioner::hash(shards);
            for i in 0..500 {
                assert!(p.shard_of(i).idx() < shards);
            }
            let c = Partitioner::chunked(shards, 16);
            for i in 0..500 {
                assert!(c.shard_of(i).idx() < shards);
            }
        }
    }

    #[test]
    fn hash_spread_is_balanced() {
        let part = Partitioner::hash(8).partition(8000);
        let sizes = part.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 8000);
        for &s in &sizes {
            // Within ±30% of the mean for a decent mixer.
            assert!(s > 700 && s < 1300, "shard size {s} badly unbalanced");
        }
    }

    #[test]
    fn chunk_strategy_keeps_blocks_together() {
        let p = Partitioner::chunked(4, 32);
        for block in 0..10 {
            let first = p.shard_of(block * 32);
            for i in 0..32 {
                assert_eq!(p.shard_of(block * 32 + i), first);
            }
        }
        // Consecutive blocks rotate across shards.
        assert_ne!(p.shard_of(0), p.shard_of(32));
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let p = Partitioner::hash(1);
        for i in 0..100 {
            assert_eq!(p.shard_of(i), ShardId(0));
        }
    }

    #[test]
    fn partition_len_and_sizes_consistent() {
        let part = Partitioner::chunked(3, 5).partition(47);
        assert_eq!(part.len(), 47);
        assert!(!part.is_empty());
        assert_eq!(part.shard_sizes().iter().sum::<usize>(), 47);
    }

    /// Adjacency-list affinity graph for the assigner tests.
    struct Adj(Vec<Vec<(u32, f32)>>);

    impl Adj {
        /// `k` disjoint cliques of `size` nodes, unit weights.
        fn cliques(k: usize, size: usize) -> Self {
            let mut adj = vec![Vec::new(); k * size];
            for c in 0..k {
                for i in 0..size {
                    for j in 0..size {
                        if i != j {
                            adj[c * size + i].push(((c * size + j) as u32, 1.0));
                        }
                    }
                }
            }
            Self(adj)
        }
    }

    impl AffinityGraph for Adj {
        fn node_count(&self) -> usize {
            self.0.len()
        }
        fn neighbors(&self, idx: usize) -> &[(u32, f32)] {
            &self.0[idx]
        }
    }

    #[test]
    #[should_panic(expected = "EdgeCut is not index-derivable")]
    fn partitioner_rejects_edge_cut() {
        let _ = Partitioner::new(4, PartitionStrategy::EdgeCut);
    }

    #[test]
    fn edge_cut_keeps_cliques_whole() {
        // 4 cliques of 25 onto 4 shards: a perfect assignment cuts nothing.
        let g = Adj::cliques(4, 25);
        let part = edge_cut_partition(&g, 4, &EdgeCutConfig::default());
        assert_eq!(part.len(), 100);
        assert_eq!(part.strategy, PartitionStrategy::EdgeCut);
        assert_eq!(part.cut_weight(&g), 0.0, "cliques must not be split");
        for c in 0..4 {
            let first = part.shard_of(c * 25);
            for i in 0..25 {
                assert_eq!(part.shard_of(c * 25 + i), first, "clique {c} split");
            }
        }
    }

    #[test]
    fn edge_cut_beats_hash_on_clustered_graphs() {
        let g = Adj::cliques(8, 16);
        let ec = edge_cut_partition(&g, 4, &EdgeCutConfig::default());
        let hash = Partitioner::hash(4).partition(g.node_count());
        assert!(
            ec.cut_weight(&g) < hash.cut_weight(&g) / 2.0,
            "edge cut {} vs hash {}",
            ec.cut_weight(&g),
            hash.cut_weight(&g)
        );
    }

    #[test]
    fn edge_cut_respects_balance_cap() {
        // One giant clique: affinity says "one shard", the balance cap
        // forces a spread.
        let g = Adj::cliques(1, 120);
        let part = edge_cut_partition(
            &g,
            4,
            &EdgeCutConfig {
                balance: 1.1,
                passes: 2,
            },
        );
        let cap = ((120.0 / 4.0) * 1.1f64).ceil() as usize;
        for (s, &sz) in part.shard_sizes().iter().enumerate() {
            assert!(sz <= cap, "shard {s} holds {sz} > cap {cap}");
        }
        assert_eq!(part.shard_sizes().iter().sum::<usize>(), 120);
    }

    #[test]
    fn edge_cut_is_deterministic_and_total() {
        let g = Adj::cliques(5, 9);
        let a = edge_cut_partition(&g, 3, &EdgeCutConfig::default());
        let b = edge_cut_partition(&g, 3, &EdgeCutConfig::default());
        assert_eq!(a, b);
        for i in 0..g.node_count() {
            assert!(a.shard_of(i).idx() < 3);
        }
    }

    #[test]
    fn refine_repairs_a_scrambled_clique_partition() {
        // 4 cliques of 20 onto 4 shards, starting from the structure-blind
        // hash map: bounded refinement must strictly shrink the cut without
        // a from-scratch reassignment.
        let g = Adj::cliques(4, 20);
        let start = Partitioner::hash(4).partition(g.node_count());
        let cfg = RefineConfig {
            max_move_fraction: 0.5,
            passes: 4,
            ..RefineConfig::default()
        };
        let (refined, stats) = refine_partition(&g, &start, &cfg);
        assert_eq!(stats.cut_before, start.cut_weight(&g));
        assert_eq!(stats.cut_after, refined.cut_weight(&g));
        assert!(
            stats.cut_after < stats.cut_before,
            "refinement must improve the cut: {} → {}",
            stats.cut_before,
            stats.cut_after
        );
        assert!(stats.gain_fraction() > 0.2, "{:?}", stats);
        assert!(stats.moved > 0);
        assert_eq!(refined.len(), start.len());
    }

    #[test]
    fn refine_never_worsens_the_cut() {
        // Starting from the assigner's own output there is little to gain,
        // but the bounded moves must never make the cut larger.
        let g = Adj::cliques(6, 10);
        let start = edge_cut_partition(&g, 3, &EdgeCutConfig::default());
        let (_, stats) = refine_partition(&g, &start, &RefineConfig::default());
        assert!(stats.cut_after <= stats.cut_before + 1e-9);
    }

    #[test]
    fn refine_respects_move_budget_and_balance() {
        let g = Adj::cliques(4, 25);
        let start = Partitioner::hash(4).partition(g.node_count());
        let cfg = RefineConfig {
            max_move_fraction: 0.05, // at most 5 of 100 nodes
            balance: 1.1,
            passes: 8,
            ..RefineConfig::default()
        };
        let (refined, stats) = refine_partition(&g, &start, &cfg);
        assert!(stats.moved <= 5, "budget exceeded: {}", stats.moved);
        // The cap binds move *targets*: a shard may keep a pre-existing
        // overflow, but refinement must never grow any shard past
        // max(cap, starting size).
        let cap = ((100.0 / 4.0) * 1.1f64).ceil() as usize;
        let start_sizes = start.shard_sizes();
        for (s, &sz) in refined.shard_sizes().iter().enumerate() {
            let bound = cap.max(start_sizes[s]);
            assert!(sz <= bound, "shard {s} holds {sz} > bound {bound}");
        }
    }

    #[test]
    fn refine_is_deterministic_and_keeps_strategy() {
        let g = Adj::cliques(5, 12);
        let start = Partitioner::chunked(3, 7).partition(g.node_count());
        let cfg = RefineConfig::default();
        let (a, sa) = refine_partition(&g, &start, &cfg);
        let (b, sb) = refine_partition(&g, &start, &cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(a.strategy, start.strategy);
    }

    #[test]
    fn refine_zero_budget_is_identity() {
        let g = Adj::cliques(3, 10);
        let start = Partitioner::hash(3).partition(g.node_count());
        let cfg = RefineConfig {
            max_move_fraction: 0.0,
            ..RefineConfig::default()
        };
        let (refined, stats) = refine_partition(&g, &start, &cfg);
        assert_eq!(refined, start);
        assert_eq!(stats.moved, 0);
        assert_eq!(stats.gain_fraction(), 0.0);
    }

    #[test]
    fn edge_cut_handles_isolated_nodes() {
        let g = Adj(vec![Vec::new(); 10]);
        let part = edge_cut_partition(&g, 3, &EdgeCutConfig::default());
        assert_eq!(part.len(), 10);
        // Isolated nodes spread by load: no shard exceeds the cap.
        let sizes = part.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s <= 4));
    }

    #[test]
    fn out_of_range_shard_of_falls_back_to_hash() {
        let part = Partitioner::chunked(4, 8).partition(32);
        for idx in 32..200 {
            let s = part.shard_of(idx);
            assert_eq!(s, hash_shard(idx, 4), "idx {idx}");
            assert!(s.idx() < 4);
        }
        // In-range indexes still answer from the map.
        assert_eq!(part.shard_of(0), part.of[0]);
    }

    #[test]
    fn assign_online_prefers_neighbor_shard_and_extends_map() {
        let mut part = Partitioner::hash(4).partition(16);
        let home = part.shard_of(3);
        // A node whose whole affinity mass sits on node 3's shard joins it.
        let s = part.assign_online(16, &[(3, 5.0)]);
        assert_eq!(s, home);
        assert_eq!(part.len(), 17);
        assert_eq!(part.shard_of(16), home);
        // Idempotent.
        assert_eq!(part.assign_online(16, &[]), home);
        assert_eq!(part.len(), 17);
        // Gaps are filled with the hash fallback shard_of already answered.
        let expect_gap = part.shard_of(18);
        part.assign_online(20, &[]);
        assert_eq!(part.len(), 21);
        assert_eq!(part.shard_of(18), expect_gap);
    }

    #[test]
    fn assign_online_without_affinity_balances_load() {
        let mut part = Partition {
            of: Vec::new(),
            shards: 3,
            strategy: PartitionStrategy::EdgeCut,
        };
        for v in 0..30 {
            part.assign_online(v, &[]);
        }
        let sizes = part.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 30);
        assert!(sizes.iter().all(|&s| s >= 8), "{sizes:?}");
    }

    #[test]
    fn refine_live_ignores_retired_load() {
        // Shard 0 is stuffed with dead slots; with liveness folded in, a
        // live node pulled toward shard 0 can still move there.
        let g = Adj({
            let mut adj = vec![Vec::new(); 24];
            // Node 23 (on shard 1 initially) is attached to nodes 0..4.
            for u in 0..4u32 {
                adj[23].push((u, 10.0f32));
                adj[u as usize].push((23, 10.0f32));
            }
            adj
        });
        let mut of = vec![ShardId(0); 24];
        // Nodes 12..23 live on shard 1, the target sits there too.
        for slot in of.iter_mut().skip(12) {
            *slot = ShardId(1);
        }
        let current = Partition {
            of,
            shards: 2,
            strategy: PartitionStrategy::EdgeCut,
        };
        // Kill most of shard 0's load: only its first 5 slots are live.
        let mut live = vec![false; 24];
        for (v, l) in live.iter_mut().enumerate() {
            if !(5..12).contains(&v) {
                *l = true;
            }
        }
        let cfg = RefineConfig {
            max_move_fraction: 0.5,
            ..RefineConfig::default()
        };
        let (refined, stats) = refine_partition_live(&g, &current, Some(&live), &cfg);
        assert_eq!(refined.shard_of(23), ShardId(0), "{stats:?}");
        // Dead slots never move.
        for v in 5..12 {
            assert_eq!(refined.shard_of(v), current.shard_of(v));
        }
    }
}
