//! Immutable CSR (compressed sparse row) snapshots of a [`DataGraph`].
//!
//! The dynamic graph's `Vec<Vec<NodeId>>` adjacency is convenient for
//! mutation but cache-hostile for bulk traversal. Overlay construction and
//! the bipartite build iterate every neighborhood once per run; freezing the
//! graph into two flat arrays (offsets + targets) makes those scans
//! sequential. Snapshots are cheap to rebuild after a batch of structural
//! changes — matching the paper's assumption that "the data graph itself
//! changes relatively slowly".

use crate::data_graph::{DataGraph, NodeId};

/// A frozen adjacency view: one direction (out- or in-neighbors) of a
/// [`DataGraph`] in CSR form.
#[derive(Clone, Debug)]
pub struct CsrSnapshot {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl CsrSnapshot {
    /// Freeze the *out*-adjacency of `g`.
    pub fn out_edges(g: &DataGraph) -> Self {
        Self::build(g, |g, v| g.out_neighbors(v))
    }

    /// Freeze the *in*-adjacency of `g`.
    pub fn in_edges(g: &DataGraph) -> Self {
        Self::build(g, |g, v| g.in_neighbors(v))
    }

    fn build(g: &DataGraph, nbrs: impl Fn(&DataGraph, NodeId) -> &[NodeId]) -> Self {
        let n = g.id_bound();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for i in 0..n as u32 {
            let v = NodeId(i);
            if g.contains(v) {
                targets.extend_from_slice(nbrs(g, v));
            }
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets }
    }

    /// Number of node slots (the data graph's id bound, including
    /// tombstoned ids, which simply have empty rows).
    pub fn node_slots(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v` (empty for out-of-range or tombstoned ids).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.idx();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Iterate `(node, neighbors)` rows with non-empty neighbor lists.
    pub fn rows(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> + '_ {
        (0..self.node_slots() as u32).filter_map(move |i| {
            let v = NodeId(i);
            let ns = self.neighbors(v);
            (!ns.is_empty()).then_some((v, ns))
        })
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * 4 + self.targets.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_graph::paper_example_graph;

    #[test]
    fn snapshot_matches_dynamic_adjacency() {
        let g = paper_example_graph();
        let out = CsrSnapshot::out_edges(&g);
        let inc = CsrSnapshot::in_edges(&g);
        assert_eq!(out.edge_count(), g.edge_count());
        assert_eq!(inc.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(out.neighbors(v), g.out_neighbors(v));
            assert_eq!(inc.neighbors(v), g.in_neighbors(v));
            assert_eq!(out.degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn tombstoned_nodes_have_empty_rows() {
        let mut g = paper_example_graph();
        g.remove_node(NodeId(3));
        let out = CsrSnapshot::out_edges(&g);
        assert!(out.neighbors(NodeId(3)).is_empty());
        assert_eq!(out.edge_count(), g.edge_count());
        // Neighbor lists of others no longer mention the removed node.
        for (_, ns) in out.rows() {
            assert!(!ns.contains(&NodeId(3)));
        }
    }

    #[test]
    fn out_of_range_is_empty() {
        let g = paper_example_graph();
        let out = CsrSnapshot::out_edges(&g);
        assert!(out.neighbors(NodeId(10_000)).is_empty());
        assert_eq!(out.degree(NodeId(10_000)), 0);
    }

    #[test]
    fn rows_iterate_nonempty_only() {
        let g = paper_example_graph();
        let out = CsrSnapshot::out_edges(&g);
        // Node g (6) has out-degree 0: it must not appear.
        assert!(out.rows().all(|(v, _)| v != NodeId(6)));
        let total: usize = out.rows().map(|(_, ns)| ns.len()).sum();
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn memory_accounting() {
        let g = paper_example_graph();
        let out = CsrSnapshot::out_edges(&g);
        assert!(out.memory_bytes() >= g.edge_count() * 4);
    }
}
