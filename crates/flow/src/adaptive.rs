//! Adapting dataflow decisions to workload drift (§4.8).
//!
//! Decisions can be changed unilaterally only at the **push/pull frontier**:
//! a pull node whose upstream nodes are all push may become push, and a push
//! node whose downstream nodes are all pull may become pull — any other flip
//! would violate the §4.3 consistency constraint without cascading changes.
//!
//! The execution engine monitors observed push/pull counts at frontier
//! nodes over a recent window and calls [`adapt_frontier`] periodically;
//! each call flips the frontier nodes whose observed frequencies now favor
//! the other decision.

use crate::decide::{Decision, Decisions, Frequencies};
use eagr_agg::CostModel;
use eagr_overlay::{Overlay, OverlayId, OverlayKind};

/// Which side of the frontier a node sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierSide {
    /// Pull node with all-push inputs: may flip to push.
    PullBoundary,
    /// Push node with all-pull consumers: may flip to pull.
    PushBoundary,
}

/// The current push/pull frontier (§4.8): the only nodes whose decision can
/// change without cascading, and the only ones that need monitoring.
pub fn frontier(ov: &Overlay, d: &Decisions) -> Vec<(OverlayId, FrontierSide)> {
    let mut out = Vec::new();
    for n in ov.ids() {
        if matches!(ov.kind(n), OverlayKind::Writer(_)) {
            continue; // writers always push
        }
        if d.is_push(n) {
            let all_consumers_pull =
                !ov.outputs(n).is_empty() && ov.outputs(n).iter().all(|&(t, _)| !d.is_push(t));
            let is_sink = ov.outputs(n).is_empty();
            if all_consumers_pull || is_sink {
                out.push((n, FrontierSide::PushBoundary));
            }
        } else {
            let all_inputs_push = ov.inputs(n).iter().all(|&(f, _)| d.is_push(f));
            if all_inputs_push {
                out.push((n, FrontierSide::PullBoundary));
            }
        }
    }
    out
}

/// Hysteresis: a flip requires the preferred side to be at least this much
/// cheaper (§4.8 only reconsiders when observed frequencies are
/// "significantly different"; without a margin, near-tie nodes flap on
/// every observation window).
const FLIP_MARGIN: f64 = 0.9;

/// Minimum observed activity (pushes + pulls) before a node's decision may
/// be reconsidered — cold nodes carry no evidence either way.
const MIN_OBSERVATIONS: f64 = 8.0;

/// Flip frontier decisions that the observed frequencies no longer support.
/// Returns the number of flips. `observed` carries the recently measured
/// push/pull frequencies (same shape as the planning-time
/// [`Frequencies`]).
pub fn adapt_frontier(
    ov: &Overlay,
    d: &mut Decisions,
    observed: &Frequencies,
    cost: &CostModel,
    writer_window: usize,
) -> usize {
    let mut flips = 0;
    for (n, side) in frontier(ov, d) {
        let k = match ov.kind(n) {
            OverlayKind::Writer(_) => writer_window.max(1),
            _ => ov.fan_in(n).max(1),
        };
        if observed.fh[n.idx()] + observed.fl[n.idx()] < MIN_OBSERVATIONS {
            continue;
        }
        let push_cost = observed.fh[n.idx()] * cost.push_cost(k);
        let pull_cost = observed.fl[n.idx()] * cost.pull_cost(k);
        match side {
            FrontierSide::PullBoundary if push_cost < pull_cost * FLIP_MARGIN => {
                d.of[n.idx()] = Decision::Push;
                flips += 1;
            }
            FrontierSide::PushBoundary if pull_cost < push_cost * FLIP_MARGIN => {
                d.of[n.idx()] = Decision::Pull;
                flips += 1;
            }
            _ => {}
        }
    }
    debug_assert!(d.is_valid(ov));
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::{decide_maxflow, node_costs, propagate_frequencies, Rates};
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};

    fn paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    #[test]
    fn frontier_of_all_pull_is_reader_boundary() {
        let ov = paper_overlay();
        let d = Decisions::all_pull(&ov);
        let f = frontier(&ov, &d);
        // Every reader has all-push (writer) inputs ⇒ pull boundary;
        // writers are excluded.
        assert_eq!(f.len(), 7);
        assert!(f.iter().all(|&(_, s)| s == FrontierSide::PullBoundary));
    }

    #[test]
    fn workload_shift_flips_decisions() {
        let ov = paper_overlay();
        // Plan for a write-heavy workload: readers end up pull.
        let plan_rates = Rates::uniform(7, 100.0);
        let f = propagate_frequencies(&ov, &plan_rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let mut d = decide_maxflow(&ov, &costs).decisions;
        let pull_readers_before = ov.readers().filter(|&(r, _)| !d.is_push(r)).count();
        assert_eq!(pull_readers_before, 7);

        // The workload shifts to read-heavy; adapt using observed counts
        // over a window (large enough to clear the evidence threshold).
        let observed_rates = Rates {
            read: vec![100.0; 7],
            write: vec![1.0; 7],
        };
        let observed = propagate_frequencies(&ov, &observed_rates);
        let flips = adapt_frontier(&ov, &mut d, &observed, &CostModel::unit_sum(), 1);
        assert!(flips > 0);
        let pull_readers_after = ov.readers().filter(|&(r, _)| !d.is_push(r)).count();
        assert!(pull_readers_after < pull_readers_before);
        assert!(d.is_valid(&ov));
    }

    #[test]
    fn stable_workload_no_flips() {
        let ov = paper_overlay();
        let rates = Rates::uniform(7, 1.0);
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let mut d = decide_maxflow(&ov, &costs).decisions;
        // Same observed frequencies: the optimum is already installed, so
        // no frontier flip can improve it.
        let flips = adapt_frontier(&ov, &mut d, &f, &CostModel::unit_sum(), 1);
        assert_eq!(flips, 0);
    }

    #[test]
    fn repeated_adaptation_converges() {
        let ov = paper_overlay();
        let mut d = Decisions::all_pull(&ov);
        let observed = propagate_frequencies(
            &ov,
            &Rates {
                read: vec![100.0; 7],
                write: vec![1.0; 7],
            },
        );
        let mut total = 0;
        for _ in 0..10 {
            let flips = adapt_frontier(&ov, &mut d, &observed, &CostModel::unit_sum(), 1);
            total += flips;
            if flips == 0 {
                break;
            }
        }
        assert!(total > 0);
        // Converged state is valid and read-favoring.
        assert!(d.is_valid(&ov));
        let f = frontier(&ov, &d);
        assert!(!f.is_empty());
    }
}
