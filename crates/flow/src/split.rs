//! Partial pre-computation by splitting aggregation nodes (§4.7, Fig 7).
//!
//! A pull-annotated node with some rarely-updated inputs wastes work
//! re-reading those inputs on every pull. Splitting carves the
//! low-push-frequency inputs into a push-annotated sub-aggregate `v'`
//! feeding the original node, so each pull touches `k − l + 1` inputs
//! instead of `k` while `v'` absorbs the (rare) pushes.
//!
//! For each pull node we sort its push-annotated positive inputs by push
//! frequency `f₁ ≤ … ≤ f_k` and choose the prefix length `l` minimizing
//!
//! ```text
//! cost(l) = H(l)·Σ_{i≤l} f_i  +  f·L(k − l + 1)
//! ```
//!
//! (`f` = the node's pull frequency); `l = 0` is "don't split". A split is
//! applied when the interior minimum improves on `cost(0)`.

use crate::decide::{Decision, Decisions, Frequencies};
use eagr_agg::{CostModel, Sign};
use eagr_overlay::{Overlay, OverlayId, OverlayKind};

/// Split beneficial pull nodes; returns the number of splits applied.
/// `decisions` grows with the new (push) sub-aggregates; frequencies are
/// extended for the new nodes so downstream consumers stay analyzable.
pub fn split_for_partial_precomputation(
    ov: &mut Overlay,
    decisions: &mut Decisions,
    freqs: &mut Frequencies,
    cost: &CostModel,
) -> usize {
    let candidates: Vec<OverlayId> = ov
        .ids()
        .filter(|&n| {
            !matches!(ov.kind(n), OverlayKind::Writer(_))
                && decisions.of[n.idx()] == Decision::Pull
                && ov.fan_in(n) >= 3
        })
        .collect();

    let mut splits = 0;
    for v in candidates {
        let k = ov.fan_in(v);
        // Only push-annotated positive inputs can move under a push v'.
        let mut movable: Vec<(f64, OverlayId)> = ov
            .inputs(v)
            .iter()
            .filter(|&&(f, s)| s == Sign::Pos && decisions.of[f.idx()] == Decision::Push)
            .map(|&(f, _)| (freqs.fh[f.idx()], f))
            .collect();
        if movable.len() < 2 {
            continue;
        }
        movable.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let f_pull = freqs.fl[v.idx()];
        let baseline = f_pull * cost.pull_cost(k);
        let mut best = (0usize, baseline);
        let mut prefix_sum = 0.0;
        for l in 1..=movable.len() {
            prefix_sum += movable[l - 1].0;
            if l == k {
                break; // must leave at least one original input
            }
            let c = prefix_sum * cost.push_cost(l) + f_pull * cost.pull_cost(k - l + 1);
            if c < best.1 {
                best = (l, c);
            }
        }
        let (l, best_cost) = best;
        if l == 0 || l < 2 || best_cost >= baseline {
            // l = 1 would create a pass-through node: no saving in practice.
            continue;
        }

        let moved: Vec<OverlayId> = movable[..l].iter().map(|&(_, id)| id).collect();
        let vprime = ov.add_partial(&moved);
        for &m in &moved {
            let removed = ov.remove_edge(m, v, Sign::Pos);
            debug_assert!(removed);
        }
        ov.add_edge(vprime, v, Sign::Pos);

        // Bookkeeping for the new node: push-annotated, with the moved
        // inputs' combined push frequency; it is pulled as often as v.
        let fh_new: f64 = moved.iter().map(|&m| freqs.fh[m.idx()]).sum();
        decisions.of.push(Decision::Push);
        freqs.fh.push(fh_new);
        freqs.fl.push(freqs.fl[v.idx()]);
        debug_assert_eq!(decisions.of.len(), ov.node_count());
        splits += 1;
    }
    debug_assert!(decisions.is_valid(ov));
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::{node_costs, propagate_frequencies, Rates};
    use eagr_graph::{BipartiteGraph, NodeId};

    /// The Fig 7 scenario: one pull aggregator with four cold writers and
    /// one hot writer.
    fn fig7_overlay() -> (Overlay, Rates) {
        // Writers 0..5 feed reader 10 through their direct edges.
        let ag =
            BipartiteGraph::from_input_lists(11, vec![(NodeId(10), (0..5).map(NodeId).collect())]);
        let ov = Overlay::direct_from_bipartite(&ag);
        let mut rates = Rates::uniform(11, 1.0);
        // Cold writers 0..4 (rate 1,2,3,4), hot writer 4 (rate 25); reads
        // at 15 (Fig 7 numbers).
        rates.write[0] = 1.0;
        rates.write[1] = 2.0;
        rates.write[2] = 3.0;
        rates.write[3] = 4.0;
        rates.write[4] = 25.0;
        for r in rates.read.iter_mut() {
            *r = 0.0;
        }
        rates.read[10] = 15.0;
        (ov, rates)
    }

    #[test]
    fn splits_fig7_like_node() {
        let (mut ov, rates) = fig7_overlay();
        let mut freqs = propagate_frequencies(&ov, &rates);
        // Force the reader to pull (as in Fig 7: cost 90 unsplit).
        let mut d = Decisions::all_pull(&ov);
        let before_nodes = ov.node_count();
        let splits =
            split_for_partial_precomputation(&mut ov, &mut d, &mut freqs, &CostModel::unit_sum());
        assert_eq!(splits, 1);
        assert_eq!(ov.node_count(), before_nodes + 1);
        // The new node aggregates the four cold writers and is push.
        let vprime = eagr_overlay::OverlayId((before_nodes) as u32);
        assert_eq!(ov.coverage(vprime), &[0, 1, 2, 3]);
        assert_eq!(d.of[vprime.idx()], Decision::Push);
        // The reader now has 2 inputs: v' and the hot writer.
        let rid = ov.reader(NodeId(10)).unwrap();
        assert_eq!(ov.fan_in(rid), 2);
        assert!(d.is_valid(&ov));
    }

    #[test]
    fn split_reduces_modeled_cost() {
        let (mut ov, rates) = fig7_overlay();
        let cost = CostModel::unit_sum();
        let freqs0 = propagate_frequencies(&ov, &rates);
        let d0 = Decisions::all_pull(&ov);
        let costs0 = node_costs(&ov, &freqs0, &cost, 1);
        let before = d0.total_cost(&ov, &costs0);

        let mut freqs = propagate_frequencies(&ov, &rates);
        let mut d = Decisions::all_pull(&ov);
        split_for_partial_precomputation(&mut ov, &mut d, &mut freqs, &cost);
        let costs1 = node_costs(&ov, &freqs, &cost, 1);
        let after = d.total_cost(&ov, &costs1);
        // Fig 7: 90 → 60.
        assert!(
            after < before,
            "split should cut modeled cost: {before} → {after}"
        );
    }

    #[test]
    fn no_split_when_all_inputs_hot() {
        let ag =
            BipartiteGraph::from_input_lists(11, vec![(NodeId(10), (0..5).map(NodeId).collect())]);
        let mut ov = Overlay::direct_from_bipartite(&ag);
        let mut rates = Rates::uniform(11, 1.0);
        for w in rates.write.iter_mut() {
            *w = 100.0; // uniformly hot: pre-aggregating saves nothing
        }
        rates.read[10] = 1.0;
        let mut freqs = propagate_frequencies(&ov, &rates);
        let mut d = Decisions::all_pull(&ov);
        let splits =
            split_for_partial_precomputation(&mut ov, &mut d, &mut freqs, &CostModel::unit_sum());
        assert_eq!(splits, 0);
    }

    #[test]
    fn push_nodes_not_split() {
        let (mut ov, rates) = fig7_overlay();
        let mut freqs = propagate_frequencies(&ov, &rates);
        let mut d = Decisions::all_push(&ov);
        let splits =
            split_for_partial_precomputation(&mut ov, &mut d, &mut freqs, &CostModel::unit_sum());
        assert_eq!(splits, 0, "splitting only benefits pull nodes");
    }
}
