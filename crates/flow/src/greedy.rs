//! The greedy linear-time alternative to the max-flow algorithm (§4.6).
//!
//! A single pass over the overlay in topological (BFS-from-writers) order,
//! with three states — push, pull, and *tentative pull* — maintaining the
//! paper's two invariants:
//!
//! 1. a tentative-pull node is never downstream of a pull or tentative-pull
//!    node,
//! 2. a push node is never downstream of a pull or tentative-pull node.
//!
//! The paper keeps it as a fallback "in case the pruning step results in a
//! very large connected component"; we also use it as a fast baseline in
//! the ablation benches.

use crate::decide::{Decision, Decisions};
use eagr_overlay::{Overlay, OverlayKind};

#[derive(Clone, Copy, PartialEq)]
enum State {
    Push,
    Pull,
    TentativePull,
}

/// Run the greedy §4.6 algorithm. `costs[n] = (PUSH(n), PULL(n))`.
pub fn decide_greedy(ov: &Overlay, costs: &[(f64, f64)]) -> Decisions {
    let n = ov.node_count();
    let mut state: Vec<State> = vec![State::Push; n];
    for u in ov.topo_order() {
        if ov.is_retired(u) {
            continue;
        }
        // Writers always push.
        if matches!(ov.kind(u), OverlayKind::Writer(_)) {
            state[u.idx()] = State::Push;
            continue;
        }
        let (push_cost, pull_cost) = costs[u.idx()];
        let inputs: Vec<_> = ov.inputs(u).iter().map(|&(f, _)| f).collect();
        let any_pull = inputs.iter().any(|f| state[f.idx()] == State::Pull);
        let tentative: Vec<_> = inputs
            .iter()
            .copied()
            .filter(|f| state[f.idx()] == State::TentativePull)
            .collect();

        if any_pull {
            // Rule 1: a pull input forces pull.
            state[u.idx()] = State::Pull;
            // Tentative inputs below a pull node become final pulls.
            for f in tentative {
                state[f.idx()] = State::Pull;
            }
        } else if push_cost > pull_cost {
            // The node prefers pull.
            if tentative.is_empty() {
                // Rule 3: all inputs push ⇒ tentative pull.
                state[u.idx()] = State::TentativePull;
            } else {
                // Rule 2: finalize the tentative inputs as pulls.
                state[u.idx()] = State::Pull;
                for f in tentative {
                    state[f.idx()] = State::Pull;
                }
            }
        } else {
            // The node prefers push.
            if tentative.is_empty() {
                // Rule 4: all inputs push ⇒ push.
                state[u.idx()] = State::Push;
            } else {
                // Rule 5: local greedy over the tentative inputs + u.
                let cost_if_push: f64 =
                    tentative.iter().map(|f| costs[f.idx()].0).sum::<f64>() + push_cost;
                let cost_if_pull: f64 =
                    tentative.iter().map(|f| costs[f.idx()].1).sum::<f64>() + pull_cost;
                if cost_if_push <= cost_if_pull {
                    for f in tentative {
                        state[f.idx()] = State::Push;
                    }
                    state[u.idx()] = State::Push;
                } else {
                    for f in tentative {
                        state[f.idx()] = State::Pull;
                    }
                    state[u.idx()] = State::Pull;
                }
            }
        }
    }
    let of = state
        .into_iter()
        .map(|s| match s {
            State::Push => Decision::Push,
            // Leftover tentative pulls become pulls (§4.6).
            State::Pull | State::TentativePull => Decision::Pull,
        })
        .collect();
    Decisions { of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::{decide_maxflow, node_costs, propagate_frequencies, Rates};
    use eagr_agg::CostModel;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};
    use eagr_overlay::{build_vnm, VnmConfig};

    fn paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    #[test]
    fn greedy_produces_valid_decisions() {
        let ov = paper_overlay();
        for ratio in [0.05, 0.5, 1.0, 5.0, 20.0] {
            let rates = Rates::uniform(7, ratio);
            let f = propagate_frequencies(&ov, &rates);
            let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
            let d = decide_greedy(&ov, &costs);
            assert!(d.is_valid(&ov), "invalid decisions at ratio {ratio}");
        }
    }

    #[test]
    fn greedy_matches_maxflow_at_extremes() {
        let ov = paper_overlay();
        for ratio in [0.001, 1000.0] {
            let rates = Rates::uniform(7, ratio);
            let f = propagate_frequencies(&ov, &rates);
            let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
            let g = decide_greedy(&ov, &costs);
            let m = decide_maxflow(&ov, &costs).decisions;
            assert!(
                (g.total_cost(&ov, &costs) - m.total_cost(&ov, &costs)).abs() < 1e-6,
                "extreme workloads have obvious optima; ratio {ratio}"
            );
        }
    }

    #[test]
    fn greedy_never_beats_maxflow() {
        // On a multi-level overlay with mixed rates the greedy answer is
        // valid and no better than optimal.
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        let props = eagr_agg::AggProps {
            duplicate_insensitive: false,
            subtractable: true,
        };
        let (ov, _) = build_vnm(&ag, &VnmConfig::vnm(10, props));
        let mut rates = Rates::uniform(7, 1.0);
        for v in 0..7 {
            rates.read[v] = ((v * 3 + 1) % 5) as f64 + 0.5;
            rates.write[v] = ((v * 2 + 3) % 7) as f64 + 0.5;
        }
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &CostModel::unit_sum(), 1);
        let g = decide_greedy(&ov, &costs);
        let m = decide_maxflow(&ov, &costs).decisions;
        assert!(g.is_valid(&ov));
        assert!(g.total_cost(&ov, &costs) >= m.total_cost(&ov, &costs) - 1e-6);
    }
}
