//! [`Wire`] codecs for dataflow decisions. Shard hosts receive the
//! coordinator's [`Decisions`] in their launch plan (and on topology swaps)
//! so push/pull routing agrees byte-for-byte across processes.

use crate::decide::{Decision, Decisions};
use eagr_util::wire::{Wire, WireError};

impl Wire for Decision {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Decision::Push => 0,
            Decision::Pull => 1,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Decision::Push),
            1 => Ok(Decision::Pull),
            tag => Err(WireError::BadTag {
                what: "Decision",
                tag,
            }),
        }
    }
}

impl Wire for Decisions {
    fn encode(&self, out: &mut Vec<u8>) {
        self.of.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Decisions {
            of: Wire::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_round_trip() {
        let d = Decisions {
            of: vec![Decision::Push, Decision::Pull, Decision::Push],
        };
        let back = Decisions::from_wire(&d.to_wire()).unwrap();
        assert_eq!(back.of, d.of);
    }
}
