//! One-call dataflow planning: frequencies → costs → decisions → optional
//! node splitting.
//!
//! [`plan`] is what the execution layer and the benches call; it bundles
//! the §4 pipeline with the §5.1 baseline policies.

use crate::adaptive;
use crate::decide::{
    decide_maxflow, node_costs, propagate_frequencies, Decisions, Frequencies, PruneStats, Rates,
};
use crate::greedy::decide_greedy;
use crate::split::split_for_partial_precomputation;
use eagr_agg::CostModel;
use eagr_graph::{
    edge_cut_partition, refine_partition, EdgeCutConfig, Partition, PartitionStrategy, Partitioner,
    RefineConfig, RefineStats, ShardId, DEFAULT_CHUNK_SIZE,
};
use eagr_overlay::{Overlay, OverlayKind, PushEdgeView};

/// Which decision procedure to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionAlgorithm {
    /// Exact min-cut solution (§4.4) with pruning (§4.5).
    MaxFlow,
    /// Linear-time greedy (§4.6).
    Greedy,
    /// Everything push (CEP-style baseline).
    AllPush,
    /// Readers/partials pull (social-network-style baseline).
    AllPull,
}

/// Planner configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// Decision procedure.
    pub algorithm: DecisionAlgorithm,
    /// Apply §4.7 node splitting after deciding.
    pub split: bool,
    /// Expected in-window values per writer (cost of writer pushes/pulls).
    pub writer_window: usize,
    /// Delta ops generated per write event. Once a sliding window is warm,
    /// every write produces an insert *and* an expiry removal, so pushes
    /// cost ≈2 ops each; planning with the raw write rate would undercount
    /// push work and over-push.
    pub push_amplification: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            algorithm: DecisionAlgorithm::MaxFlow,
            split: true,
            writer_window: 1,
            push_amplification: 2.0,
        }
    }
}

/// A fully planned overlay: the (possibly split-augmented) overlay, its
/// decisions, and diagnostics.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The overlay (ownership moves here because splitting mutates it).
    pub overlay: Overlay,
    /// Push/pull decision per overlay node.
    pub decisions: Decisions,
    /// Planning-time frequencies (extended for split nodes).
    pub freqs: Frequencies,
    /// Pruning stats from the max-flow path (defaults for other
    /// algorithms).
    pub prune: PruneStats,
    /// Number of §4.7 splits applied.
    pub splits: usize,
    /// Overlay edge count before splitting (splitting trades edges for
    /// computation, so the §3.1 sharing index is defined pre-split).
    pub pre_split_edges: usize,
    /// Sharing index of the overlay as constructed (pre-split).
    pub pre_split_sharing_index: f64,
    /// Modeled total cost of the final decisions.
    pub modeled_cost: f64,
    /// Node→shard assignment for sharded execution, if one has been
    /// attached with [`Plan::with_partition`]. Carried on the plan so the
    /// planner and every engine instantiated from the plan agree on shard
    /// ownership.
    pub partition: Option<Partition>,
}

/// Run the §4 pipeline on an overlay.
pub fn plan(mut overlay: Overlay, rates: &Rates, cost: &CostModel, cfg: &PlannerConfig) -> Plan {
    let eff_rates = Rates {
        read: rates.read.clone(),
        write: rates
            .write
            .iter()
            .map(|w| w * cfg.push_amplification.max(1.0))
            .collect(),
    };
    let mut freqs = propagate_frequencies(&overlay, &eff_rates);
    let costs = node_costs(&overlay, &freqs, cost, cfg.writer_window);
    let (mut decisions, prune) = match cfg.algorithm {
        DecisionAlgorithm::MaxFlow => {
            let out = decide_maxflow(&overlay, &costs);
            (out.decisions, out.prune)
        }
        DecisionAlgorithm::Greedy => (decide_greedy(&overlay, &costs), PruneStats::default()),
        DecisionAlgorithm::AllPush => (Decisions::all_push(&overlay), PruneStats::default()),
        DecisionAlgorithm::AllPull => (Decisions::all_pull(&overlay), PruneStats::default()),
    };
    let pre_split_edges = overlay.edge_count();
    let pre_split_sharing_index = overlay.sharing_index();
    let splits = if cfg.split && cfg.algorithm != DecisionAlgorithm::AllPush {
        split_for_partial_precomputation(&mut overlay, &mut decisions, &mut freqs, cost)
    } else {
        0
    };
    let final_costs = node_costs(&overlay, &freqs, cost, cfg.writer_window);
    let modeled_cost = decisions.total_cost(&overlay, &final_costs);
    Plan {
        overlay,
        decisions,
        freqs,
        prune,
        splits,
        pre_split_edges,
        pre_split_sharing_index,
        modeled_cost,
        partition: None,
    }
}

impl Plan {
    /// Attach a node→shard partition over this plan's overlay, for sharded
    /// execution. Partitioning happens *after* §4.7 splitting so split
    /// nodes are covered too. [`PartitionStrategy::EdgeCut`] derives the
    /// map from the plan's own push topology and frequencies (see
    /// [`push_view`](Self::push_view)); the index-based strategies go
    /// through a plain [`Partitioner`].
    /// Whatever the strategy, a read-locality pass then co-locates every
    /// pull reader with its heaviest input shard, so a shard-executed read
    /// evaluates most of its pull tree against the worker's own slab.
    pub fn with_partition(mut self, shards: usize, strategy: PartitionStrategy) -> Self {
        let mut partition = match strategy {
            PartitionStrategy::EdgeCut => {
                edge_cut_partition(&self.push_view(), shards, &EdgeCutConfig::default())
            }
            _ => Partitioner::new(shards, strategy).partition(self.overlay.node_count()),
        };
        self.colocate_pull_readers(&mut partition);
        self.partition = Some(partition);
        self
    }

    /// Attach the cheapest of the three partition strategies, scored by the
    /// fraction of modeled delta volume each would ship across shards
    /// ([`PushEdgeView::cut_fraction`]). This is the cost model the system
    /// builder uses in sharded mode: chunk partitioning wins on overlays
    /// whose allocation order already clusters consumers, edge-cut wins
    /// when the push topology disagrees with the id layout, and hash is the
    /// structure-blind floor. Index-based candidates are scored first, so
    /// on ties the cheaper-to-derive strategy is kept.
    pub fn with_auto_partition(mut self, shards: usize) -> Self {
        let view = self.push_view();
        let n = self.overlay.node_count();
        let candidates = [
            Partitioner::new(
                shards,
                PartitionStrategy::Chunk {
                    chunk_size: DEFAULT_CHUNK_SIZE,
                },
            )
            .partition(n),
            Partitioner::new(shards, PartitionStrategy::Hash).partition(n),
            edge_cut_partition(&view, shards, &EdgeCutConfig::default()),
        ];
        self.partition = candidates
            .into_iter()
            .map(|cand| (view.cut_fraction(&cand), cand))
            // min_by keeps the *first* of equally cheap candidates, so ties
            // go to the cheaper-to-derive index-based strategies.
            .min_by(|(a, _), (b, _)| a.total_cmp(b))
            .map(|(_, mut p)| {
                self.colocate_pull_readers(&mut p);
                p
            });
        self
    }

    /// Read-locality pass: reassign every pull-annotated reader to the
    /// shard holding the largest share of its input weight, so the worker
    /// that owns the reader evaluates most of its pull tree against its own
    /// slab instead of taking foreign slab locks per input.
    ///
    /// Inputs are weighted by the planner's propagated push frequencies
    /// `fh` — the same affinities [`push_view`](Self::push_view) feeds the
    /// edge-cut partitioner. Moving a pull reader is free for the write
    /// path: pull nodes receive no deltas (the cascade stops at them), so
    /// the reassignment cannot create cross-shard delta traffic or skew
    /// write-path load; it only concentrates each reader's pull evaluation
    /// where its data lives.
    fn colocate_pull_readers(&self, partition: &mut Partition) {
        let shards = partition.shards;
        let mut weight = vec![0.0f64; shards];
        for n in self.overlay.ids() {
            if self.decisions.is_push(n) || !matches!(self.overlay.kind(n), OverlayKind::Reader(_))
            {
                continue;
            }
            let inputs = self.overlay.inputs(n);
            if inputs.is_empty() {
                continue;
            }
            weight.iter_mut().for_each(|w| *w = 0.0);
            for &(f, _) in inputs {
                // Silent nodes keep a floor weight so structure still
                // guides the choice when rates are unknown.
                let fh = self.freqs.fh[f.idx()].max(1e-3);
                weight[partition.of[f.idx()].idx()] += fh;
            }
            let best = weight
                .iter()
                .enumerate()
                // max_by keeps the *last* max; compare (w, -idx) so ties go
                // to the lowest shard id deterministically.
                .max_by(|(i, a), (j, b)| a.total_cmp(b).then(j.cmp(i)))
                .map(|(s, _)| s)
                .expect("at least one shard");
            partition.of[n.idx()] = ShardId(best as u32);
        }
    }

    /// The weighted push-edge affinity view of this plan: push edges the
    /// execution cascade will follow, weighted by the planner's propagated
    /// push frequencies (`fh`). Nodes the rate model considers silent keep
    /// a small positive weight so pure structure still guides the
    /// partitioner when rates are unknown.
    pub fn push_view(&self) -> PushEdgeView {
        PushEdgeView::weighted(
            &self.overlay,
            |n| self.decisions.is_push(n),
            |n| {
                let fh = self.freqs.fh[n.idx()];
                if fh > 0.0 {
                    fh
                } else {
                    1e-3
                }
            },
        )
    }

    /// The push-edge affinity view weighted by **observed** frequencies —
    /// the live counterpart of [`push_view`](Self::push_view): same
    /// structure, but every node's emission rate comes from the engine's
    /// §4.8 observation window (`observed.fh`) instead of the
    /// planning-time propagation. Silent nodes keep the same small floor
    /// weight so structure still guides the partitioner where the window
    /// saw nothing.
    pub fn observed_push_view(&self, observed: &Frequencies) -> PushEdgeView {
        assert_eq!(
            observed.fh.len(),
            self.overlay.node_count(),
            "observed frequencies must cover every overlay node"
        );
        PushEdgeView::weighted(
            &self.overlay,
            |n| self.decisions.is_push(n),
            |n| {
                let fh = observed.fh[n.idx()];
                if fh > 0.0 {
                    fh
                } else {
                    1e-3
                }
            },
        )
    }

    /// Re-derive the carried partition from observed frequencies: bounded
    /// incremental refinement ([`refine_partition`]) of the current map
    /// against [`observed_push_view`](Self::observed_push_view), in place.
    /// This is the planner-side half of live shard rebalancing — the
    /// engine's own `rebalance()` does the same off its raw counters, but
    /// a caller holding a `Plan` (e.g. to respawn engines) can refresh the
    /// map it hands out without replanning from scratch.
    ///
    /// Returns `None` when the plan carries no partition (nothing to
    /// refine).
    pub fn refine_partition_observed(
        &mut self,
        observed: &Frequencies,
        cfg: &RefineConfig,
    ) -> Option<RefineStats> {
        let current = self.partition.as_ref()?;
        let view = self.observed_push_view(observed);
        let (refined, stats) = refine_partition(&view, current, cfg);
        self.partition = Some(refined);
        Some(stats)
    }

    /// Re-run the §4.8 frontier adaptation with freshly observed
    /// frequencies. Returns the number of decision flips.
    pub fn adapt(
        &mut self,
        observed: &Frequencies,
        cost: &CostModel,
        writer_window: usize,
    ) -> usize {
        adaptive::adapt_frontier(
            &self.overlay,
            &mut self.decisions,
            observed,
            cost,
            writer_window,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood};

    fn paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    #[test]
    fn planner_produces_valid_plans_for_all_algorithms() {
        for alg in [
            DecisionAlgorithm::MaxFlow,
            DecisionAlgorithm::Greedy,
            DecisionAlgorithm::AllPush,
            DecisionAlgorithm::AllPull,
        ] {
            let p = plan(
                paper_overlay(),
                &Rates::uniform(7, 1.0),
                &CostModel::unit_sum(),
                &PlannerConfig {
                    algorithm: alg,
                    split: false,
                    writer_window: 1,
                    push_amplification: 2.0,
                },
            );
            assert!(p.decisions.is_valid(&p.overlay), "{alg:?}");
            assert!(p.modeled_cost.is_finite());
        }
    }

    #[test]
    fn maxflow_plan_cheapest() {
        let rates = Rates::uniform(7, 2.0);
        let cost = CostModel::unit_sum();
        let base = PlannerConfig {
            algorithm: DecisionAlgorithm::MaxFlow,
            split: false,
            writer_window: 1,
            push_amplification: 2.0,
        };
        let opt = plan(paper_overlay(), &rates, &cost, &base).modeled_cost;
        for alg in [
            DecisionAlgorithm::Greedy,
            DecisionAlgorithm::AllPush,
            DecisionAlgorithm::AllPull,
        ] {
            let c = plan(
                paper_overlay(),
                &rates,
                &cost,
                &PlannerConfig {
                    algorithm: alg,
                    ..base
                },
            )
            .modeled_cost;
            assert!(opt <= c + 1e-9, "maxflow {opt} vs {alg:?} {c}");
        }
    }

    #[test]
    fn plan_carries_partition_over_split_overlay() {
        let p = plan(
            paper_overlay(),
            &Rates::uniform(7, 1.0),
            &CostModel::unit_sum(),
            &PlannerConfig::default(),
        );
        assert!(p.partition.is_none(), "partition is opt-in");
        let n = p.overlay.node_count();
        let p = p.with_partition(4, PartitionStrategy::Hash);
        let part = p.partition.as_ref().expect("partition attached");
        assert_eq!(part.len(), n, "covers every node incl. §4.7 splits");
        assert_eq!(part.shards, 4);
    }

    #[test]
    fn edge_cut_partition_derives_from_push_view() {
        let p = plan(
            paper_overlay(),
            &Rates::uniform(7, 1.0),
            &CostModel::unit_sum(),
            &PlannerConfig::default(),
        );
        let n = p.overlay.node_count();
        let p = p.with_partition(3, PartitionStrategy::EdgeCut);
        let part = p.partition.as_ref().expect("partition attached");
        assert_eq!(part.len(), n);
        assert_eq!(part.shards, 3);
        assert_eq!(part.strategy, PartitionStrategy::EdgeCut);
        // The derived cut never ships more than the structure-blind hash.
        let view = p.push_view();
        let hash = Partitioner::hash(3).partition(n);
        assert!(view.cut_fraction(part) <= view.cut_fraction(&hash) + 1e-9);
    }

    #[test]
    fn auto_partition_picks_the_cheapest_cut() {
        let p = plan(
            paper_overlay(),
            &Rates::uniform(7, 1.0),
            &CostModel::unit_sum(),
            &PlannerConfig::default(),
        );
        let p = p.with_auto_partition(4);
        let part = p.partition.as_ref().expect("partition attached");
        let view = p.push_view();
        let auto_cost = view.cut_fraction(part);
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Chunk { chunk_size: 64 },
        ] {
            let cand = Partitioner::new(4, strategy).partition(p.overlay.node_count());
            assert!(
                auto_cost <= view.cut_fraction(&cand) + 1e-9,
                "auto ({auto_cost}) must not lose to {strategy:?}"
            );
        }
    }

    #[test]
    fn pull_readers_are_colocated_with_their_heaviest_input_shard() {
        // All-pull plan: every reader is pull-annotated, so the
        // read-locality pass must land each on the shard holding the
        // largest fh-weighted share of its inputs.
        let p = plan(
            paper_overlay(),
            &Rates::uniform(7, 1.0),
            &CostModel::unit_sum(),
            &PlannerConfig {
                algorithm: DecisionAlgorithm::AllPull,
                split: false,
                writer_window: 1,
                push_amplification: 2.0,
            },
        );
        let p = p.with_partition(3, PartitionStrategy::Hash);
        let part = p.partition.as_ref().expect("partition attached");
        for n in p.overlay.ids() {
            if p.decisions.is_push(n) || !matches!(p.overlay.kind(n), OverlayKind::Reader(_)) {
                continue;
            }
            let inputs = p.overlay.inputs(n);
            if inputs.is_empty() {
                continue;
            }
            let mut weight = vec![0.0f64; part.shards];
            for &(f, _) in inputs {
                weight[part.shard_of(f.idx()).idx()] += p.freqs.fh[f.idx()].max(1e-3);
            }
            let own = weight[part.shard_of(n.idx()).idx()];
            assert!(
                weight.iter().all(|&w| w <= own + 1e-12),
                "reader {n:?} owns weight {own}, but a peer shard holds more: {weight:?}"
            );
        }
        // The write path is untouched: push nodes keep their hash shard.
        let hash = Partitioner::hash(3).partition(p.overlay.node_count());
        for n in p.overlay.ids() {
            if p.decisions.is_push(n) {
                assert_eq!(part.shard_of(n.idx()), hash.shard_of(n.idx()));
            }
        }
    }

    #[test]
    fn observed_refinement_recovers_a_drifted_hot_set() {
        // Plan with uniform rates, then observe traffic concentrated on
        // one writer's fan-out: the refined map must cut less of the
        // observed traffic than the stale planning-time map.
        let p = plan(
            paper_overlay(),
            &Rates::uniform(7, 1.0),
            &CostModel::unit_sum(),
            &PlannerConfig {
                algorithm: DecisionAlgorithm::AllPush,
                split: false,
                writer_window: 1,
                push_amplification: 2.0,
            },
        );
        let mut p = p.with_partition(4, PartitionStrategy::Hash);
        let n = p.overlay.node_count();
        let hot = p.overlay.writers().next().unwrap().0;
        let observed = Frequencies {
            fh: (0..n)
                .map(|i| if i == hot.idx() { 500.0 } else { 0.0 })
                .collect(),
            fl: vec![0.0; n],
        };
        let view = p.observed_push_view(&observed);
        let before = view.cut_fraction(p.partition.as_ref().unwrap());
        let stats = p
            .refine_partition_observed(
                &observed,
                &RefineConfig {
                    max_move_fraction: 1.0,
                    ..RefineConfig::default()
                },
            )
            .expect("plan carries a partition");
        let after = view.cut_fraction(p.partition.as_ref().unwrap());
        assert!(after <= before + 1e-9, "refinement worsened the cut");
        assert!(stats.cut_after <= stats.cut_before);
        // The hot writer's observed traffic dominates the view; if the
        // stale hash map cut any of it, refinement recovers some.
        if before > 0.0 {
            assert!(stats.moved > 0, "a cut hot set must trigger moves");
            assert!(
                after < before,
                "observed cut must shrink: {before} → {after}"
            );
        }
    }

    #[test]
    fn observed_refinement_without_partition_is_none() {
        let mut p = plan(
            paper_overlay(),
            &Rates::uniform(7, 1.0),
            &CostModel::unit_sum(),
            &PlannerConfig::default(),
        );
        let n = p.overlay.node_count();
        let observed = Frequencies {
            fh: vec![1.0; n],
            fl: vec![1.0; n],
        };
        assert!(p
            .refine_partition_observed(&observed, &RefineConfig::default())
            .is_none());
    }

    #[test]
    fn splitting_never_raises_modeled_cost() {
        let rates = {
            let mut r = Rates::uniform(7, 1.0);
            // Skew: a couple of very hot writers.
            r.write[4] = 80.0;
            r.write[5] = 60.0;
            r
        };
        let cost = CostModel::unit_sum();
        let unsplit = plan(
            paper_overlay(),
            &rates,
            &cost,
            &PlannerConfig {
                split: false,
                ..PlannerConfig::default()
            },
        );
        let split = plan(paper_overlay(), &rates, &cost, &PlannerConfig::default());
        assert!(split.modeled_cost <= unsplit.modeled_cost + 1e-6);
    }
}
