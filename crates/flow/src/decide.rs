//! Optimal push/pull dataflow decisions (paper §4.1–§4.5).
//!
//! The pipeline:
//!
//! 1. [`propagate_frequencies`] — compute push frequencies `fh` (writers
//!    seeded with write rates, summed downstream) and pull frequencies `fl`
//!    (readers seeded with read rates, summed upstream) (§4.1, Fig 5ii);
//! 2. [`node_costs`] — per-node `PUSH(v) = fh·H(k)` and `PULL(v) = fl·L(k)`
//!    unit costs (§4.2), with writers charged at the expected window fill;
//! 3. weights `w(v) = PULL(v) − PUSH(v)`, integer-scaled (§4.4's DMP);
//! 4. [`prune`] — rules P1/P2 assign forced decisions and shrink the graph
//!    (§4.5, Theorem 4.2 shows this preserves optimality);
//! 5. connected components of the remainder, each solved by an s-t min
//!    cut on the augmented graph (Theorem 4.1) via [Dinic](crate::maxflow).
//!
//! Writers are forced to *push* at the end (§2.2.1: "the writer nodes are
//! always annotated push") — a safe override since writers have no inputs.

use crate::maxflow::{Dinic, INF};
use eagr_agg::CostModel;
use eagr_overlay::{Overlay, OverlayId, OverlayKind};

/// Fixed-point scale for converting f64 cost weights to the i64 capacities
/// of the min-cut network.
const WEIGHT_SCALE: f64 = (1u64 << 20) as f64;

/// Weight pinning writers to the push side (§2.2.1: "the writer nodes are
/// always annotated push"): large enough that no realistic pull benefit can
/// outweigh it, small enough that summing all capacities cannot overflow.
const WRITER_FORCE: i64 = 1 << 42;

/// Per-data-node read/write rates (events per unit time), indexed by data
/// node id. The paper models these as Zipfian (§5.1).
#[derive(Clone, Debug, Default)]
pub struct Rates {
    /// `r(v)`: read (query) frequency per data node.
    pub read: Vec<f64>,
    /// `w(v)`: write (update) frequency per data node.
    pub write: Vec<f64>,
}

impl Rates {
    /// Uniform rates with a given write:read ratio (reads normalized to 1).
    pub fn uniform(n: usize, write_to_read: f64) -> Self {
        Self {
            read: vec![1.0; n],
            write: vec![write_to_read; n],
        }
    }

    fn read_of(&self, v: u32) -> f64 {
        self.read.get(v as usize).copied().unwrap_or(0.0)
    }

    fn write_of(&self, v: u32) -> f64 {
        self.write.get(v as usize).copied().unwrap_or(0.0)
    }
}

/// Push (`fh`) and pull (`fl`) frequencies per overlay node (§4.1).
#[derive(Clone, Debug)]
pub struct Frequencies {
    /// `fh(u)`: pushes arriving at `u` if everything is push-annotated.
    pub fh: Vec<f64>,
    /// `fl(u)`: pulls arriving at `u` if everything is pull-annotated.
    pub fl: Vec<f64>,
}

/// Compute `fh`/`fl` by summing along the overlay edges (negative edges
/// carry data just like positive ones — a subtraction is still a push).
pub fn propagate_frequencies(ov: &Overlay, rates: &Rates) -> Frequencies {
    let n = ov.node_count();
    let mut fh = vec![0.0; n];
    let mut fl = vec![0.0; n];
    let order = ov.topo_order();
    for &u in &order {
        match ov.kind(u) {
            OverlayKind::Writer(w) => fh[u.idx()] += rates.write_of(w.0),
            OverlayKind::Reader(_) => {}
            OverlayKind::Partial => {}
        }
        let f = fh[u.idx()];
        for &(t, _) in ov.outputs(u) {
            fh[t.idx()] += f;
        }
    }
    for &u in order.iter().rev() {
        if let OverlayKind::Reader(r) = ov.kind(u) {
            fl[u.idx()] += rates.read_of(r.0);
        }
        let f = fl[u.idx()];
        for &(s, _) in ov.inputs(u) {
            fl[s.idx()] += f;
        }
    }
    Frequencies { fh, fl }
}

/// Per-node unit costs: `(PUSH(v), PULL(v))` (§4.2).
///
/// `writer_window` is the expected number of in-window values at a writer —
/// the paper implicitly assigns `w` inputs to each writer so its costs are
/// `H(w)`/`L(w)`. The same fill also prices *pulling from* a writer: a pull
/// node evaluating an input writer scans that writer's `w` in-window
/// values, so each writer input counts as `w` values toward the pull
/// fan-in (non-writer inputs contribute their single merged PAO). With
/// `writer_window == 1` this degenerates to the plain fan-in. Landmark
/// windows ([`eagr_agg::WindowSpec::Unbounded`]) make the distinction
/// dramatic: their fill grows with the whole stream, so pull plans over
/// them are priced accordingly instead of as single-value windows.
pub fn node_costs(
    ov: &Overlay,
    freqs: &Frequencies,
    cost: &CostModel,
    writer_window: usize,
) -> Vec<(f64, f64)> {
    let w = writer_window.max(1);
    // Arena-indexed (retired nodes keep a zero-cost slot) so that
    // `costs[id.idx()]` is always valid.
    let mut out = vec![(0.0, 0.0); ov.node_count()];
    for n in ov.ids() {
        let (push_k, pull_k) = match ov.kind(n) {
            OverlayKind::Writer(_) => (w, w),
            _ => {
                let pull_k: usize = ov
                    .inputs(n)
                    .iter()
                    .map(|&(f, _)| match ov.kind(f) {
                        OverlayKind::Writer(_) => w,
                        _ => 1,
                    })
                    .sum();
                (ov.fan_in(n).max(1), pull_k.max(1))
            }
        };
        let push = freqs.fh[n.idx()] * cost.push_cost(push_k);
        let pull = freqs.fl[n.idx()] * cost.pull_cost(pull_k);
        out[n.idx()] = (push, pull);
    }
    out
}

/// A push/pull decision per overlay node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Keep the node's PAO incrementally up to date.
    Push,
    /// Compute on demand.
    Pull,
}

/// The dataflow decisions for an overlay.
#[derive(Clone, Debug)]
pub struct Decisions {
    /// Indexed by overlay node id.
    pub of: Vec<Decision>,
}

impl Decisions {
    /// All-push decisions (the data-streams/CEP baseline, §5.1).
    pub fn all_push(ov: &Overlay) -> Self {
        Self {
            of: vec![Decision::Push; ov.node_count()],
        }
    }

    /// All-pull decisions (the social-network baseline, §5.1). Writers stay
    /// push per §2.2.1.
    pub fn all_pull(ov: &Overlay) -> Self {
        let mut of = vec![Decision::Pull; ov.node_count()];
        for (w, _) in ov.writers() {
            of[w.idx()] = Decision::Push;
        }
        Self { of }
    }

    /// Is the node push-annotated?
    #[inline]
    pub fn is_push(&self, n: OverlayId) -> bool {
        self.of[n.idx()] == Decision::Push
    }

    /// Check the §4.3 consistency constraint: no edge from a pull node to a
    /// push node.
    pub fn is_valid(&self, ov: &Overlay) -> bool {
        ov.ids()
            .all(|u| self.is_push(u) || ov.outputs(u).iter().all(|&(t, _)| !self.is_push(t)))
    }

    /// Total expected cost `Σ_{v∈X} PUSH(v) + Σ_{v∈Y} PULL(v)` under the
    /// given per-node unit costs (arena-indexed, as produced by
    /// [`node_costs`]).
    pub fn total_cost(&self, ov: &Overlay, costs: &[(f64, f64)]) -> f64 {
        ov.ids()
            .map(|n| {
                let (push, pull) = costs[n.idx()];
                if self.is_push(n) {
                    push
                } else {
                    pull
                }
            })
            .sum()
    }

    /// Number of push-annotated nodes.
    pub fn push_count(&self) -> usize {
        self.of.iter().filter(|&&d| d == Decision::Push).count()
    }
}

/// What pruning (§4.5) left behind, for Fig 12 reporting.
#[derive(Clone, Debug, Default)]
pub struct PruneStats {
    /// Overlay nodes before pruning, split (graph nodes, virtual nodes).
    pub before: (usize, usize),
    /// Overlay nodes remaining after pruning, split (graph, virtual).
    pub after: (usize, usize),
    /// Number of connected components among the survivors.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

/// Outcome of the full §4 decision procedure.
#[derive(Clone, Debug)]
pub struct DecisionOutcome {
    /// The decisions.
    pub decisions: Decisions,
    /// Pruning effectiveness (Fig 12).
    pub prune: PruneStats,
}

/// Apply pruning rules P1/P2 (§4.5). Returns per-node forced decisions
/// (`None` = survives to the min-cut phase).
pub fn prune(ov: &Overlay, weights: &[i64]) -> Vec<Option<Decision>> {
    let n = ov.node_count();
    let mut forced: Vec<Option<Decision>> = vec![None; n];
    // Live in-degree / out-degree over surviving nodes.
    let mut indeg: Vec<usize> = vec![0; n];
    let mut outdeg: Vec<usize> = vec![0; n];
    let ids: Vec<OverlayId> = ov.ids().collect();
    for &u in &ids {
        indeg[u.idx()] = ov.inputs(u).len();
        outdeg[u.idx()] = ov.outputs(u).len();
    }
    let mut queue: Vec<OverlayId> = ids
        .iter()
        .copied()
        .filter(|&u| {
            (weights[u.idx()] >= 0 && indeg[u.idx()] == 0)
                || (weights[u.idx()] < 0 && outdeg[u.idx()] == 0)
        })
        .collect();
    while let Some(u) = queue.pop() {
        if forced[u.idx()].is_some() {
            continue;
        }
        if weights[u.idx()] >= 0 && indeg[u.idx()] == 0 {
            // P1: a positive-weight source can safely push.
            forced[u.idx()] = Some(Decision::Push);
            for &(t, _) in ov.outputs(u) {
                if forced[t.idx()].is_none() {
                    indeg[t.idx()] -= 1;
                    if (weights[t.idx()] >= 0 && indeg[t.idx()] == 0)
                        || (weights[t.idx()] < 0 && outdeg[t.idx()] == 0)
                    {
                        queue.push(t);
                    }
                }
            }
        } else if weights[u.idx()] < 0 && outdeg[u.idx()] == 0 {
            // P2: a negative-weight sink can safely pull.
            forced[u.idx()] = Some(Decision::Pull);
            for &(s, _) in ov.inputs(u) {
                if forced[s.idx()].is_none() {
                    outdeg[s.idx()] -= 1;
                    if (weights[s.idx()] >= 0 && indeg[s.idx()] == 0)
                        || (weights[s.idx()] < 0 && outdeg[s.idx()] == 0)
                    {
                        queue.push(s);
                    }
                }
            }
        }
    }
    forced
}

/// Integer DMP weights `w(v) = PULL(v) − PUSH(v)`, fixed-point scaled.
pub fn dmp_weights(costs: &[(f64, f64)]) -> Vec<i64> {
    costs
        .iter()
        .map(|&(push, pull)| ((pull - push) * WEIGHT_SCALE).round() as i64)
        .collect()
}

/// Solve the dataflow decision problem exactly: prune, split into connected
/// components, and run a min cut per component (§4.4–§4.5).
pub fn decide_maxflow(ov: &Overlay, costs: &[(f64, f64)]) -> DecisionOutcome {
    let mut weights = dmp_weights(costs);
    // Writers always push (§2.2.1): encode the constraint in the weights so
    // the min cut itself honors it (P1 then prunes every writer instantly,
    // since writers have no inputs).
    for (w, _) in ov.writers() {
        weights[w.idx()] = WRITER_FORCE;
    }
    let forced = prune(ov, &weights);

    // Pruning stats (Fig 12): graph vs virtual node split.
    let is_graph_node = |n: OverlayId| !matches!(ov.kind(n), OverlayKind::Partial);
    let mut before = (0usize, 0usize);
    let mut after = (0usize, 0usize);
    for n in ov.ids() {
        if is_graph_node(n) {
            before.0 += 1;
        } else {
            before.1 += 1;
        }
        if forced[n.idx()].is_none() {
            if is_graph_node(n) {
                after.0 += 1;
            } else {
                after.1 += 1;
            }
        }
    }

    // Connected components (undirected) over surviving nodes.
    let n = ov.node_count();
    let mut comp: Vec<i32> = vec![-1; n];
    let mut components: Vec<Vec<OverlayId>> = Vec::new();
    for start in ov.ids() {
        if forced[start.idx()].is_some() || comp[start.idx()] >= 0 {
            continue;
        }
        let cid = components.len() as i32;
        let mut stack = vec![start];
        comp[start.idx()] = cid;
        let mut members = Vec::new();
        while let Some(u) = stack.pop() {
            members.push(u);
            let neighbors = ov
                .outputs(u)
                .iter()
                .map(|&(t, _)| t)
                .chain(ov.inputs(u).iter().map(|&(s, _)| s));
            for v in neighbors {
                if forced[v.idx()].is_none() && comp[v.idx()] < 0 {
                    comp[v.idx()] = cid;
                    stack.push(v);
                }
            }
        }
        components.push(members);
    }

    let mut of: Vec<Decision> = forced.iter().map(|f| f.unwrap_or(Decision::Push)).collect();

    // Solve each component independently (Theorem 4.2 lets us ignore
    // pruned neighbors entirely).
    for members in &components {
        solve_component(ov, &weights, members, &mut of);
    }

    debug_assert!(ov.writers().all(|(w, _)| of[w.idx()] == Decision::Push));

    let largest = components.iter().map(|c| c.len()).max().unwrap_or(0);
    let outcome = Decisions { of };
    debug_assert!(outcome.is_valid(ov));
    DecisionOutcome {
        decisions: outcome,
        prune: PruneStats {
            before,
            after,
            components: components.len(),
            largest_component: largest,
        },
    }
}

/// Min-cut solve of one component: build the augmented graph H' (Fig 5iii),
/// run max-flow, and read the partition off the residual graph.
fn solve_component(ov: &Overlay, weights: &[i64], members: &[OverlayId], of: &mut [Decision]) {
    // Local indexing: 0 = s, 1 = t, 2.. = members.
    let mut local: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (i, &m) in members.iter().enumerate() {
        local.insert(m.0, i + 2);
    }
    let mut net = Dinic::new(members.len() + 2);
    for &m in members {
        let w = weights[m.idx()];
        let li = local[&m.0];
        if w < 0 {
            net.add_edge(0, li, -w); // s → v with capacity −w(v)
        } else if w > 0 {
            net.add_edge(li, 1, w); // v → t with capacity w(v)
        }
        for &(t, _) in ov.outputs(m) {
            if let Some(&lt) = local.get(&t.0) {
                net.add_edge(li, lt, INF);
            }
        }
    }
    net.max_flow(0, 1);
    let side = net.min_cut_side(0);
    for &m in members {
        // Reachable from s in the residual ⇒ Y (pull); the rest ⇒ X (push).
        of[m.idx()] = if side[local[&m.0]] {
            Decision::Pull
        } else {
            Decision::Push
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::CostModel;
    use eagr_graph::{paper_example_graph, BipartiteGraph, Neighborhood, NodeId};

    fn direct_paper_overlay() -> Overlay {
        let ag = BipartiteGraph::build(&paper_example_graph(), &Neighborhood::In, |_| true);
        Overlay::direct_from_bipartite(&ag)
    }

    fn unit_cost() -> CostModel {
        CostModel::unit_sum()
    }

    /// Brute-force optimal decisions for tiny overlays.
    fn brute_force(ov: &Overlay, costs: &[(f64, f64)]) -> f64 {
        let ids: Vec<OverlayId> = ov.ids().collect();
        let n = ids.len();
        assert!(n <= 20, "brute force only for tiny overlays");
        let mut best = f64::INFINITY;
        'outer: for mask in 0u32..(1 << n) {
            // bit set = push.
            let is_push = |id: OverlayId| {
                let pos = ids.iter().position(|&x| x == id).unwrap();
                mask & (1 << pos) != 0
            };
            // Constraint: no pull → push edge.
            for &u in &ids {
                if !is_push(u) {
                    for &(t, _) in ov.outputs(u) {
                        if is_push(t) {
                            continue 'outer;
                        }
                    }
                }
            }
            // Writers always push.
            for (w, _) in ov.writers() {
                if !is_push(w) {
                    continue 'outer;
                }
            }
            let cost: f64 = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    if mask & (1 << i) != 0 {
                        costs[id.idx()].0
                    } else {
                        costs[id.idx()].1
                    }
                })
                .sum();
            best = best.min(cost);
        }
        best
    }

    #[test]
    fn frequencies_propagate() {
        let ov = direct_paper_overlay();
        let n = 7;
        let rates = Rates::uniform(n, 2.0);
        let f = propagate_frequencies(&ov, &rates);
        // Reader a has 4 inputs, each pushing at rate 2 ⇒ fh = 8.
        let ar = ov.reader(NodeId(0)).unwrap();
        assert!((f.fh[ar.idx()] - 8.0).abs() < 1e-12);
        // Writer a feeds 5 readers, each read at rate 1 ⇒ fl = 5.
        let aw = ov.writer(NodeId(0)).unwrap();
        assert!((f.fl[aw.idx()] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn maxflow_matches_brute_force_on_paper_overlay() {
        let ov = direct_paper_overlay();
        let rates = Rates::uniform(7, 1.0);
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &unit_cost(), 1);
        let out = decide_maxflow(&ov, &costs);
        assert!(out.decisions.is_valid(&ov));
        let got = out.decisions.total_cost(&ov, &costs);
        let want = brute_force(&ov, &costs);
        assert!(
            (got - want).abs() < 1e-3,
            "maxflow cost {got} vs brute force {want} (fixed-point rounding)"
        );
    }

    #[test]
    fn maxflow_beats_baselines_on_mixed_workload() {
        let ov = direct_paper_overlay();
        let mut rates = Rates::uniform(7, 1.0);
        // Readers 0..3 hot, writers 4..6 hot.
        for v in 0..4 {
            rates.read[v] = 50.0;
        }
        for v in 4..7 {
            rates.write[v] = 50.0;
        }
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &unit_cost(), 1);
        let out = decide_maxflow(&ov, &costs);
        let opt = out.decisions.total_cost(&ov, &costs);
        let push = Decisions::all_push(&ov).total_cost(&ov, &costs);
        let pull = Decisions::all_pull(&ov).total_cost(&ov, &costs);
        assert!(opt <= push + 1e-9);
        assert!(opt <= pull + 1e-9);
    }

    #[test]
    fn pruning_preserves_optimality() {
        // Random-ish rates over the paper overlay: decisions with pruning
        // must cost the same as brute force (Theorem 4.2).
        let ov = direct_paper_overlay();
        let mut rates = Rates::uniform(7, 1.0);
        for v in 0..7 {
            rates.read[v] = ((v * 7 + 3) % 11) as f64 + 0.5;
            rates.write[v] = ((v * 5 + 1) % 13) as f64 + 0.5;
        }
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &unit_cost(), 1);
        let out = decide_maxflow(&ov, &costs);
        let want = brute_force(&ov, &costs);
        let got = out.decisions.total_cost(&ov, &costs);
        assert!((got - want).abs() < 1e-3);
        // Pruning must have removed something on this skewed workload.
        let total_after = out.prune.after.0 + out.prune.after.1;
        let total_before = out.prune.before.0 + out.prune.before.1;
        assert!(total_after <= total_before);
    }

    #[test]
    fn landmark_window_fill_flips_decisions_to_push() {
        // Regression for the WindowSpec::Unbounded cost-model bug: landmark
        // windows were modeled as holding one value, so a moderately
        // write-heavy workload looked pull-friendly even though every pull
        // would re-scan the writers' entire histories.
        let ov = direct_paper_overlay();
        let rates = Rates::uniform(7, 5.0); // writes 5× hotter than reads
        let f = propagate_frequencies(&ov, &rates);

        // The buggy fill: Unbounded.expected_size() returned 1.0.
        let costs_bug = node_costs(&ov, &f, &unit_cost(), 1);
        let bug = decide_maxflow(&ov, &costs_bug);
        let pull_readers_bug = ov
            .readers()
            .filter(|&(r, _)| !bug.decisions.is_push(r))
            .count();
        assert!(
            pull_readers_bug > 0,
            "write-heavy + single-value windows must leave some readers pull"
        );

        // The fixed fill: one write per tick over a 10k-tick stream.
        let fill = eagr_agg::WindowSpec::Unbounded.expected_size(1.0, 10_000.0) as usize;
        assert_eq!(fill, 10_000);
        let costs_fixed = node_costs(&ov, &f, &unit_cost(), fill);
        let out = decide_maxflow(&ov, &costs_fixed);
        for (r, _) in ov.readers() {
            assert!(
                out.decisions.is_push(r),
                "landmark windows make every pull re-scan whole histories: reader {r:?} must push"
            );
        }
    }

    #[test]
    fn unit_writer_window_keeps_plain_fan_in_pull_costs() {
        // writer_window == 1 must degenerate to the old model exactly.
        let ov = direct_paper_overlay();
        let f = propagate_frequencies(&ov, &Rates::uniform(7, 1.0));
        let costs = node_costs(&ov, &f, &unit_cost(), 1);
        let ar = ov.reader(NodeId(0)).unwrap();
        // Reader a has 4 inputs and read rate 1 ⇒ PULL = 1·L(4) = 4.
        assert!((costs[ar.idx()].1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_push_and_all_pull_are_valid() {
        let ov = direct_paper_overlay();
        assert!(Decisions::all_push(&ov).is_valid(&ov));
        assert!(Decisions::all_pull(&ov).is_valid(&ov));
    }

    #[test]
    fn read_heavy_prefers_push_write_heavy_prefers_pull() {
        let ov = direct_paper_overlay();
        // Extremely read-heavy.
        let mut rates = Rates::uniform(7, 1.0);
        for v in 0..7 {
            rates.read[v] = 1000.0;
            rates.write[v] = 0.01;
        }
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &unit_cost(), 1);
        let out = decide_maxflow(&ov, &costs);
        let readers_push = ov
            .readers()
            .filter(|&(r, _)| out.decisions.is_push(r))
            .count();
        assert_eq!(readers_push, 7, "read-heavy ⇒ precompute everything");

        // Extremely write-heavy.
        let mut rates = Rates::uniform(7, 1.0);
        for v in 0..7 {
            rates.read[v] = 0.01;
            rates.write[v] = 1000.0;
        }
        let f = propagate_frequencies(&ov, &rates);
        let costs = node_costs(&ov, &f, &unit_cost(), 1);
        let out = decide_maxflow(&ov, &costs);
        let readers_pull = ov
            .readers()
            .filter(|&(r, _)| !out.decisions.is_push(r))
            .count();
        assert_eq!(readers_pull, 7, "write-heavy ⇒ compute on demand");
    }

    #[test]
    fn fig5_conflict_resolved_globally() {
        // Reproduce the paper's Fig 5 conflict: a chain i3 → sr where i3
        // prefers pull but sr prefers push; both cannot have their local
        // optimum. Build: writer x → i3 → sr(reader) with crafted costs.
        let mut ov = {
            let ag = BipartiteGraph::from_input_lists(2, vec![(NodeId(1), vec![NodeId(0)])]);
            Overlay::direct_from_bipartite(&ag)
        };
        let w = ov.writer(NodeId(0)).unwrap();
        let r = ov.reader(NodeId(1)).unwrap();
        ov.remove_edge(w, r, eagr_agg::Sign::Pos);
        let p = ov.add_partial(&[w]);
        ov.add_edge(p, r, eagr_agg::Sign::Pos);
        // Costs: (PUSH, PULL) — writer must push; p: push 10 / pull 6
        // (prefers pull); r: push 70 / pull 120 (prefers push).
        let mut costs = vec![(0.0, 0.0); ov.node_count()];
        costs[w.idx()] = (3.0, 10.0);
        costs[p.idx()] = (10.0, 6.0);
        costs[r.idx()] = (70.0, 120.0);
        let out = decide_maxflow(&ov, &costs);
        // Globally: push everything costs 3+10+70 = 83; pull p and r costs
        // 3+6+120 = 129; push p, pull r = 3+10+120=133 — so all-push wins.
        assert!(out.decisions.is_push(p));
        assert!(out.decisions.is_push(r));
        let got = out.decisions.total_cost(&ov, &costs);
        assert!((got - 83.0).abs() < 1e-9);
    }
}
