//! Push/pull dataflow decisions for EAGr overlays (paper §4).
//!
//! * [`decide`] — frequency propagation (§4.1), cost assignment (§4.2), the
//!   Difference-Maximizing-Partition reduction and its min-cut solution
//!   (§4.3–§4.4), and the P1/P2 pruning + connected-component decomposition
//!   (§4.5).
//! * [`maxflow`] — Dinic's algorithm (exact min cut, replacing the paper's
//!   Ford–Fulkerson).
//! * [`greedy`] — the linear-time greedy alternative (§4.6).
//! * [`split`] — partial pre-computation by splitting nodes (§4.7).
//! * [`adaptive`] — frontier monitoring and decision flipping (§4.8).
//! * [`plan`](mod@plan) — a one-call planner tying the pieces together.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod attach;
pub mod decide;
pub mod greedy;
pub mod maxflow;
pub mod plan;
pub mod split;
pub mod wire;

pub use adaptive::{adapt_frontier, frontier, FrontierSide};
pub use attach::{extend_decisions, topo_plan_delta, TopoDelta};
pub use decide::{
    decide_maxflow, dmp_weights, node_costs, propagate_frequencies, prune, Decision,
    DecisionOutcome, Decisions, Frequencies, PruneStats, Rates,
};
pub use greedy::decide_greedy;
pub use maxflow::Dinic;
pub use plan::{plan, DecisionAlgorithm, Plan, PlannerConfig};
pub use split::split_for_partial_precomputation;
