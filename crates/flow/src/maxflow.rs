//! Max-flow / min-cut solver.
//!
//! The paper uses Ford–Fulkerson (§4.4); we implement Dinic's algorithm —
//! level-graph BFS plus blocking-flow DFS — which computes the same exact
//! min cut with a strictly better asymptotic bound, keeping Theorem 4.1
//! intact (optimality depends only on min-cut exactness).

/// Capacity value treated as infinite (original DAG edges in the augmented
/// graph must never be cut).
pub const INF: i64 = i64::MAX / 4;

#[derive(Clone, Debug)]
struct Edge {
    to: u32,
    cap: i64,
}

/// Dinic max-flow over a directed graph with integer capacities.
pub struct Dinic {
    edges: Vec<Edge>,
    adj: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// A flow network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge `u → v` with capacity `cap` (and its residual
    /// reverse edge).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) {
        debug_assert!(cap >= 0);
        let id = self.edges.len() as u32;
        self.edges.push(Edge { to: v as u32, cap });
        self.adj[u].push(id);
        self.edges.push(Edge {
            to: u as u32,
            cap: 0,
        });
        self.adj[v].push(id + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        self.level[s] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && self.level[e.to as usize] < 0 {
                    self.level[e.to as usize] = self.level[u] + 1;
                    queue.push_back(e.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: i64) -> i64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.adj[u].len() {
            let eid = self.adj[u][self.iter[u]] as usize;
            let (to, cap) = (self.edges[eid].to as usize, self.edges[eid].cap);
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, f.min(cap));
                if d > 0 {
                    self.edges[eid].cap -= d;
                    self.edges[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Compute the s-t max flow. Call once.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t);
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, INF);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Nodes reachable from `s` in the residual graph (call after
    /// [`max_flow`](Self::max_flow)): the source side of a min cut.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    stack.push(e.to as usize);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5);
        d.add_edge(1, 2, 3);
        assert_eq!(d.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(0, 2, 3);
        d.add_edge(1, 3, 4);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3), 3);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Figure 26.1: max flow 23.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 16);
        d.add_edge(0, 2, 13);
        d.add_edge(1, 2, 10);
        d.add_edge(2, 1, 4);
        d.add_edge(1, 3, 12);
        d.add_edge(3, 2, 9);
        d.add_edge(2, 4, 14);
        d.add_edge(4, 3, 7);
        d.add_edge(3, 5, 20);
        d.add_edge(4, 5, 4);
        assert_eq!(d.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_separates_s_and_t() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(1, 2, 10);
        d.add_edge(2, 3, 1);
        let f = d.max_flow(0, 3);
        assert_eq!(f, 1);
        let side = d.min_cut_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Cut capacity across the partition equals the flow.
    }

    #[test]
    fn disconnected_means_zero_flow() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 7);
        d.add_edge(2, 3, 7);
        assert_eq!(d.max_flow(0, 3), 0);
        let side = d.min_cut_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn infinite_edges_never_cut() {
        // s → a (5), a → b (INF), b → t (3): the min cut is 3 at b→t.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 5);
        d.add_edge(1, 2, INF);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow(0, 3), 3);
        let side = d.min_cut_side(0);
        assert!(side[1] && side[2], "the INF edge stays uncut");
    }
}
