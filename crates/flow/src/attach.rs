//! Plan diffing against a live overlay (multi-query attach).
//!
//! When a query attaches to a running system, the overlay has already been
//! extended in place ([`eagr_overlay::extend`]) and the existing nodes keep
//! the dataflow decisions the planner gave them — re-running the global
//! min-cut would flip decisions across the *whole* overlay and force a
//! full re-materialization, defeating the point of sharing. Instead,
//! [`extend_decisions`] computes only the delta:
//!
//! * every fresh node (new writer, new reader) is annotated **push** —
//!   cheap to keep incrementally current, and it avoids read-time
//!   recursion into subtrees whose hot/cold profile is still unknown
//!   (the §4.8 adaptive controller can demote them later);
//! * the **frontier constraint** is then restored by closure: a push
//!   node's entire transitive input set must be push, because the
//!   execution cascade ships deltas only to push consumers and pull nodes
//!   never re-emit — a push node with a pull input would silently miss
//!   contributions. Any pull node reachable upstream of a push node is
//!   upgraded, and reported so the engine can materialize it.

use crate::decide::{Decision, Decisions};
use eagr_overlay::{Overlay, OverlayId};
use eagr_util::FastSet;

/// Extend `old` decisions to cover an overlay that grew by `fresh` nodes.
///
/// Returns the new decision vector (fresh nodes push, everything else kept)
/// plus the list of *pre-existing* nodes upgraded pull→push by the frontier
/// closure — their PAOs are stale-empty and must be materialized (in
/// topological order) before the next read.
pub fn extend_decisions(
    ov: &Overlay,
    old: &Decisions,
    fresh: &[OverlayId],
) -> (Decisions, Vec<OverlayId>) {
    let n = ov.node_count();
    let mut of = old.of.clone();
    of.resize(n, Decision::Pull);
    for &f in fresh {
        of[f.idx()] = Decision::Push;
    }
    // Restore the frontier invariant: close the push set over transitive
    // inputs. Seeding from every push node makes this idempotent even if
    // the inherited decisions were already closed (they are, for
    // planner-produced decisions — writers are always push and the min-cut
    // keeps the push region upstream-closed).
    let mut upgraded = Vec::new();
    let mut stack: Vec<OverlayId> = ov
        .ids()
        .filter(|&n| of[n.idx()] == Decision::Push)
        .collect();
    while let Some(node) = stack.pop() {
        for &(src, _sign) in ov.inputs(node) {
            if of[src.idx()] == Decision::Pull {
                of[src.idx()] = Decision::Push;
                if !fresh.contains(&src) {
                    upgraded.push(src);
                }
                stack.push(src);
            }
        }
    }
    upgraded.sort_unstable();
    (Decisions { of }, upgraded)
}

/// The plan delta produced by a topology-mutation epoch: how the decision
/// vector extends over the repaired overlay and which push nodes must be
/// rematerialized before the next read.
#[derive(Clone, Debug)]
pub struct TopoDelta {
    /// The extended decision vector (fresh nodes push, old kept, frontier
    /// closed).
    pub decisions: Decisions,
    /// Pre-existing nodes upgraded pull→push by the frontier closure.
    pub upgraded: Vec<OverlayId>,
    /// Every push node whose stored PAO is stale or absent: fresh nodes,
    /// upgraded nodes, repair-rewired (`dirty`) nodes, and the downstream
    /// push closure of the dirty set (a stale partial poisons everything it
    /// feeds). Walk the overlay's topological order restricted to this set
    /// when rematerializing.
    pub materialize: FastSet<OverlayId>,
}

/// Map an incremental overlay repair to a plan delta, the same way
/// [`extend_decisions`] diffs for multi-query attach: decisions are extended
/// (never globally re-planned — that is the point of streaming topology
/// through the hot path), and the rematerialization set is the union of
/// fresh, upgraded, and dirty nodes, closed downstream over push edges.
///
/// `fresh` is the repair's appended overlay ids (still live), `dirty` the
/// [`DynamicOverlay::take_dirty`](eagr_overlay::DynamicOverlay::take_dirty)
/// seeds; retired ids in either are ignored.
pub fn topo_plan_delta(
    ov: &Overlay,
    old: &Decisions,
    fresh: &[OverlayId],
    dirty: &FastSet<OverlayId>,
) -> TopoDelta {
    let (decisions, upgraded) = extend_decisions(ov, old, fresh);
    let mut materialize: FastSet<OverlayId> = FastSet::default();
    let mut stack: Vec<OverlayId> = Vec::new();
    for &n in fresh.iter().chain(upgraded.iter()) {
        if !ov.is_retired(n) && materialize.insert(n) {
            stack.push(n);
        }
    }
    for &n in dirty {
        if !ov.is_retired(n) && materialize.insert(n) {
            stack.push(n);
        }
    }
    // Downstream closure: a node rebuilt from scratch also invalidates every
    // push consumer that folded its old value in. Pull consumers recompute
    // at read time and stop the walk (their consumers, by the frontier
    // invariant, are pull too).
    while let Some(n) = stack.pop() {
        for &(t, _sign) in ov.outputs(n) {
            if decisions.of[t.idx()] == Decision::Push && materialize.insert(t) {
                stack.push(t);
            }
        }
    }
    materialize.retain(|&n| decisions.of[n.idx()] == Decision::Push);
    TopoDelta {
        decisions,
        upgraded,
        materialize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagr_agg::Sign;
    use eagr_graph::NodeId;

    #[test]
    fn fresh_nodes_become_push_and_old_survive() {
        let mut ov = Overlay::default();
        let wa = ov.add_writer(NodeId(0));
        let r = ov.add_reader(NodeId(1));
        ov.add_edge(wa, r, Sign::Pos);
        let old = Decisions {
            of: vec![Decision::Push, Decision::Pull],
        };
        let wb = ov.add_writer(NodeId(2));
        let r2 = ov.add_reader(NodeId(3));
        ov.add_edge(wb, r2, Sign::Pos);
        let (d, upgraded) = extend_decisions(&ov, &old, &[wb, r2]);
        assert_eq!(d.of.len(), 4);
        assert_eq!(d.of[wa.idx()], Decision::Push);
        assert_eq!(d.of[r.idx()], Decision::Pull, "existing pull reader kept");
        assert_eq!(d.of[wb.idx()], Decision::Push);
        assert_eq!(d.of[r2.idx()], Decision::Push);
        assert!(upgraded.is_empty());
    }

    #[test]
    fn push_reader_over_pull_partial_upgrades_the_subtree() {
        let mut ov = Overlay::default();
        let wa = ov.add_writer(NodeId(0));
        let wb = ov.add_writer(NodeId(1));
        let p = ov.add_partial(&[wa, wb]);
        let r = ov.add_reader(NodeId(2));
        ov.add_edge(p, r, Sign::Pos);
        // Planner left the partial (and its reader) pull.
        let old = Decisions {
            of: vec![
                Decision::Push,
                Decision::Push,
                Decision::Pull,
                Decision::Pull,
            ],
        };
        // A fresh push reader reuses the pull partial.
        let r2 = ov.add_reader(NodeId(3));
        ov.add_edge(p, r2, Sign::Pos);
        let (d, upgraded) = extend_decisions(&ov, &old, &[r2]);
        assert_eq!(d.of[p.idx()], Decision::Push, "frontier closure upgrades p");
        assert_eq!(upgraded, vec![p]);
        assert_eq!(d.of[r.idx()], Decision::Pull, "old reader untouched");
    }

    #[test]
    fn topo_delta_closes_dirty_downstream_over_push() {
        // wa, wb → p → r (all push); wc direct → r.
        let mut ov = Overlay::default();
        let wa = ov.add_writer(NodeId(0));
        let wb = ov.add_writer(NodeId(1));
        let p = ov.add_partial(&[wa, wb]);
        let r = ov.add_reader(NodeId(2));
        ov.add_edge(p, r, Sign::Pos);
        let wc = ov.add_writer(NodeId(3));
        ov.add_edge(wc, r, Sign::Pos);
        let old = Decisions {
            of: vec![Decision::Push; 5],
        };
        // A repair rewired p's inputs: p is dirty, and the stale value it
        // fed into r makes r stale too.
        let mut dirty = FastSet::default();
        dirty.insert(p);
        let delta = topo_plan_delta(&ov, &old, &[], &dirty);
        assert!(delta.materialize.contains(&p));
        assert!(delta.materialize.contains(&r), "downstream closure");
        assert!(!delta.materialize.contains(&wa), "upstream untouched");
        assert!(!delta.materialize.contains(&wc));
        assert!(delta.upgraded.is_empty());
    }

    #[test]
    fn topo_delta_ignores_retired_and_pull_dirty() {
        let mut ov = Overlay::default();
        let wa = ov.add_writer(NodeId(0));
        let r = ov.add_reader(NodeId(1));
        ov.add_edge(wa, r, Sign::Pos);
        let gone = ov.add_reader(NodeId(2));
        ov.add_edge(wa, gone, Sign::Pos);
        ov.retire_node(gone);
        let old = Decisions {
            of: vec![Decision::Push, Decision::Pull, Decision::Pull],
        };
        let mut dirty = FastSet::default();
        dirty.insert(gone); // retired: ignored
        dirty.insert(r); // pull: nothing stored, nothing to rebuild
        let delta = topo_plan_delta(&ov, &old, &[], &dirty);
        assert!(delta.materialize.is_empty());
        // Fresh nodes still enter the set.
        let w2 = ov.add_writer(NodeId(3));
        ov.add_edge(w2, r, Sign::Pos);
        let delta = topo_plan_delta(&ov, &old, &[w2], &FastSet::default());
        assert!(delta.materialize.contains(&w2));
    }
}
