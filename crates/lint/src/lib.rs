//! `eagr-lint` — the workspace's concurrency-protocol linter.
//!
//! Eight PRs of the sharded EAGr runtime accreted a real concurrency
//! protocol: a global lock acquisition order, an epoch-gate
//! shared/exclusive discipline, `try_send`-with-inbox-service deadlock
//! freedom, panic-free worker loops, exhaustive protocol-enum matches,
//! and a per-atomic memory-ordering contract. This crate turns those
//! prose invariants into machine-checked rules.
//!
//! The analysis is deliberately lexical — a comment/string/char-aware
//! tokenizer ([`lexer`]), function/impl/scope region extraction, and
//! pattern matching over the token stream ([`rules`]) — because the
//! invariants are lexically recognizable and a full parser would add a
//! dependency this workspace does not allow. Justified exceptions are
//! written inline with the [`annotations`] grammar and carry a mandatory
//! reason.
//!
//! The pass runs three ways, all from one entry point
//! ([`scan_workspace`]):
//!
//! 1. `cargo run -p eagr-lint` — the CLI, used by the CI `lint` job;
//! 2. `crates/lint/tests/workspace.rs` — a `#[test]`, so plain
//!    `cargo test` (tier-1) fails on a protocol violation;
//! 3. fixture tests (`crates/lint/tests/fixtures.rs`) prove each rule
//!    fires on a known-bad snippet and stays quiet on an annotated one.
//!
//! The static rules are paired with dynamic rails: the vendored
//! `parking_lot`'s debug-build held-lock tracker enforces the same
//! [`LOCK_ORDER`] table at runtime (the table is defined there and
//! re-exported here, so the two can never drift), and a nightly
//! ThreadSanitizer job runs the concurrency suites.
//!
//! [`LOCK_ORDER`]: parking_lot::lock_order::LOCK_ORDER

#![forbid(unsafe_code)]

pub mod annotations;
pub mod lexer;
pub mod rules;

pub use rules::{check_source, Diagnostic, ATOMIC_POLICY};

// Re-exported so the static R1 rule and the runtime tracker share one
// policy table by construction.
pub use parking_lot::lock_order::{LOCK_ORDER, SHARED_REENTRANT};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A finding located in a file.
#[derive(Clone, Debug)]
pub struct FileDiagnostic {
    pub path: PathBuf,
    pub diag: Diagnostic,
}

impl std::fmt::Display for FileDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.diag.line,
            self.diag.rule,
            self.diag.message
        )
    }
}

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<FileDiagnostic>,
}

/// Scan every `.rs` file under `root` (skipping `target/` and `.git/`)
/// with the full rule set. Paths in the report are relative to `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for path in files {
        let text = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        for diag in check_source(&text) {
            report.diagnostics.push(FileDiagnostic {
                path: rel.clone(),
                diag,
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.diag.line).cmp(&(&b.path, b.diag.line)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
