//! CLI for the workspace linter: `eagr-lint [ROOT]`.
//!
//! Scans every `.rs` file under ROOT (default: the current directory),
//! prints one `path:line: [rule] message` per finding, and exits non-zero
//! when there are any — the CI `lint` job is exactly this invocation.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let report = match eagr_lint::scan_workspace(Path::new(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eagr-lint: failed to scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "eagr-lint: {} files clean (rules: lock-order, channel-discipline, panic-free, \
             protocol-exhaustive, atomic-policy, safety-comment, annotation)",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "eagr-lint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
