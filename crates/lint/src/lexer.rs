//! A comment/string/char-literal aware tokenizer for Rust source.
//!
//! This is deliberately **not** a Rust parser: the rules in
//! [`crate::rules`] are lexical pattern matchers over a token stream, and
//! all they need from the lexer is that text inside comments, string
//! literals, char literals, and lifetimes can never be mistaken for code.
//! Brace/paren/bracket tokens survive as punctuation so the rules can do
//! their own nesting arithmetic on a stream that is guaranteed free of
//! quoted impostors.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`match`, `fn`, `registry`, `_`, ...).
    Ident,
    /// Punctuation. Multi-char operators the rules depend on (`=>`, `::`,
    /// `->`) are fused into one token; everything else is one char.
    Punct,
    /// String literal (cooked, raw, byte, any `#` depth), as one token.
    Str,
    /// Char or byte-char literal, as one token.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One comment with its 1-based starting line. `trailing` is true when
/// code precedes the comment on the same line — that decides which line an
/// annotation in the comment anchors to (see [`crate::annotations`]).
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub trailing: bool,
}

/// Output of [`lex`]: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated literals are closed at end of
/// input, which is good enough for linting (rustc itself rejects them).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();
    // Whether any token has been emitted on the current line; decides
    // `Comment::trailing`.
    let mut code_on_line = false;

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            code_on_line = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[start..j].iter().collect(),
                line,
                trailing: code_on_line,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let trailing = code_on_line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                    continue;
                }
                if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                text.push(b[j]);
                j += 1;
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                trailing,
            });
            if line > start_line {
                code_on_line = false;
            }
            i = j;
            continue;
        }
        // String literals, including raw/byte prefixes: ", r", b", br"/rb"
        // with any number of #s after the r.
        if let Some((end, lines)) = string_literal_end(&b, i) {
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: b[i..end].iter().collect(),
                line,
            });
            line += lines;
            code_on_line = true;
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (kind, end) = char_or_lifetime(&b, i);
            out.tokens.push(Token {
                kind,
                text: b[i..end].iter().collect(),
                line,
            });
            code_on_line = true;
            i = end;
            continue;
        }
        // Identifier / keyword (raw identifiers r#name arrive here because
        // string_literal_end refused them).
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line,
            });
            code_on_line = true;
            i = j;
            continue;
        }
        // Number. Does not consume `.` so `0..n` and method calls survive;
        // `1.5` lexes as three tokens, which no rule cares about.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_continue(b[j])) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: b[i..j].iter().collect(),
                line,
            });
            code_on_line = true;
            i = j;
            continue;
        }
        // Punctuation, fusing the operators the rules match on.
        let fused = match (c, b.get(i + 1)) {
            ('=', Some('>')) => Some("=>"),
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            _ => None,
        };
        let (text, len) = match fused {
            Some(t) => (t.to_string(), 2),
            None => (c.to_string(), 1),
        };
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text,
            line,
        });
        code_on_line = true;
        i += len;
    }
    out
}

/// If a string literal starts at `i`, return `(end_index, newlines_inside)`.
fn string_literal_end(b: &[char], i: usize) -> Option<(usize, u32)> {
    let n = b.len();
    let mut j = i;
    // Optional byte/raw prefix, either order (`br` is real Rust, `rb` is
    // not, but accepting it costs nothing).
    let mut raw = false;
    if j < n && (b[j] == 'b' || b[j] == 'r') {
        if b[j] == 'r' {
            raw = true;
        }
        j += 1;
        if j < n && (b[j] == 'b' || b[j] == 'r') && b[j] != b[i] {
            if b[j] == 'r' {
                raw = true;
            }
            j += 1;
        }
    }
    let mut hashes = 0usize;
    if raw {
        while j < n && b[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= n || b[j] != '"' {
        return None; // not a string (e.g. plain ident `r`, raw ident `r#x`)
    }
    if raw && hashes == 0 && j == i {
        // unreachable shape; keep the guard explicit
        return None;
    }
    j += 1;
    let mut lines = 0u32;
    while j < n {
        if b[j] == '\n' {
            lines += 1;
            j += 1;
            continue;
        }
        if !raw && b[j] == '\\' {
            j += 2;
            continue;
        }
        if b[j] == '"' {
            if raw {
                // need `hashes` #s to close
                let mut k = 0usize;
                while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return Some((j + 1 + hashes, lines));
                }
            } else {
                return Some((j + 1, lines));
            }
        }
        j += 1;
    }
    Some((n, lines)) // unterminated: close at EOF
}

/// Classify the `'`-introduced item at `i`: char literal or lifetime.
/// Returns `(kind, end_index)`.
fn char_or_lifetime(b: &[char], i: usize) -> (TokKind, usize) {
    let n = b.len();
    if i + 1 >= n {
        return (TokKind::Char, n);
    }
    let next = b[i + 1];
    if next == '\\' {
        // Escaped char literal: skip the escape head, then scan to the
        // closing quote (covers \n, \', \u{...}).
        let mut j = i + 3;
        while j < n && b[j] != '\'' && b[j] != '\n' {
            j += 1;
        }
        return (TokKind::Char, (j + 1).min(n));
    }
    if is_ident_start(next) || next.is_ascii_digit() {
        // Ident-ish run: 'a' is a char only if exactly one char then a
        // closing quote; otherwise it is a lifetime ('a, 'static, '_).
        let mut j = i + 1;
        while j < n && is_ident_continue(b[j]) {
            j += 1;
        }
        if j == i + 2 && j < n && b[j] == '\'' {
            return (TokKind::Char, j + 1);
        }
        return (TokKind::Lifetime, j);
    }
    // Non-ident char literal: '.', ' ', '€', ...
    let mut j = i + 1;
    while j < n && b[j] != '\'' && b[j] != '\n' {
        j += 1;
    }
    (TokKind::Char, (j + 1).min(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let l = lex("let x = 1; // registry.lock()\n/* graph.read() */ y");
        assert_eq!(
            idents("let x = 1; // registry.lock()\n y"),
            ["let", "x", "y"]
        );
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(l.comments[0].text.contains("registry.lock()"));
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        let src = r##"let s = "a.lock()"; let r = r#"b { } "quote" "#; let c = '{'; let lt: &'static str = s;"##;
        let l = lex(src);
        assert!(!idents(src).iter().any(|t| t == "lock"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        // The `{` inside the char literal must not look like punctuation.
        assert_eq!(l.tokens.iter().filter(|t| t.is_punct("{")).count(), 0);
    }

    #[test]
    fn fused_operators() {
        let l = lex("match x { _ => a::b }");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, ["{", "=>", "::", "}"]);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("a\n/* x /* y */ z */\nb");
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[1].line, 3);
        assert_eq!(l.comments.len(), 1);
        assert!(!l.comments[0].trailing);
    }
}
