//! The rule set. Each rule is a lexical pattern matcher over the token
//! stream produced by [`crate::lexer`], scoped by the regions extracted in
//! the private `regions` module: function bodies, `impl` blocks, and
//! `thread::scope` call bodies.
//!
//! | id                    | invariant                                                        |
//! |-----------------------|------------------------------------------------------------------|
//! | `lock-order`          | R1: nested named-lock acquisitions respect [`LOCK_ORDER`]        |
//! | `channel-discipline`  | R2: shard-worker and transport paths only `try_send` (writer queues exempt) |
//! | `panic-free`          | R3: no `unwrap`/`expect`/`panic!`/`unreachable!` in worker loops or `thread::scope` bodies |
//! | `protocol-exhaustive` | R4: no `_ =>` wildcard arms on `ShardMsg`/`Event` matches        |
//! | `atomic-policy`       | R5: named atomics use the ordering [`ATOMIC_POLICY`] declares    |
//! | `safety-comment`      | R-SAFETY: every `unsafe` carries a nearby `// SAFETY:` comment   |
//! | `annotation`          | the `// lint:` grammar itself is well-formed                     |
//!
//! [`LOCK_ORDER`]: parking_lot::lock_order::LOCK_ORDER

use crate::annotations::{self, Anchored, Directive};
use crate::lexer::{Comment, Lexed, TokKind, Token};
use parking_lot::lock_order::{rank_of, LOCK_ORDER, SHARED_REENTRANT};

/// One finding. `line` is 1-based in the scanned file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// R5's checked-in policy: `(atomic field name, method, allowed orderings)`.
/// Only atomics named here are checked; an entry's orderings are the only
/// ones permitted for that `(name, method)` pair, and a method missing for
/// a named atomic is itself a violation. The table encodes the protocol:
/// cross-thread completion counters publish with `AcqRel`/`Acquire`
/// (epoch-drain and migration accounting must be visible at the fence),
/// slot-location words publish with `Release`/`Acquire` (readers must see
/// the PAO move), and pure statistics stay `Relaxed`.
pub const ATOMIC_POLICY: &[(&str, &str, &[&str])] = &[
    // epoch-drain pending-work counter (engine ↔ shard workers)
    ("pending", "fetch_add", &["AcqRel"]),
    ("pending", "fetch_sub", &["AcqRel"]),
    ("pending", "load", &["Acquire"]),
    // stream clock: monotonic watermark, observers tolerate staleness
    ("clock", "fetch_max", &["Relaxed"]),
    ("clock", "fetch_add", &["Relaxed"]),
    ("clock", "load", &["Relaxed"]),
    // LivePartition generation: readers revalidate snapshots against it
    ("generation", "fetch_add", &["AcqRel"]),
    ("generation", "load", &["Acquire"]),
    // single-flight migration guard
    ("migrating", "compare_exchange", &["AcqRel", "Acquire"]),
    ("migrating", "store", &["Release"]),
    ("migrating", "load", &["Acquire"]),
    // worker/prober shutdown flags
    ("stop", "store", &["Release"]),
    ("stop", "load", &["Acquire"]),
    ("done", "store", &["Release"]),
    ("done", "load", &["Acquire"]),
    // PAO slot-location words (shard, offset) — publish the move
    ("loc", "store", &["Release"]),
    ("loc", "load", &["Acquire"]),
    ("loc", "swap", &["AcqRel"]),
    // LivePartition owner array
    ("of", "store", &["Release"]),
    ("of", "load", &["Acquire"]),
    // orphaned-slot statistic (reclaimed lazily, exactness not required)
    ("orphans", "fetch_add", &["Relaxed"]),
    ("orphans", "load", &["Relaxed"]),
    ("orphans", "compare_exchange_weak", &["Relaxed"]),
    // epoch counters: statistics
    ("epochs", "fetch_add", &["Relaxed"]),
    ("epochs", "load", &["Relaxed"]),
    ("topo_epochs", "fetch_add", &["AcqRel"]),
    ("topo_epochs", "load", &["Acquire"]),
    // migration accounting, read after the fence
    ("rebalances", "fetch_add", &["AcqRel"]),
    ("rebalances", "load", &["Acquire"]),
    ("nodes_migrated", "fetch_add", &["AcqRel"]),
    ("nodes_migrated", "load", &["Acquire"]),
    ("coalesced", "fetch_add", &["AcqRel"]),
    ("coalesced", "load", &["Acquire"]),
    ("flips_total", "fetch_add", &["Relaxed"]),
    ("flips_total", "load", &["Relaxed"]),
    ("slots_reclaimed", "fetch_add", &["AcqRel"]),
    ("slots_reclaimed", "load", &["Acquire"]),
    ("reads_done", "fetch_add", &["AcqRel"]),
    ("reads_done", "load", &["Acquire"]),
    // per-shard work counters, read under the stats snapshot
    ("cross_out", "fetch_add", &["AcqRel"]),
    ("cross_out", "load", &["Acquire"]),
    ("reads", "fetch_add", &["AcqRel"]),
    ("reads", "load", &["Acquire"]),
    ("local", "fetch_add", &["Relaxed"]),
    ("local", "load", &["Acquire"]),
    // push/pull decision flags (SeqCst: flipped during replanning races)
    ("push_flag", "swap", &["SeqCst"]),
    ("push_flag", "load", &["Relaxed"]),
    // facade id/counter sources
    ("next_query", "fetch_add", &["Relaxed"]),
    ("ops", "fetch_add", &["Relaxed"]),
    // process-transport liveness: first fatal error wins the swap; every
    // engine call revalidates through `check()` before touching the wire
    ("dead", "swap", &["AcqRel"]),
    ("dead", "load", &["Acquire"]),
    // cooperative transport shutdown flag (pumps treat EOF as clean only
    // after they observe it)
    ("stopping", "store", &["Release"]),
    ("stopping", "load", &["Acquire"]),
    // state-plane request-id source: uniqueness only, replies correlate
    // through the mutex-guarded reply tables
    ("next_req", "fetch_add", &["Relaxed"]),
    // socket-path uniquifier: pure id source
    ("SOCKET_COUNTER", "fetch_add", &["Relaxed"]),
];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Lock names recognized by R1, mapping receiver identifier → declared
/// lock name (the slab vector field is `slabs`).
fn lock_name_of(recv: &str) -> Option<&'static str> {
    if recv == "slabs" {
        return Some("slab");
    }
    LOCK_ORDER.iter().find(|&&n| n == recv).copied()
}

/// Protocol enums whose matches R4 requires to stay exhaustive.
const PROTOCOL_ENUMS: &[&str] = &["ShardMsg", "Event"];

/// R2's coverage beyond `ShardWorker`: transport-side regions where a
/// blocking send could close the relay cycle (engine → host → coordinator
/// pump → host). Impl blocks are matched by self-type name, the pump
/// thread's body by function name.
const TRANSPORT_IMPLS: &[&str] = &["ProcessTransport"];
const TRANSPORT_FNS: &[&str] = &["pump_loop", "writer_loop"];

/// Receivers transport code may `.send` on freely: the per-host writer
/// queues (`outs`) are unbounded by construction, so a sender never blocks
/// on a slow peer's socket — the property that makes the coordinator relay
/// deadlock-free. Everything else (rendezvous reply channels included)
/// needs `try_send` or an annotated reason it cannot participate in a
/// cycle.
const TRANSPORT_UNBOUNDED: &[&str] = &["outs"];

mod regions {
    use super::{TokKind, Token};

    /// A function body (token indices of its `{`/`}`) plus what R2/R3 need
    /// to know about it.
    pub struct FnRegion {
        pub open: usize,
        pub close: usize,
        /// Line of the `fn` keyword (annotations between here and the body
        /// open line attach to the function).
        pub sig_line: u32,
        pub body_open_line: u32,
        /// True when the enclosing `impl` is for `ShardWorker`.
        pub in_shard_worker: bool,
        /// True when the function is transport-side relay/pump code (see
        /// [`super::TRANSPORT_IMPLS`] / [`super::TRANSPORT_FNS`]).
        pub in_transport: bool,
    }

    /// A `scope(...)` call's argument list (token indices of its `(`/`)`).
    pub struct ScopeRegion {
        pub open: usize,
        pub close: usize,
        pub open_line: u32,
    }

    /// Walk forward from an opening delimiter, returning the index of its
    /// matching closer (or `len` when unterminated).
    pub fn matching(tokens: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
        let mut depth = 0usize;
        for (i, t) in tokens.iter().enumerate().skip(open) {
            if t.is_punct(open_text) {
                depth += 1;
            } else if t.is_punct(close_text) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        tokens.len()
    }

    /// Extract `impl` block spans with the implemented type's name.
    fn impl_regions(tokens: &[Token]) -> Vec<(usize, usize, String)> {
        let mut out = Vec::new();
        let n = tokens.len();
        for i in 0..n {
            if !tokens[i].is_ident("impl") {
                continue;
            }
            // Header: skip generics, honor `for` (trait impls name the
            // self type after it), stop at the body `{`.
            let mut angle = 0i32;
            let mut self_ty: Option<String> = None;
            let mut j = i + 1;
            while j < n {
                let t = &tokens[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if angle == 0 {
                    if t.is_punct("{") {
                        break;
                    }
                    if t.is_punct(";") {
                        // `impl Trait` in a type position; not a block
                        j = n;
                        break;
                    }
                    if t.is_ident("for") {
                        self_ty = None;
                    } else if t.kind == TokKind::Ident
                        && self_ty.is_none()
                        && !matches!(t.text.as_str(), "where" | "dyn" | "const" | "unsafe")
                    {
                        self_ty = Some(t.text.clone());
                    }
                }
                j += 1;
            }
            if j >= n {
                continue;
            }
            let close = matching(tokens, j, "{", "}");
            out.push((j, close, self_ty.unwrap_or_default()));
        }
        out
    }

    /// Extract every function body, tagged with its enclosing impl.
    pub fn fn_regions(tokens: &[Token]) -> Vec<FnRegion> {
        let impls = impl_regions(tokens);
        let mut out = Vec::new();
        let n = tokens.len();
        for i in 0..n {
            if !tokens[i].is_ident("fn") {
                continue;
            }
            // Find the body `{`: first brace outside parens/angles, unless
            // a `;` ends the signature first (trait method declaration).
            let mut paren = 0i32;
            let mut angle = 0i32;
            let mut j = i + 1;
            let mut open = None;
            while j < n {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") {
                    paren += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    paren -= 1;
                } else if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if paren == 0 && angle <= 0 {
                    if t.is_punct("{") {
                        open = Some(j);
                        break;
                    }
                    if t.is_punct(";") {
                        break;
                    }
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let close = matching(tokens, open, "{", "}");
            let fn_name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .unwrap_or("");
            let in_shard_worker = impls
                .iter()
                .any(|&(o, c, ref name)| o < open && close <= c && name == "ShardWorker");
            let in_transport = super::TRANSPORT_FNS.contains(&fn_name)
                || impls.iter().any(|&(o, c, ref name)| {
                    o < open && close <= c && super::TRANSPORT_IMPLS.contains(&name.as_str())
                });
            out.push(FnRegion {
                open,
                close,
                sig_line: tokens[i].line,
                body_open_line: tokens[open].line,
                in_shard_worker,
                in_transport,
            });
        }
        out
    }

    /// Extract every `scope(...)` call's argument span.
    pub fn scope_regions(tokens: &[Token]) -> Vec<ScopeRegion> {
        let mut out = Vec::new();
        for i in 0..tokens.len().saturating_sub(1) {
            if tokens[i].is_ident("scope") && tokens[i + 1].is_punct("(") {
                let close = matching(tokens, i + 1, "(", ")");
                out.push(ScopeRegion {
                    open: i + 1,
                    close,
                    open_line: tokens[i].line,
                });
            }
        }
        out
    }
}

/// Walk back from the token before a `.` to the receiver's trailing
/// identifier, stepping over one `[...]` index. `self.slabs[s].write()`
/// resolves to `slabs`; a call result (`store().lock_shard(...)`) resolves
/// to `None`.
fn receiver_ident(tokens: &[Token], before_dot: usize) -> Option<&str> {
    let mut j = before_dot;
    if tokens[j].is_punct("]") {
        let mut depth = 0i32;
        loop {
            if tokens[j].is_punct("]") {
                depth += 1;
            } else if tokens[j].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (tokens[j].kind == TokKind::Ident).then(|| tokens[j].text.as_str())
}

/// A candidate finding plus an optional extra line where an `allow` also
/// suppresses it (R3 uses the enclosing scope's opening line).
struct Candidate {
    diag: Diagnostic,
    alt_anchor: Option<u32>,
}

/// Run every rule over one lexed file. `annotations` must come from the
/// same file. Returned diagnostics are already filtered through the
/// `allow` annotations and sorted by line.
pub fn check(lexed: &Lexed, anns: &[Anchored], ann_errors: &[(u32, String)]) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let fns = regions::fn_regions(tokens);
    let scopes = regions::scope_regions(tokens);
    let mut cands: Vec<Candidate> = Vec::new();

    for (line, msg) in ann_errors {
        cands.push(Candidate {
            diag: Diagnostic {
                rule: "annotation",
                line: *line,
                message: msg.clone(),
            },
            alt_anchor: None,
        });
    }

    for f in &fns {
        let holds: Vec<&str> = anns
            .iter()
            .filter_map(|a| match &a.directive {
                Directive::Holds { lock } if a.line >= f.sig_line && a.line <= f.body_open_line => {
                    Some(lock.as_str())
                }
                _ => None,
            })
            .collect();
        rule_lock_order(tokens, f, &holds, &mut cands);
        if f.in_shard_worker {
            rule_channel_discipline(tokens, f.open, f.close, &[], "shard-worker", &mut cands);
            rule_panic_free(
                tokens,
                f.open,
                f.close,
                "shard-worker loop",
                None,
                &mut cands,
            );
        }
        if f.in_transport && !f.in_shard_worker {
            rule_channel_discipline(
                tokens,
                f.open,
                f.close,
                TRANSPORT_UNBOUNDED,
                "transport",
                &mut cands,
            );
        }
    }
    for s in &scopes {
        rule_panic_free(
            tokens,
            s.open,
            s.close,
            "thread::scope body",
            Some(s.open_line),
            &mut cands,
        );
    }
    rule_protocol_exhaustive(tokens, &mut cands);
    rule_atomic_policy(tokens, &mut cands);
    rule_safety_comment(tokens, &lexed.comments, &mut cands);

    // Suppression: an `allow(rule, ...)` anchored at the finding's line
    // (or its alternate anchor) silences it. `annotation` findings are
    // never suppressible — the grammar itself must stay well-formed.
    let allowed = |rule: &str, line: u32| {
        anns.iter().any(|a| match &a.directive {
            Directive::Allow { rule: r, .. } => r == rule && a.line == line,
            _ => false,
        })
    };
    let mut out: Vec<Diagnostic> = cands
        .into_iter()
        .filter(|c| {
            c.diag.rule == "annotation"
                || !(allowed(c.diag.rule, c.diag.line)
                    || c.alt_anchor.is_some_and(|l| allowed(c.diag.rule, l)))
        })
        .map(|c| c.diag)
        .collect();
    out.sort_by_key(|d| (d.line, d.rule));
    out.dedup();
    out
}

/// R1: within one function body, track which named locks are held and
/// flag acquisitions that violate the declared order. Guards bound with
/// `let` live until `drop(binding)` or the end of their block; unbound
/// (temporary) guards live to the end of the statement. `holds`
/// pre-populates the held set from `// lint: holds(...)` annotations.
fn rule_lock_order(
    tokens: &[Token],
    f: &regions::FnRegion,
    holds: &[&str],
    cands: &mut Vec<Candidate>,
) {
    struct Held {
        rank: usize,
        name: &'static str,
        shared: bool,
        depth: i32,
        binding: Option<String>,
        temp: bool,
    }
    let mut held: Vec<Held> = holds
        .iter()
        .filter_map(|&l| {
            lock_name_of(l).map(|name| Held {
                rank: rank_of(name),
                name,
                shared: true,
                depth: 0,
                binding: None,
                temp: false,
            })
        })
        .collect();
    let mut depth = 0i32;
    let mut pending_binding: Option<String> = None;
    let mut i = f.open;
    while i < f.close {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
        } else if t.is_punct(";") {
            held.retain(|h| !h.temp);
            pending_binding = None;
        } else if t.is_ident("let") {
            // `let [mut] name = ...`
            let mut j = i + 1;
            if j < f.close && tokens[j].is_ident("mut") {
                j += 1;
            }
            if j < f.close && tokens[j].kind == TokKind::Ident {
                pending_binding = Some(tokens[j].text.clone());
            }
        } else if t.is_ident("drop")
            && i + 2 < f.close
            && tokens[i + 1].is_punct("(")
            && tokens[i + 2].kind == TokKind::Ident
            && i + 3 < f.close
            && tokens[i + 3].is_punct(")")
        {
            let g = &tokens[i + 2].text;
            if let Some(p) = held.iter().rposition(|h| h.binding.as_ref() == Some(g)) {
                held.remove(p);
            }
        } else if t.is_punct(".") && i + 1 < f.close && tokens[i + 1].kind == TokKind::Ident {
            let method = tokens[i + 1].text.as_str();
            // `.lock()` / `.read()` / `.write()` with *empty* parens — a
            // call with arguments is not a guard acquisition. The second
            // element is the index of the call's closing paren.
            let acquisition = match method {
                "lock" | "read" | "write"
                    if i + 3 < f.close
                        && tokens[i + 2].is_punct("(")
                        && tokens[i + 3].is_punct(")") =>
                {
                    receiver_ident(tokens, i - 1)
                        .and_then(lock_name_of)
                        .map(|name| (name, method == "read", i + 3))
                }
                // Store helpers that acquire a slab lock internally.
                "lock_shard" if i + 2 < f.close && tokens[i + 2].is_punct("(") => {
                    Some(("slab", false, regions::matching(tokens, i + 2, "(", ")")))
                }
                "snapshot_shard" if i + 2 < f.close && tokens[i + 2].is_punct("(") => {
                    Some(("slab", true, regions::matching(tokens, i + 2, "(", ")")))
                }
                _ => None,
            };
            if let Some((name, shared, call_close)) = acquisition {
                let rank = rank_of(name);
                for h in &held {
                    let reentrant_ok =
                        h.rank == rank && shared && h.shared && SHARED_REENTRANT.contains(&name);
                    if h.rank > rank || (h.rank == rank && !reentrant_ok) {
                        cands.push(Candidate {
                            diag: Diagnostic {
                                rule: "lock-order",
                                line: t.line,
                                message: format!(
                                    "acquiring `{name}` (rank {rank}, {}) while `{}` (rank {}, {}) \
                                     is held; declared order: {}",
                                    if shared { "shared" } else { "exclusive" },
                                    h.name,
                                    h.rank,
                                    if h.shared { "shared" } else { "exclusive" },
                                    LOCK_ORDER.join(" → ")
                                ),
                            },
                            alt_anchor: None,
                        });
                    }
                }
                // The `let` binding owns the guard only when the call is
                // the whole initializer (`let g = x.read();`); a longer
                // chain (`let n = x.read().len();`) drops the guard at the
                // end of the statement like any temporary.
                let direct = call_close + 1 < f.close && tokens[call_close + 1].is_punct(";");
                let binding = if direct { pending_binding.take() } else { None };
                let temp = binding.is_none();
                held.push(Held {
                    rank,
                    name,
                    shared,
                    depth,
                    binding,
                    temp,
                });
            }
        }
        i += 1;
    }
}

/// R2: inside shard-worker functions, a bare `.send(` is the deadlock the
/// bounded-channel protocol exists to prevent — cross-shard traffic must
/// go through `try_send` with inbox service on `Full`. The same check
/// covers transport relay/pump code ([`TRANSPORT_IMPLS`]/
/// [`TRANSPORT_FNS`]), where `sanctioned` exempts the unbounded writer
/// queues ([`TRANSPORT_UNBOUNDED`]) that make the relay deadlock-free.
fn rule_channel_discipline(
    tokens: &[Token],
    open: usize,
    close: usize,
    sanctioned: &[&str],
    region: &str,
    cands: &mut Vec<Candidate>,
) {
    for i in open..close.saturating_sub(1) {
        if tokens[i].is_punct(".")
            && tokens[i + 1].is_ident("send")
            && i + 2 < close
            && tokens[i + 2].is_punct("(")
        {
            if i > 0 && receiver_ident(tokens, i - 1).is_some_and(|r| sanctioned.contains(&r)) {
                continue;
            }
            cands.push(Candidate {
                diag: Diagnostic {
                    rule: "channel-discipline",
                    line: tokens[i + 1].line,
                    message: format!(
                        "blocking `.send` on a {region} code path — use `try_send` (servicing \
                         the inbox on `Full`), route payloads through an unbounded writer \
                         queue, or annotate why this channel cannot participate in a cycle"
                    ),
                },
                alt_anchor: None,
            });
        }
    }
}

/// R3: panic sites inside regions that must not panic (a panicking shard
/// worker or scope thread wedges everyone joined on it). An
/// `allow(panic-free, ...)` on the `scope(` line covers that whole body.
fn rule_panic_free(
    tokens: &[Token],
    open: usize,
    close: usize,
    region: &str,
    region_anchor: Option<u32>,
    cands: &mut Vec<Candidate>,
) {
    let mut push = |line: u32, what: &str| {
        cands.push(Candidate {
            diag: Diagnostic {
                rule: "panic-free",
                line,
                message: format!(
                    "`{what}` inside a {region} — handle the error or annotate the reason \
                     this cannot panic (a panic here wedges the scope join)"
                ),
            },
            alt_anchor: region_anchor,
        });
    };
    for i in open..close {
        let t = &tokens[i];
        if t.is_punct(".")
            && i + 1 < close
            && (tokens[i + 1].is_ident("unwrap") || tokens[i + 1].is_ident("expect"))
        {
            push(tokens[i + 1].line, &tokens[i + 1].text.clone());
        }
        if (t.is_ident("panic") || t.is_ident("unreachable"))
            && i + 1 < close
            && tokens[i + 1].is_punct("!")
        {
            push(t.line, &format!("{}!", t.text));
        }
    }
}

/// R4: a `match` whose arms name `ShardMsg::`/`Event::` variants must not
/// also have a bare `_` arm — new protocol variants must force every site
/// to choose, not fall through silently.
fn rule_protocol_exhaustive(tokens: &[Token], cands: &mut Vec<Candidate>) {
    let n = tokens.len();
    for m in 0..n {
        if !tokens[m].is_ident("match") {
            continue;
        }
        // Find the match body `{` (struct literals cannot appear unparenthesized
        // in a scrutinee, so the first top-level `{` is the body).
        let mut depth = 0i32;
        let mut body = None;
        for (j, t) in tokens.iter().enumerate().take(n).skip(m + 1) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                body = Some(j);
                break;
            } else if depth == 0 && t.is_punct(";") {
                break;
            }
        }
        let Some(body) = body else { continue };
        let end = regions::matching(tokens, body, "{", "}");
        // Parse arms: pattern tokens up to `=>` at arm depth 0, then skip
        // the arm's value.
        let mut protocol_match = false;
        let mut wildcard_lines: Vec<u32> = Vec::new();
        let mut i = body + 1;
        while i < end {
            // pattern
            let pat_start = i;
            let mut depth = 0i32;
            while i < end {
                let t = &tokens[i];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct("=>") {
                    break;
                }
                i += 1;
            }
            if i >= end {
                break;
            }
            let pat = &tokens[pat_start..i];
            if pat
                .windows(2)
                .any(|w| PROTOCOL_ENUMS.contains(&w[0].text.as_str()) && w[1].is_punct("::"))
            {
                protocol_match = true;
            }
            if pat.len() == 1 && pat[0].is_ident("_") {
                wildcard_lines.push(pat[0].line);
            }
            // value: a block, or an expression up to `,` at depth 0
            i += 1; // past `=>`
            if i < end && tokens[i].is_punct("{") {
                i = regions::matching(tokens, i, "{", "}") + 1;
                if i < end && tokens[i].is_punct(",") {
                    i += 1;
                }
            } else {
                let mut depth = 0i32;
                while i < end {
                    let t = &tokens[i];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(",") {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
        }
        if protocol_match {
            for line in wildcard_lines {
                cands.push(Candidate {
                    diag: Diagnostic {
                        rule: "protocol-exhaustive",
                        line,
                        message: "wildcard `_ =>` arm in a match over a protocol enum \
                                  (ShardMsg/Event) — list the variants so new protocol \
                                  messages force a decision at this site"
                            .into(),
                    },
                    alt_anchor: None,
                });
            }
        }
    }
}

/// R5: named atomics must use the orderings [`ATOMIC_POLICY`] declares.
fn rule_atomic_policy(tokens: &[Token], cands: &mut Vec<Candidate>) {
    let n = tokens.len();
    for i in 1..n {
        if !tokens[i - 1].is_punct(".") || tokens[i].kind != TokKind::Ident {
            continue;
        }
        let method = tokens[i].text.as_str();
        if !ATOMIC_METHODS.contains(&method) {
            continue;
        }
        if i + 1 >= n || !tokens[i + 1].is_punct("(") {
            continue;
        }
        let Some(recv) = receiver_ident(tokens, i - 2) else {
            continue;
        };
        if !ATOMIC_POLICY.iter().any(|&(name, _, _)| name == recv) {
            continue; // not a named atomic
        }
        let close = regions::matching(tokens, i + 1, "(", ")");
        // Collect every `Ordering::X` inside the call.
        let mut orderings: Vec<(&str, u32)> = Vec::new();
        for j in (i + 2)..close.min(n) {
            if tokens[j].is_ident("Ordering")
                && j + 2 < n
                && tokens[j + 1].is_punct("::")
                && tokens[j + 2].kind == TokKind::Ident
            {
                orderings.push((tokens[j + 2].text.as_str(), tokens[j + 2].line));
            }
        }
        if orderings.is_empty() {
            continue; // no explicit ordering in sight (e.g. not an atomic after all)
        }
        let recv = recv.to_string();
        match ATOMIC_POLICY
            .iter()
            .find(|&&(name, m, _)| name == recv && m == method)
        {
            None => cands.push(Candidate {
                diag: Diagnostic {
                    rule: "atomic-policy",
                    line: tokens[i].line,
                    message: format!(
                        "`{recv}.{method}` is not declared in the atomic-ordering policy \
                         table — add the (name, method, orderings) row to \
                         eagr_lint::rules::ATOMIC_POLICY or rename the atomic"
                    ),
                },
                alt_anchor: None,
            }),
            Some(&(_, _, allowed)) => {
                for (ord, line) in orderings {
                    if !allowed.contains(&ord) {
                        cands.push(Candidate {
                            diag: Diagnostic {
                                rule: "atomic-policy",
                                line,
                                message: format!(
                                    "`{recv}.{method}` uses Ordering::{ord}; policy allows \
                                     [{}]",
                                    allowed.join(", ")
                                ),
                            },
                            alt_anchor: None,
                        });
                    }
                }
            }
        }
    }
}

/// R-SAFETY: every `unsafe` token needs a `// SAFETY:` comment on the same
/// line or within the three lines above it. Workspace crates forbid unsafe
/// outright; this rule exists for vendor/, which stays exempt from
/// `forbid` but not from justification.
fn rule_safety_comment(tokens: &[Token], comments: &[Comment], cands: &mut Vec<Candidate>) {
    for t in tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let justified = comments.iter().any(|c| {
            c.text.to_uppercase().contains("SAFETY") && c.line <= t.line && c.line + 3 >= t.line
        });
        if !justified {
            cands.push(Candidate {
                diag: Diagnostic {
                    rule: "safety-comment",
                    line: t.line,
                    message: "`unsafe` without a nearby `// SAFETY:` comment — state the \
                              invariant that makes this sound"
                        .into(),
                },
                alt_anchor: None,
            });
        }
    }
}

/// Convenience used by the library entry point and the fixture tests:
/// lex + extract annotations + run all rules.
pub fn check_source(src: &str) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(src);
    let (anns, errs) = annotations::extract(&lexed);
    check(&lexed, &anns, &errs)
}
