//! The inline annotation grammar for justified exceptions.
//!
//! Two directives, both written as ordinary line comments:
//!
//! ```text
//! // lint: allow(<rule>, <reason>)
//! // lint: holds(<lock>)
//! ```
//!
//! `allow` suppresses one rule's diagnostics on the line it anchors to —
//! the same line for a trailing comment, the next code line for a
//! standalone comment — and **requires** a non-empty written reason.
//! `holds` declares that a function is only ever called while the named
//! lock (a name from the shared [`LOCK_ORDER`] table) is already held, so
//! rule R1 seeds its analysis of that function's body accordingly.
//!
//! A `// lint:` comment that does not parse, names an unknown rule or
//! lock, or carries an empty reason is itself a diagnostic (rule
//! `annotation`) — annotations are part of the checked surface, not an
//! escape hatch from it.
//!
//! [`LOCK_ORDER`]: parking_lot::lock_order::LOCK_ORDER

use crate::lexer::Lexed;
use parking_lot::lock_order::LOCK_ORDER;

/// Every rule id an `allow` may name.
pub const KNOWN_RULES: &[&str] = &[
    "lock-order",
    "channel-discipline",
    "panic-free",
    "protocol-exhaustive",
    "atomic-policy",
    "safety-comment",
    "annotation",
];

/// A parsed directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// `allow(<rule>, <reason>)`
    Allow { rule: String, reason: String },
    /// `holds(<lock>)`
    Holds { lock: String },
}

/// A directive anchored to the source line it governs.
#[derive(Clone, Debug)]
pub struct Anchored {
    pub directive: Directive,
    pub line: u32,
}

/// Render a directive back to its canonical comment form. Inverse of
/// [`parse_directive`] (see the round-trip test in `tests/fixtures.rs`).
pub fn format_directive(d: &Directive) -> String {
    match d {
        Directive::Allow { rule, reason } => format!("// lint: allow({rule}, {reason})"),
        Directive::Holds { lock } => format!("// lint: holds({lock})"),
    }
}

/// Parse one comment body (the text after `//`). Returns:
/// - `None` — not a lint directive at all (ordinary comment),
/// - `Some(Ok(d))` — a well-formed directive,
/// - `Some(Err(msg))` — a `// lint:` comment that does not conform.
pub fn parse_directive(comment_text: &str) -> Option<Result<Directive, String>> {
    let t = comment_text.trim();
    let rest = t.strip_prefix("lint:")?.trim();
    if let Some(body) = call_body(rest, "allow") {
        let Some((rule, reason)) = body.split_once(',') else {
            return Some(Err(
                "allow needs a reason: `lint: allow(<rule>, <reason>)`".into()
            ));
        };
        let rule = rule.trim();
        let reason = reason.trim().trim_matches('"').trim();
        if !KNOWN_RULES.contains(&rule) {
            return Some(Err(format!(
                "unknown rule `{rule}` in allow (known: {})",
                KNOWN_RULES.join(", ")
            )));
        }
        if reason.is_empty() {
            return Some(Err(format!(
                "allow({rule}) has an empty reason — write down why the exception is sound"
            )));
        }
        return Some(Ok(Directive::Allow {
            rule: rule.to_string(),
            reason: reason.to_string(),
        }));
    }
    if let Some(body) = call_body(rest, "holds") {
        let lock = body.trim();
        if !LOCK_ORDER.contains(&lock) {
            return Some(Err(format!(
                "unknown lock `{lock}` in holds (declared order: {})",
                LOCK_ORDER.join(" → ")
            )));
        }
        return Some(Ok(Directive::Holds {
            lock: lock.to_string(),
        }));
    }
    Some(Err(
        "unknown lint directive — expected `allow(<rule>, <reason>)` or `holds(<lock>)`".into(),
    ))
}

/// If `s` is `<head>(<body>)`, return the body.
fn call_body<'a>(s: &'a str, head: &str) -> Option<&'a str> {
    let inner = s.strip_prefix(head)?.trim_start();
    let inner = inner.strip_prefix('(')?;
    inner.strip_suffix(')')
}

/// Extract every directive from a lexed file and anchor it. A trailing
/// comment anchors to its own line; a standalone comment anchors to the
/// line of the first token after it. Malformed directives come back as
/// `(line, message)` pairs for the caller to turn into diagnostics.
pub fn extract(lexed: &Lexed) -> (Vec<Anchored>, Vec<(u32, String)>) {
    let mut anchored = Vec::new();
    let mut errors = Vec::new();
    // Token start lines, ascending, for "next code line" anchoring. Skip
    // nothing: any token counts as code.
    let token_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    for c in &lexed.comments {
        let Some(parsed) = parse_directive(&c.text) else {
            continue;
        };
        match parsed {
            Err(msg) => errors.push((c.line, msg)),
            Ok(directive) => {
                let line = if c.trailing {
                    c.line
                } else {
                    token_lines
                        .iter()
                        .copied()
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                anchored.push(Anchored { directive, line });
            }
        }
    }
    (anchored, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_anchors_to_same_line_standalone_to_next() {
        let src = "\
let a = 1; // lint: allow(panic-free, test body)
// lint: allow(lock-order, deliberate inversion)
let b = 2;
";
        let (anns, errs) = extract(&lex(src));
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].line, 1);
        assert_eq!(anns[1].line, 3);
    }

    #[test]
    fn malformed_directives_are_errors() {
        for bad in [
            "// lint: allow(panic-free)",        // no reason
            "// lint: allow(panic-free, )",      // empty reason
            "// lint: allow(no-such-rule, x)",   // unknown rule
            "// lint: holds(doorknob)",          // unknown lock
            "// lint: disable(everything, pls)", // unknown directive
        ] {
            let (_, errs) = extract(&lex(bad));
            assert_eq!(errs.len(), 1, "expected error for {bad:?}");
        }
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (anns, errs) = extract(&lex("// just words about lint things\nlet x = 1;"));
        assert!(anns.is_empty() && errs.is_empty());
    }
}
