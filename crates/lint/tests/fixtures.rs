//! Fixture tests: every rule has (a) a known-bad snippet that produces
//! exactly the expected diagnostic and (b) an annotated (or corrected)
//! snippet that passes, plus a self-check that the annotation grammar
//! round-trips. The snippets live in string literals on purpose — the
//! workspace self-scan lexes this file too, and the lexer's string
//! awareness keeps the deliberately-bad code invisible to it.

use eagr_lint::annotations::{format_directive, parse_directive, Directive};
use eagr_lint::check_source;

/// Assert `src` yields exactly one diagnostic, of `rule`, at `line`.
fn expect_one(src: &str, rule: &str, line: u32) {
    let diags = check_source(src);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one [{rule}] finding, got: {diags:#?}"
    );
    assert_eq!(diags[0].rule, rule, "wrong rule: {diags:#?}");
    assert_eq!(diags[0].line, line, "wrong line: {diags:#?}");
}

fn expect_clean(src: &str) {
    let diags = check_source(src);
    assert!(diags.is_empty(), "expected no findings, got: {diags:#?}");
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_lock_order_inversion_fires() {
    expect_one(
        "fn f(&self) {\n    let g = self.graph.write();\n    let r = self.registry.read();\n}\n",
        "lock-order",
        3,
    );
}

#[test]
fn r1_lock_order_in_order_and_annotated_pass() {
    expect_clean(
        "fn f(&self) {\n    let r = self.registry.read();\n    let g = self.graph.write();\n}\n",
    );
    expect_clean(
        "fn f(&self) {\n    let g = self.graph.write();\n    // lint: allow(lock-order, test fixture proving suppression works)\n    let r = self.registry.read();\n}\n",
    );
}

#[test]
fn r1_drop_releases_the_guard() {
    expect_clean(
        "fn f(&self) {\n    let g = self.graph.write();\n    drop(g);\n    let r = self.registry.read();\n}\n",
    );
}

#[test]
fn r1_block_scope_releases_the_guard() {
    expect_clean(
        "fn f(&self) {\n    {\n        let g = self.graph.write();\n    }\n    let r = self.registry.read();\n}\n",
    );
}

#[test]
fn r1_temporary_guard_dies_at_statement_end() {
    // The chained call binds a length, not the guard.
    expect_clean(
        "fn f(&self) {\n    let n = self.graph.read().len();\n    let r = self.registry.read();\n}\n",
    );
}

#[test]
fn r1_holds_seeds_the_held_set() {
    // Exclusive slab acquisition while (declared) holding a shared slab:
    // same rank, not shared-shared, so it fires.
    expect_one(
        "// lint: holds(slab)\nfn f(&self) {\n    let g = self.slabs[0].write();\n}\n",
        "lock-order",
        3,
    );
    // Shared-shared at the slab rank is the declared reentrancy exception.
    expect_clean("// lint: holds(slab)\nfn f(&self) {\n    let g = self.slabs[0].read();\n}\n");
}

// ---------------------------------------------------------------- R2

const R2_BAD: &str = "\
impl<A: Aggregate> ShardWorker<A> {
    fn run(&self) {
        self.txs[0].send(msg);
    }
}
";

#[test]
fn r2_bare_send_in_worker_fires() {
    expect_one(R2_BAD, "channel-discipline", 3);
}

#[test]
fn r2_try_send_annotated_and_non_worker_pass() {
    expect_clean(
        "impl<A: Aggregate> ShardWorker<A> {\n    fn run(&self) {\n        self.txs[0].try_send(msg);\n    }\n}\n",
    );
    expect_clean(
        "impl<A: Aggregate> ShardWorker<A> {\n    fn run(&self) {\n        // lint: allow(channel-discipline, fixture reply channel cannot cycle)\n        self.txs[0].send(msg);\n    }\n}\n",
    );
    // The same send outside a ShardWorker impl is not worker code.
    expect_clean("impl Engine {\n    fn run(&self) {\n        self.txs[0].send(msg);\n    }\n}\n");
}

#[test]
fn r2_transport_regions_are_covered() {
    // A bare send on a non-sanctioned channel inside a ProcessTransport
    // impl is a relay-cycle hazard.
    expect_one(
        "impl<A: Aggregate> ProcessTransport<A> {\n    fn relay(&self) {\n        tx.send(reply);\n    }\n}\n",
        "channel-discipline",
        3,
    );
    // So is one inside the pump thread's free function.
    expect_one(
        "fn pump_loop(shard: usize) {\n    tx.send(reply);\n}\n",
        "channel-discipline",
        2,
    );
}

#[test]
fn r2_transport_writer_queue_and_annotated_pass() {
    // The unbounded writer queues are the sanctioned non-blocking path.
    expect_clean(
        "impl<A: Aggregate> ProcessTransport<A> {\n    fn enqueue(&self) {\n        self.shared.outs[shard].send(payload);\n    }\n}\n",
    );
    expect_clean("fn pump_loop(shard: usize) {\n    shared.outs[dest].send(payload);\n}\n");
    // Rendezvous replies carry an annotation explaining the acyclicity.
    expect_clean(
        "fn pump_loop(shard: usize) {\n    // lint: allow(channel-discipline, fixture rendezvous reply cannot cycle)\n    tx.send(reply);\n}\n",
    );
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_unwrap_in_worker_fires() {
    expect_one(
        "impl ShardWorker<A> {\n    fn handle(&self) {\n        let v = self.rx.recv().unwrap();\n    }\n}\n",
        "panic-free",
        3,
    );
}

#[test]
fn r3_panic_in_scope_body_fires() {
    expect_one(
        "fn t() {\n    std::thread::scope(|s| {\n        s.spawn(|| panic!(\"boom\"));\n    });\n}\n",
        "panic-free",
        3,
    );
}

#[test]
fn r3_scope_line_allow_covers_the_body() {
    expect_clean(
        "fn t() {\n    // lint: allow(panic-free, test body — panics propagate through the scope join as the test failure)\n    std::thread::scope(|s| {\n        s.spawn(|| other.join().unwrap());\n    });\n}\n",
    );
}

#[test]
fn r3_unwrap_outside_worker_or_scope_passes() {
    expect_clean("fn t() {\n    let v = compute().unwrap();\n}\n");
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_wildcard_on_protocol_enum_fires() {
    expect_one(
        "fn f(m: ShardMsg) {\n    match m {\n        ShardMsg::Stop => {}\n        _ => {}\n    }\n}\n",
        "protocol-exhaustive",
        4,
    );
}

#[test]
fn r4_exhaustive_annotated_and_non_protocol_pass() {
    expect_clean(
        "fn f(e: Event) {\n    match e {\n        Event::Write { .. } => {}\n        Event::Read { .. } => {}\n    }\n}\n",
    );
    expect_clean(
        "fn f(m: ShardMsg) {\n    match m {\n        ShardMsg::Stop => {}\n        // lint: allow(protocol-exhaustive, fixture — suppression must anchor the wildcard arm)\n        _ => {}\n    }\n}\n",
    );
    // `_` on a non-protocol enum is ordinary Rust.
    expect_clean(
        "fn f(x: Option<u32>) {\n    match x {\n        Some(3) => {}\n        _ => {}\n    }\n}\n",
    );
    // A protocol path in the *scrutinee* does not make the arms protocol arms.
    expect_clean(
        "fn f(&self) {\n    match self.tx.try_send(ShardMsg::Stop) {\n        Ok(()) => {}\n        _ => {}\n    }\n}\n",
    );
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_wrong_ordering_fires() {
    expect_one(
        "fn f(&self) {\n    self.pending.fetch_add(1, Ordering::Relaxed);\n}\n",
        "atomic-policy",
        2,
    );
}

#[test]
fn r5_undeclared_method_on_named_atomic_fires() {
    expect_one(
        "fn f(&self) {\n    self.pending.swap(0, Ordering::AcqRel);\n}\n",
        "atomic-policy",
        2,
    );
}

#[test]
fn r5_declared_ordering_unnamed_atomic_and_annotated_pass() {
    expect_clean("fn f(&self) {\n    self.pending.fetch_add(1, Ordering::AcqRel);\n}\n");
    expect_clean(
        "fn f(&self) {\n    self.migrating.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire);\n}\n",
    );
    // Atomics the policy table does not name are unchecked.
    expect_clean("fn f(&self) {\n    self.scratch.fetch_add(1, Ordering::Relaxed);\n}\n");
    expect_clean(
        "fn f(&self) {\n    // lint: allow(atomic-policy, fixture — suppression must work for R5 too)\n    self.pending.fetch_add(1, Ordering::Relaxed);\n}\n",
    );
}

#[test]
fn r5_transport_atomics_are_in_the_policy() {
    // The transport liveness/shutdown words publish with Release/Acquire.
    expect_one(
        "fn f(&self) {\n    self.dead.swap(true, Ordering::Relaxed);\n}\n",
        "atomic-policy",
        2,
    );
    expect_one(
        "fn f(&self) {\n    shared.stopping.store(true, Ordering::Relaxed);\n}\n",
        "atomic-policy",
        2,
    );
    expect_clean("fn f(&self) {\n    self.dead.swap(true, Ordering::AcqRel);\n}\n");
    expect_clean("fn f(&self) {\n    shared.stopping.load(Ordering::Acquire);\n}\n");
    // Pure id sources stay Relaxed.
    expect_clean("fn f(&self) {\n    self.shared.next_req.fetch_add(1, Ordering::Relaxed);\n}\n");
}

// ---------------------------------------------------------------- R-SAFETY

#[test]
fn safety_comment_missing_fires() {
    expect_one(
        "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        "safety-comment",
        2,
    );
}

#[test]
fn safety_comment_present_passes() {
    expect_clean(
        "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n",
    );
}

// ---------------------------------------------------------------- annotation grammar

#[test]
fn malformed_annotations_are_diagnostics() {
    // Missing reason.
    expect_one("// lint: allow(panic-free)\nfn f() {}\n", "annotation", 1);
    // Unknown rule.
    expect_one(
        "// lint: allow(warp-core, because)\nfn f() {}\n",
        "annotation",
        1,
    );
    // Unknown lock in holds.
    expect_one("// lint: holds(doorknob)\nfn f() {}\n", "annotation", 1);
}

#[test]
fn annotation_diagnostics_are_not_suppressible() {
    // An allow(annotation, ...) must not silence a malformed directive.
    let src = "// lint: allow(annotation, nice try)\n// lint: allow(panic-free)\nfn f() {}\n";
    let diags = check_source(src);
    assert!(
        diags.iter().any(|d| d.rule == "annotation" && d.line == 2),
        "malformed directive must survive: {diags:#?}"
    );
}

#[test]
fn annotation_grammar_round_trips() {
    let cases = [
        Directive::Allow {
            rule: "lock-order".into(),
            reason: "deliberate inversion in a tracker test".into(),
        },
        Directive::Allow {
            rule: "panic-free".into(),
            reason: "join propagates the panic as the test failure".into(),
        },
        Directive::Holds {
            lock: "slab".into(),
        },
    ];
    for d in cases {
        let rendered = format_directive(&d);
        let comment_body = rendered.strip_prefix("//").expect("canonical form");
        let parsed = parse_directive(comment_body)
            .expect("directive")
            .expect("well-formed");
        assert_eq!(parsed, d, "round-trip through {rendered:?}");
    }
}
