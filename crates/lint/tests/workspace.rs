//! The workspace self-scan as a tier-1 test: `cargo test` fails on any
//! protocol violation anywhere in the repository, with the same findings
//! the `eagr-lint` binary and the CI `lint` job would print.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = eagr_lint::scan_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    if !report.diagnostics.is_empty() {
        let listing: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        panic!(
            "eagr-lint found {} violation(s):\n{}\n\nFix the code or add a \
             `// lint: allow(<rule>, <reason>)` with a written justification.",
            listing.len(),
            listing.join("\n")
        );
    }
}
