//! The CI bench-regression gate: compare fresh `BENCH_*.json` artifacts
//! (emitted by the fig14 harnesses via `EAGR_BENCH_JSON_DIR`) against the
//! committed baselines under `benches/baselines/`.
//!
//! Two kinds of checks, deliberately different in strictness:
//!
//! * **Delta-count invariants** are deterministic for a fixed scale and
//!   seed (routing depends only on the partition and the workload, never
//!   on thread interleaving), so they are enforced as hard structural
//!   facts of the *current* run: edge-cut must keep beating hash, live
//!   rebalancing must keep beating the frozen stale map. Losing one of
//!   these is a correctness-of-claim regression, not noise.
//! * **Throughput** is hardware-dependent, so absolute ops/s are never
//!   compared across machines. Each run is first normalized *within
//!   itself* (sharded vs its own single-thread row, shard-executed reads
//!   vs their own caller-thread row, rebalancing vs frozen) and the
//!   normalized shape is compared against the baseline's with a 25%
//!   tolerance — the ISSUE-mandated regression bar.
//!
//! Usage (what the `bench-check` CI job runs):
//!
//! ```text
//! cargo run --release -p eagr_bench --bin bench_check -- \
//!     --baseline benches/baselines --current "$EAGR_BENCH_JSON_DIR"
//! ```
//!
//! Exits non-zero with one line per violated check.

use eagr_bench::Json;
use std::path::{Path, PathBuf};

/// Allowed throughput-shape regression vs the baseline (>25% fails).
///
/// Every normalized comparison clamps the baseline at parity
/// (`min(baseline, 1.0)`) before applying the tolerance: the gated claims
/// are "≥ the in-run reference" (sharded vs single-thread, shard-executed
/// vs caller-thread reads), so a baseline that captured a lucky
/// above-parity run on a bimodal oversubscribed box must not raise the
/// bar — dropping from 1.2x to 0.9x of the reference is scheduler noise,
/// dropping below 0.75x of the reference (or of an already-below-parity
/// baseline) is a real regression.
const THROUGHPUT_TOLERANCE: f64 = 0.75;

/// The regression bar for a normalized throughput ratio: 25% under the
/// parity-clamped baseline.
fn throughput_bar(baseline_ratio: f64) -> f64 {
    THROUGHPUT_TOLERANCE * baseline_ratio.min(1.0)
}
/// Edge-cut must ship at most this fraction of hash's cross-shard deltas.
const EDGE_CUT_VS_HASH: f64 = 0.8;
/// Rebalancing must ship at most this fraction of the frozen map's
/// cross-shard deltas over the rotated phases.
const REBALANCE_VS_FROZEN: f64 = 0.85;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let baseline_dir =
        PathBuf::from(arg("--baseline").unwrap_or_else(|| "benches/baselines".into()));
    let current_dir =
        PathBuf::from(arg("--current").unwrap_or_else(|| {
            std::env::var("EAGR_BENCH_JSON_DIR").unwrap_or_else(|_| ".".into())
        }));

    let mut failures: Vec<String> = Vec::new();
    let mut checked = 0usize;

    let mut names: Vec<String> = match std::fs::read_dir(&baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("bench-check: cannot read {}: {e}", baseline_dir.display());
            std::process::exit(2);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!(
            "bench-check: no BENCH_*.json baselines in {}",
            baseline_dir.display()
        );
        std::process::exit(2);
    }

    for name in &names {
        let baseline = match load(&baseline_dir.join(name)) {
            Ok(j) => j,
            Err(e) => {
                failures.push(format!("{name}: unreadable baseline: {e}"));
                continue;
            }
        };
        let current = match load(&current_dir.join(name)) {
            Ok(j) => j,
            Err(e) => {
                failures.push(format!(
                    "{name}: missing/unreadable current artifact in {}: {e}",
                    current_dir.display()
                ));
                continue;
            }
        };
        let before = failures.len();
        match name.as_str() {
            "BENCH_fig14.json" => check_fig14(&baseline, &current, &mut failures),
            "BENCH_fig14_reads.json" => check_fig14_reads(&baseline, &current, &mut failures),
            "BENCH_fig14_rebalance.json" => {
                check_fig14_rebalance(&baseline, &current, &mut failures)
            }
            "BENCH_fig_multiquery.json" => check_fig_multiquery(&baseline, &current, &mut failures),
            "BENCH_fig_churn.json" => check_fig_churn(&baseline, &current, &mut failures),
            // Unknown artifacts only gate on presence (checked above).
            _ => {}
        }
        checked += 1;
        println!(
            "bench-check: {name} — {}",
            if failures.len() == before {
                "ok"
            } else {
                "FAIL"
            }
        );
    }

    if failures.is_empty() {
        println!("bench-check: all {checked} artifacts within bounds");
    } else {
        eprintln!("\nbench-check: {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text)
}

fn rows(doc: &Json) -> &[Json] {
    doc.get("rows").and_then(Json::as_arr).unwrap_or(&[])
}

/// `rows` entry matching every `(key, value)` string/number pair.
fn find_row<'a>(doc: &'a Json, keys: &[(&str, &str)], nums: &[(&str, f64)]) -> Option<&'a Json> {
    rows(doc).iter().find(|r| {
        keys.iter()
            .all(|(k, v)| r.get(k).and_then(Json::as_str) == Some(*v))
            && nums
                .iter()
                .all(|(k, v)| r.get(k).and_then(Json::as_num) == Some(*v))
    })
}

fn num(row: &Json, key: &str) -> Option<f64> {
    row.get(key)
        .and_then(Json::as_num)
        .filter(|x| x.is_finite())
}

/// fig14(d): write ingestion per engine/strategy/shards.
fn check_fig14(baseline: &Json, current: &Json, failures: &mut Vec<String>) {
    // Hard invariant on the current run, at every shard count the
    // *baseline* covers — deriving the list from the current artifact
    // would let a harness change that silently stops emitting a
    // configuration slip past the gate.
    let shard_counts: Vec<f64> = {
        let mut s: Vec<f64> = rows(baseline)
            .iter()
            .filter_map(|r| num(r, "shards"))
            .collect();
        s.sort_by(f64::total_cmp);
        s.dedup();
        s
    };
    // Coverage: the current artifact must keep every baseline row's
    // (engine, strategy, shards) combination, so the class geomeans below
    // always average the same population.
    for base_row in rows(baseline) {
        let engine = base_row.get("engine").and_then(Json::as_str).unwrap_or("");
        let mut keys = vec![("engine", engine)];
        if let Some(strategy) = base_row.get("strategy").and_then(Json::as_str) {
            keys.push(("strategy", strategy));
        }
        let nums: Vec<(&str, f64)> = num(base_row, "shards")
            .map(|s| vec![("shards", s)])
            .unwrap_or_default();
        if find_row(current, &keys, &nums).is_none() {
            failures.push(format!(
                "fig14: baseline row missing from current artifact: {keys:?} {nums:?}"
            ));
        }
    }
    for &shards in &shard_counts {
        let hash = find_row(current, &[("strategy", "hash")], &[("shards", shards)])
            .and_then(|r| num(r, "cross_shard_deltas"));
        let ec = find_row(current, &[("strategy", "edge-cut")], &[("shards", shards)])
            .and_then(|r| num(r, "cross_shard_deltas"));
        match (hash, ec) {
            (Some(hash), Some(ec)) => {
                if ec > EDGE_CUT_VS_HASH * hash {
                    failures.push(format!(
                        "fig14: edge-cut delta reduction lost at {shards} shards: \
                         edge-cut={ec:.0} > {EDGE_CUT_VS_HASH} x hash={hash:.0}"
                    ));
                }
            }
            _ => failures.push(format!(
                "fig14: missing hash/edge-cut cross_shard_deltas at {shards} shards"
            )),
        }
    }
    // Throughput shape, per engine *class*: the geometric mean of
    // ops/single over all of a class's rows, compared against the
    // baseline's mean. Per-row ratios are not gateable — on an
    // oversubscribed runner, *which* (shards × strategy) config the
    // scheduler happens to favor swings run to run far past any sane
    // tolerance — while the class-level mean stays stable and still drops
    // >25% when the engine class genuinely regresses. Strategy-specific
    // regressions are caught exactly by the deterministic delta
    // invariants above.
    let single = |doc: &Json| {
        find_row(doc, &[("engine", "single-thread")], &[]).and_then(|r| num(r, "ops_per_s"))
    };
    let (Some(base_single), Some(cur_single)) = (single(baseline), single(current)) else {
        failures.push("fig14: missing single-thread row".into());
        return;
    };
    let class_mean = |doc: &Json, engine: &str, single: f64| -> Option<f64> {
        let ratios: Vec<f64> = rows(doc)
            .iter()
            .filter(|r| r.get("engine").and_then(Json::as_str) == Some(engine))
            .filter_map(|r| num(r, "ops_per_s"))
            .map(|ops| ops / single)
            .collect();
        (!ratios.is_empty())
            .then(|| (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp())
    };
    for engine in ["two-pool", "sharded"] {
        match (
            class_mean(baseline, engine, base_single),
            class_mean(current, engine, cur_single),
        ) {
            (Some(base), Some(cur)) => {
                if cur < throughput_bar(base) {
                    failures.push(format!(
                        "fig14: >25% throughput regression for the {engine} engine class: \
                         geomean {cur:.3}x single vs baseline {base:.3}x"
                    ));
                }
            }
            (Some(_), None) => {
                failures.push(format!("fig14: {engine} rows missing in current artifact"))
            }
            (None, _) => failures.push(format!("fig14: {engine} rows missing in baseline")),
        }
    }
}

/// fig_multiquery: PAO reuse on warm attach. Every invariant here is a
/// deterministic structural fact of the current run (the overlay and the
/// attach diff depend only on the graph seed and the coverage bounds,
/// never on timing), so the gate is hard — no tolerance:
///
/// * the cold build materializes a nonzero PAO count;
/// * every warm-attach coverage level the baseline recorded is still
///   emitted, materializes **strictly fewer** PAOs than the cold build,
///   and reuses at least one live PAO (`reuse_fraction > 0`);
/// * the churn scenario still completes with a positive attach rate.
///
/// Attach latency and churn throughput are hardware-dependent and are
/// deliberately not gated.
fn check_fig_multiquery(baseline: &Json, current: &Json, failures: &mut Vec<String>) {
    let cold = find_row(current, &[("row", "cold-build")], &[]).and_then(|r| num(r, "paos"));
    let Some(cold) = cold.filter(|&p| p > 0.0) else {
        failures.push("fig_multiquery: missing or empty cold-build row".into());
        return;
    };
    let coverages: Vec<f64> = rows(baseline)
        .iter()
        .filter(|r| r.get("row").and_then(Json::as_str) == Some("warm-attach"))
        .filter_map(|r| num(r, "coverage_pct"))
        .collect();
    if coverages.is_empty() {
        failures.push("fig_multiquery: baseline has no warm-attach rows".into());
    }
    for &pct in &coverages {
        let Some(row) = find_row(current, &[("row", "warm-attach")], &[("coverage_pct", pct)])
        else {
            failures.push(format!(
                "fig_multiquery: warm-attach row at {pct}% coverage missing from current artifact"
            ));
            continue;
        };
        match (num(row, "materialized"), num(row, "reuse_fraction")) {
            (Some(mat), Some(reuse)) => {
                if mat >= cold {
                    failures.push(format!(
                        "fig_multiquery: warm attach at {pct}% no longer beats the cold build: \
                         materialized={mat:.0} >= cold={cold:.0}"
                    ));
                }
                if reuse <= 0.0 {
                    failures.push(format!(
                        "fig_multiquery: PAO reuse lost at {pct}% coverage: \
                         reuse_fraction={reuse:.3}"
                    ));
                }
            }
            _ => failures.push(format!(
                "fig_multiquery: warm-attach row at {pct}% lacks materialized/reuse_fraction"
            )),
        }
    }
    let churn_ok = find_row(current, &[("row", "churn")], &[])
        .and_then(|r| num(r, "attaches_per_s"))
        .is_some_and(|a| a > 0.0);
    if !churn_ok {
        failures.push("fig_multiquery: churn row missing or attach rate not positive".into());
    }
}

/// fig_churn: the sharded hot path under streaming topology mutations.
///
/// Hard (deterministic) invariants of the current run:
///
/// * every `(churn_pct, engine)` row the baseline recorded is still
///   emitted;
/// * every sharded row reports `answers_match == 1` — the sharded system
///   equals the single-threaded reference on the same mixed stream, at
///   every churn level;
/// * every nonzero churn level applied mutations and ran at least one
///   topology epoch (the repair path cannot silently stop running).
///
/// Throughput shape: the sharded ops/s at each churn level, normalized
/// by the same run's 0%-churn sharded row (hardware-independent), under
/// the usual 25% tolerance — churn overhead must not quietly explode.
fn check_fig_churn(baseline: &Json, current: &Json, failures: &mut Vec<String>) {
    for base_row in rows(baseline) {
        let engine = base_row.get("engine").and_then(Json::as_str).unwrap_or("");
        let Some(pct) = num(base_row, "churn_pct") else {
            continue;
        };
        let Some(row) = find_row(current, &[("engine", engine)], &[("churn_pct", pct)]) else {
            failures.push(format!(
                "fig_churn: baseline row missing from current artifact: {engine} at {pct}%"
            ));
            continue;
        };
        if engine == "sharded" && num(row, "answers_match") != Some(1.0) {
            failures.push(format!(
                "fig_churn: sharded answers diverged from the single-threaded \
                 reference at {pct}% churn"
            ));
        }
        if pct > 0.0 {
            if !num(row, "mutations").is_some_and(|m| m > 0.0) {
                failures.push(format!("fig_churn: no mutations applied at {pct}% churn"));
            }
            if !num(row, "topo_epochs").is_some_and(|e| e >= 1.0) {
                failures.push(format!("fig_churn: no topology epoch ran at {pct}% churn"));
            }
        }
    }
    let sharded_ops = |doc: &Json, pct: f64| -> Option<f64> {
        find_row(doc, &[("engine", "sharded")], &[("churn_pct", pct)])
            .and_then(|r| num(r, "ops_per_s"))
    };
    let (Some(base_zero), Some(cur_zero)) = (sharded_ops(baseline, 0.0), sharded_ops(current, 0.0))
    else {
        failures.push("fig_churn: missing 0%-churn sharded normalization row".into());
        return;
    };
    let pcts: Vec<f64> = rows(baseline)
        .iter()
        .filter(|r| r.get("engine").and_then(Json::as_str) == Some("sharded"))
        .filter_map(|r| num(r, "churn_pct"))
        .filter(|&p| p > 0.0)
        .collect();
    for pct in pcts {
        match (sharded_ops(baseline, pct), sharded_ops(current, pct)) {
            (Some(base), Some(cur)) => {
                let (base_ratio, cur_ratio) = (base / base_zero, cur / cur_zero);
                if cur_ratio < throughput_bar(base_ratio) {
                    failures.push(format!(
                        "fig_churn: >25% regression of churn-adjusted throughput at {pct}%: \
                         {cur_ratio:.3}x of content-only vs baseline {base_ratio:.3}x"
                    ));
                }
            }
            _ => failures.push(format!("fig_churn: sharded row missing at {pct}% churn")),
        }
    }
}

/// fig14(e): shard-executed vs caller-thread reads per mix.
fn check_fig14_reads(baseline: &Json, current: &Json, failures: &mut Vec<String>) {
    let ratio = |doc: &Json, mix: &str| -> Option<f64> {
        let caller = find_row(doc, &[("mix", mix), ("read_path", "caller-thread")], &[])
            .and_then(|r| num(r, "ops_per_s"))?;
        let shard = find_row(doc, &[("mix", mix), ("read_path", "shard-executed")], &[])
            .and_then(|r| num(r, "ops_per_s"))?;
        Some(shard / caller)
    };
    let mixes: Vec<&str> = rows(baseline)
        .iter()
        .filter_map(|r| r.get("mix").and_then(Json::as_str))
        .fold(Vec::new(), |mut acc, m| {
            if !acc.contains(&m) {
                acc.push(m);
            }
            acc
        });
    for mix in mixes {
        match (ratio(baseline, mix), ratio(current, mix)) {
            (Some(base), Some(cur)) => {
                if cur < throughput_bar(base) {
                    failures.push(format!(
                        "fig14_reads: >25% regression of shard-executed/caller ratio at {mix}: \
                         {cur:.3} vs baseline {base:.3}"
                    ));
                }
            }
            _ => failures.push(format!("fig14_reads: rows missing for mix {mix}")),
        }
    }
}

/// fig14(f): live rebalancing vs the frozen stale map on the drift
/// workload.
fn check_fig14_rebalance(baseline: &Json, current: &Json, failures: &mut Vec<String>) {
    // Hard invariant on the current run: over the rotated phases (k ≥ 1)
    // the policy-driven engine ships ≤ REBALANCE_VS_FROZEN × the frozen
    // map's cross-shard deltas, and at least one rebalance committed.
    let rotated_cross = |doc: &Json, engine: &str| -> f64 {
        rows(doc)
            .iter()
            .filter(|r| r.get("engine").and_then(Json::as_str) == Some(engine))
            .filter(|r| num(r, "phase").is_some_and(|p| p >= 1.0))
            .filter_map(|r| num(r, "cross_shard_deltas"))
            .sum()
    };
    let has_rotated_rows = |engine: &str| {
        rows(current).iter().any(|r| {
            r.get("engine").and_then(Json::as_str) == Some(engine)
                && num(r, "phase").is_some_and(|p| p >= 1.0)
                && num(r, "cross_shard_deltas").is_some()
        })
    };
    let frozen = rotated_cross(current, "frozen");
    let rebalanced = rotated_cross(current, "rebalance");
    if !has_rotated_rows("frozen") || !has_rotated_rows("rebalance") {
        failures.push("fig14_rebalance: missing rotated-phase delta counters".into());
    } else if rebalanced > REBALANCE_VS_FROZEN * frozen {
        // A zero rebalanced sum trivially satisfies the bound (the best
        // possible outcome); only an excess over the frozen map fails.
        failures.push(format!(
            "fig14_rebalance: cross-shard delta reduction lost on the drift workload: \
             rebalanced={rebalanced:.0} > {REBALANCE_VS_FROZEN} x frozen={frozen:.0}"
        ));
    }
    let commits = find_row(current, &[("engine", "rebalance-summary")], &[])
        .and_then(|r| num(r, "rebalances"))
        .unwrap_or(0.0);
    if commits < 1.0 {
        failures.push("fig14_rebalance: no rebalance ever committed on the drift workload".into());
    }
    // Throughput shape: mean rotated-phase ops of the rebalancing engine
    // relative to the frozen engine, vs the baseline's relation.
    let mean_ops = |doc: &Json, engine: &str| -> Option<f64> {
        let ops: Vec<f64> = rows(doc)
            .iter()
            .filter(|r| r.get("engine").and_then(Json::as_str) == Some(engine))
            .filter(|r| num(r, "phase").is_some_and(|p| p >= 1.0))
            .filter_map(|r| num(r, "ops_per_s"))
            .collect();
        (!ops.is_empty()).then(|| ops.iter().sum::<f64>() / ops.len() as f64)
    };
    let rel = |doc: &Json| -> Option<f64> {
        Some(mean_ops(doc, "rebalance")? / mean_ops(doc, "frozen")?)
    };
    match (rel(baseline), rel(current)) {
        (Some(base), Some(cur)) => {
            if cur < throughput_bar(base) {
                failures.push(format!(
                    "fig14_rebalance: >25% regression of rebalance/frozen throughput: \
                     {cur:.3} vs baseline {base:.3}"
                ));
            }
        }
        _ => failures.push("fig14_rebalance: throughput rows missing".into()),
    }
    // During-migration ingest throughput relative to steady-state: the
    // two-phase protocol's reason to exist. Presence and ≥1 committed
    // migration are hard (deterministic) invariants; the ratio itself is
    // tracked against the baseline under the usual 25% tolerance — it is
    // a timing observable, not a deterministic one.
    let migration_ratio = |doc: &Json| -> Option<f64> {
        let r = find_row(doc, &[("engine", "migration-concurrency")], &[])?;
        Some(num(r, "during_migration_ingest_ops")? / num(r, "steady_ingest_ops")?)
    };
    let migrations = find_row(current, &[("engine", "migration-concurrency")], &[])
        .and_then(|r| num(r, "migrations_committed"))
        .unwrap_or(0.0);
    if migrations < 1.0 {
        failures.push(
            "fig14_rebalance: no migration committed during the concurrent-ingest run".into(),
        );
    }
    match (migration_ratio(baseline), migration_ratio(current)) {
        (Some(base), Some(cur)) => {
            if cur < throughput_bar(base) {
                failures.push(format!(
                    "fig14_rebalance: >25% regression of during-migration/steady ingest \
                     throughput: {cur:.3} vs baseline {base:.3}"
                ));
            }
        }
        _ => failures.push("fig14_rebalance: during-migration throughput row missing".into()),
    }
}
