//! Shared plumbing for the EAGr experiment harnesses.
//!
//! Every figure of the paper's evaluation (§5) has a bench target that
//! regenerates its series on scaled-down synthetic stand-ins of the paper's
//! datasets. Absolute numbers differ from the paper (different hardware,
//! scaled graphs); the *shapes* — who wins, by what factor, where the
//! crossovers sit — are what EXPERIMENTS.md records.
//!
//! Set `EAGR_BENCH_SCALE` (default `1.0`) to grow or shrink every graph and
//! workload together, e.g. `EAGR_BENCH_SCALE=4 cargo bench --bench
//! fig14_throughput`. Passing `--quick` to a figure harness (`cargo bench
//! --bench fig14_throughput -- --quick`) divides the scale by four — the
//! smoke mode nightly CI uses to keep bench code from rotting.

use eagr::agg::AggProps;
use std::io::Write as _;

/// Scale divisor applied when `--quick` is passed to a figure harness.
const QUICK_DIVISOR: f64 = 4.0;

/// Whether `--quick` was passed on the bench binary's command line.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Global size multiplier from `EAGR_BENCH_SCALE`, divided by
/// `QUICK_DIVISOR` (4) in `--quick` mode.
pub fn scale() -> f64 {
    let base = std::env::var("EAGR_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0);
    if quick() {
        base / QUICK_DIVISOR
    } else {
        base
    }
}

/// Properties of a subtractable, duplicate-sensitive aggregate (SUM-like).
pub fn sum_props() -> AggProps {
    AggProps {
        duplicate_insensitive: false,
        subtractable: true,
    }
}

/// Properties of a duplicate-insensitive aggregate (MAX-like).
pub fn max_props() -> AggProps {
    AggProps {
        duplicate_insensitive: true,
        subtractable: false,
    }
}

/// Simple fixed-width table printer for the figure series.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table by printing the header row.
    pub fn new(header: &[&str]) -> Self {
        let widths: Vec<usize> = header.iter().map(|h| h.len().max(10)).collect();
        let t = Self { widths };
        t.print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let rule: Vec<String> = t.widths.iter().map(|&w| "-".repeat(w)).collect();
        t.print_row(&rule);
        t
    }

    /// Print one aligned row.
    pub fn print_row(&self, cells: &[String]) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(10);
            let _ = write!(lock, "{c:>w$}  ");
        }
        let _ = writeln!(lock);
    }

    /// Row from mixed displayables.
    pub fn row(&self, cells: &[&dyn std::fmt::Display]) {
        self.print_row(&cells.iter().map(|c| format!("{c}")).collect::<Vec<_>>());
    }
}

/// Print a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!("\n=== {fig} — {caption} ===");
    println!("(scaled synthetic stand-ins; compare shapes with the paper, not absolutes)\n");
}

/// Minimal JSON value for machine-readable bench artifacts. The vendored
/// dependency set has no serde, and the artifacts are small flat
/// summaries — a four-variant tree and a renderer are all that's needed
/// for nightly CI to track the perf trajectory across PRs.
pub enum Json {
    /// A number (rendered with enough precision for ops/s and counters).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        match self {
            Json::Num(x) => {
                if !x.is_finite() {
                    "null".to_string() // JSON has no NaN/inf
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Json::Str(k.clone()).render(), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Write a machine-readable bench artifact as `BENCH_<name>.json` in
/// `EAGR_BENCH_JSON_DIR` (default: the current directory). Nightly CI
/// captures these files so the perf trajectory is tracked across PRs; a
/// write failure only warns — producing numbers on stdout must never be
/// blocked by a read-only filesystem.
pub fn write_json_artifact(name: &str, json: &Json) {
    let dir = std::env::var("EAGR_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, json.render() + "\n") {
        Ok(()) => println!("[machine-readable results: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}
