//! Shared plumbing for the EAGr experiment harnesses.
//!
//! Every figure of the paper's evaluation (§5) has a bench target that
//! regenerates its series on scaled-down synthetic stand-ins of the paper's
//! datasets. Absolute numbers differ from the paper (different hardware,
//! scaled graphs); the *shapes* — who wins, by what factor, where the
//! crossovers sit — are what EXPERIMENTS.md records.
//!
//! Set `EAGR_BENCH_SCALE` (default `1.0`) to grow or shrink every graph and
//! workload together, e.g. `EAGR_BENCH_SCALE=4 cargo bench --bench
//! fig14_throughput`. Passing `--quick` to a figure harness (`cargo bench
//! --bench fig14_throughput -- --quick`) divides the scale by four — the
//! smoke mode nightly CI uses to keep bench code from rotting.

#![forbid(unsafe_code)]

use eagr::agg::AggProps;
use std::io::Write as _;

/// Scale divisor applied when `--quick` is passed to a figure harness.
const QUICK_DIVISOR: f64 = 4.0;

/// Whether `--quick` was passed on the bench binary's command line.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Global size multiplier from `EAGR_BENCH_SCALE`, divided by
/// `QUICK_DIVISOR` (4) in `--quick` mode.
pub fn scale() -> f64 {
    let base = std::env::var("EAGR_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0);
    if quick() {
        base / QUICK_DIVISOR
    } else {
        base
    }
}

/// Properties of a subtractable, duplicate-sensitive aggregate (SUM-like).
pub fn sum_props() -> AggProps {
    AggProps {
        duplicate_insensitive: false,
        subtractable: true,
    }
}

/// Properties of a duplicate-insensitive aggregate (MAX-like).
pub fn max_props() -> AggProps {
    AggProps {
        duplicate_insensitive: true,
        subtractable: false,
    }
}

/// Simple fixed-width table printer for the figure series.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table by printing the header row.
    pub fn new(header: &[&str]) -> Self {
        let widths: Vec<usize> = header.iter().map(|h| h.len().max(10)).collect();
        let t = Self { widths };
        t.print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let rule: Vec<String> = t.widths.iter().map(|&w| "-".repeat(w)).collect();
        t.print_row(&rule);
        t
    }

    /// Print one aligned row.
    pub fn print_row(&self, cells: &[String]) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(10);
            let _ = write!(lock, "{c:>w$}  ");
        }
        let _ = writeln!(lock);
    }

    /// Row from mixed displayables.
    pub fn row(&self, cells: &[&dyn std::fmt::Display]) {
        self.print_row(&cells.iter().map(|c| format!("{c}")).collect::<Vec<_>>());
    }
}

/// Print a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!("\n=== {fig} — {caption} ===");
    println!("(scaled synthetic stand-ins; compare shapes with the paper, not absolutes)\n");
}

/// Minimal JSON value for machine-readable bench artifacts. The vendored
/// dependency set has no serde, and the artifacts are small flat
/// summaries — a four-variant tree and a renderer are all that's needed
/// for nightly CI to track the perf trajectory across PRs.
pub enum Json {
    /// A number (rendered with enough precision for ops/s and counters).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (the inverse of [`render`](Self::render),
    /// covering the full value grammar the artifacts use: numbers,
    /// strings, arrays, objects, and the `null` the renderer emits for
    /// non-finite numbers — parsed as NaN). This is what the
    /// `bench_check` regression gate reads committed baselines and fresh
    /// `BENCH_*.json` artifacts back with.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        match self {
            Json::Num(x) => {
                if !x.is_finite() {
                    "null".to_string() // JSON has no NaN/inf
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Json::Str(k.clone()).render(), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key must be a string at byte {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(&byte) => {
                        // Consume one UTF-8 scalar, sized from its leading
                        // byte — validating only this character keeps
                        // string decoding O(len) instead of re-checking
                        // the whole document per character.
                        let len = match byte {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = b
                            .get(*pos..*pos + len)
                            .ok_or_else(|| format!("truncated utf8 at byte {pos}"))?;
                        let c = std::str::from_utf8(chunk)
                            .map_err(|e| e.to_string())?
                            .chars()
                            .next()
                            .ok_or("utf8 decode")?;
                        out.push(c);
                        *pos += len;
                    }
                }
            }
        }
        Some(b'n') => {
            if b[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(Json::Num(f64::NAN)) // the renderer's stand-in for NaN/inf
            } else {
                Err(format!("unexpected token at byte {pos}"))
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .map_err(|e| e.to_string())?
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number at byte {start}"))
        }
    }
}

/// Write a machine-readable bench artifact as `BENCH_<name>.json` in
/// `EAGR_BENCH_JSON_DIR` (default: the current directory). Nightly CI
/// captures these files so the perf trajectory is tracked across PRs; a
/// write failure only warns — producing numbers on stdout must never be
/// blocked by a read-only filesystem.
pub fn write_json_artifact(name: &str, json: &Json) {
    let dir = std::env::var("EAGR_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, json.render() + "\n") {
        Ok(()) => println!("[machine-readable results: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_parse() {
        let doc = Json::obj(vec![
            ("figure", Json::Str("fig14d".into())),
            ("scale", Json::Num(0.0625)),
            ("note", Json::Str("quotes \" and \\ and\nnewlines".into())),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("engine", Json::Str("sharded".into())),
                        ("shards", Json::Num(4.0)),
                        ("ops_per_s", Json::Num(123456.789)),
                    ]),
                    Json::Num(-3.0),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back.render(), text, "render∘parse must be identity");
        assert_eq!(back.get("figure").and_then(Json::as_str), Some("fig14d"));
        assert_eq!(back.get("scale").and_then(Json::as_num), Some(0.0625));
        let rows = back.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("ops_per_s").and_then(Json::as_num),
            Some(123456.789)
        );
    }

    #[test]
    fn parse_accepts_whitespace_and_null() {
        let v = Json::parse(" { \"a\" : [ 1 , null ] , \"b\" : \"x\" } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert!(arr[1].as_num().unwrap().is_nan());
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }
}
