//! Shared plumbing for the EAGr experiment harnesses.
//!
//! Every figure of the paper's evaluation (§5) has a bench target that
//! regenerates its series on scaled-down synthetic stand-ins of the paper's
//! datasets. Absolute numbers differ from the paper (different hardware,
//! scaled graphs); the *shapes* — who wins, by what factor, where the
//! crossovers sit — are what EXPERIMENTS.md records.
//!
//! Set `EAGR_BENCH_SCALE` (default `1.0`) to grow or shrink every graph and
//! workload together, e.g. `EAGR_BENCH_SCALE=4 cargo bench --bench
//! fig14_throughput`. Passing `--quick` to a figure harness (`cargo bench
//! --bench fig14_throughput -- --quick`) divides the scale by four — the
//! smoke mode nightly CI uses to keep bench code from rotting.

use eagr::agg::AggProps;
use std::io::Write as _;

/// Scale divisor applied when `--quick` is passed to a figure harness.
const QUICK_DIVISOR: f64 = 4.0;

/// Whether `--quick` was passed on the bench binary's command line.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Global size multiplier from `EAGR_BENCH_SCALE`, divided by
/// `QUICK_DIVISOR` (4) in `--quick` mode.
pub fn scale() -> f64 {
    let base = std::env::var("EAGR_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0);
    if quick() {
        base / QUICK_DIVISOR
    } else {
        base
    }
}

/// Properties of a subtractable, duplicate-sensitive aggregate (SUM-like).
pub fn sum_props() -> AggProps {
    AggProps {
        duplicate_insensitive: false,
        subtractable: true,
    }
}

/// Properties of a duplicate-insensitive aggregate (MAX-like).
pub fn max_props() -> AggProps {
    AggProps {
        duplicate_insensitive: true,
        subtractable: false,
    }
}

/// Simple fixed-width table printer for the figure series.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table by printing the header row.
    pub fn new(header: &[&str]) -> Self {
        let widths: Vec<usize> = header.iter().map(|h| h.len().max(10)).collect();
        let t = Self { widths };
        t.print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let rule: Vec<String> = t.widths.iter().map(|&w| "-".repeat(w)).collect();
        t.print_row(&rule);
        t
    }

    /// Print one aligned row.
    pub fn print_row(&self, cells: &[String]) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(10);
            let _ = write!(lock, "{c:>w$}  ");
        }
        let _ = writeln!(lock);
    }

    /// Row from mixed displayables.
    pub fn row(&self, cells: &[&dyn std::fmt::Display]) {
        self.print_row(&cells.iter().map(|c| format!("{c}")).collect::<Vec<_>>());
    }
}

/// Print a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!("\n=== {fig} — {caption} ===");
    println!("(scaled synthetic stand-ins; compare shapes with the paper, not absolutes)\n");
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}
