//! Dynamic-topology churn — throughput and correctness of the hot path
//! while topology mutations stream through ingestion (EAGr §3.3
//! incremental repair mapped to plan deltas, applied between content
//! runs of the same stream).
//!
//! For churn levels 1% / 5% / 10% (fraction of the live edge set mutated
//! per epoch, Fig-style sweep) plus a 0%-churn content-only baseline:
//! the same mixed stream goes through the sharded system and the
//! single-threaded reference. Reported per (level, engine):
//!
//! * `ops_per_s` — end-to-end events/s *including* the repair epochs, so
//!   the number prices topology churn into the hot path;
//! * `mutations` / `topo_epochs` — accounting from
//!   [`RegistryStats::topo`], proving repairs actually ran;
//! * `answers_match` (sharded rows) — 1 when every node's final answer
//!   equals the single-threaded reference, the hard invariant
//!   `bench_check` gates on.
//!
//! One JSON artifact: `BENCH_fig_churn.json`. The committed baseline was
//! generated at `EAGR_BENCH_SCALE=0.25 --quick`; the gate compares the
//! sharded throughput at each churn level normalized by the same run's
//! 0%-churn row (hardware-independent) plus the hard correctness and
//! accounting invariants.

use eagr::gen::{churn_stream, generate_events, social_graph, ChurnConfig, Event, WorkloadConfig};
use eagr::prelude::*;
use eagr::{EagrSystem, ExecutionMode, OverlayAlgorithm};
use eagr_bench::{banner, f, scale, write_json_artifact, Json, Table};
use std::time::Instant;

const SHARDS: usize = 4;
const EPOCHS: usize = 4;

fn build(g: &DataGraph, mode: ExecutionMode) -> EagrSystem<Sum> {
    EagrSystem::builder(EgoQuery::new(Sum))
        .overlay(OverlayAlgorithm::Vnma)
        .execution(mode)
        .build(g)
}

/// Ingest every epoch, returning (events/s, mutations, topo epochs).
fn run(sys: &EagrSystem<Sum>, stream: &[Vec<Event>]) -> (f64, u64, u64) {
    let t0 = Instant::now();
    let mut events = 0usize;
    for batch in stream {
        events += sys.ingest(batch).total();
    }
    let dt = t0.elapsed().as_secs_f64();
    let topo = sys.registry_stats().topo;
    (events as f64 / dt, topo.applied + topo.skipped, topo.epochs)
}

fn main() {
    let n = ((3_000.0 * scale()) as usize).max(300);
    banner(
        "Dynamic-topology churn",
        "ingest throughput + sharded≡reference correctness under 1/5/10% edge churn",
    );
    let g = social_graph(n, 5, 0xC4A2);
    println!(
        "graph: {n} users, {} edges; {EPOCHS} epochs x {n} content events per level\n",
        g.edge_count()
    );

    let t = Table::new(&[
        "churn",
        "engine",
        "events/s",
        "mutations",
        "epochs",
        "match",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for pct in [0u32, 1, 5, 10] {
        // The 0% row is the content-only normalization baseline the gate
        // divides the churn levels by; churn_stream always emits at least
        // one mutation per epoch, so it comes from generate_events.
        let stream: Vec<Vec<Event>> = if pct == 0 {
            vec![generate_events(
                n,
                &WorkloadConfig {
                    events: EPOCHS * n,
                    write_to_read: 4.0,
                    seed: 0xC4A2,
                    ..Default::default()
                },
            )]
        } else {
            churn_stream(
                &g,
                &ChurnConfig {
                    epochs: EPOCHS,
                    epoch_events: n,
                    churn_fraction: pct as f64 / 100.0,
                    node_churn: 0.15,
                    write_to_read: 4.0,
                    seed: 0xC4A2 + pct as u64,
                    ..Default::default()
                },
            )
        };
        let mut bound = g.id_bound();
        for batch in &stream {
            for e in batch {
                if let Event::AddNode { node } = *e {
                    bound = bound.max(node.idx() + 1);
                }
            }
        }
        let single = build(&g, ExecutionMode::SingleThreaded);
        let sharded = build(&g, ExecutionMode::Sharded { shards: SHARDS });
        let (single_ops, muts, epochs) = run(&single, &stream);
        let (sharded_ops, s_muts, s_epochs) = run(&sharded, &stream);
        assert_eq!(muts, s_muts, "mutation accounting must be mode-independent");
        let nodes: Vec<NodeId> = (0..bound as u32).map(NodeId).collect();
        let matches = sharded.read_batch(&nodes) == single.read_batch(&nodes);
        for (engine, ops, eps, is_match) in [
            ("single-thread", single_ops, epochs, None),
            ("sharded", sharded_ops, s_epochs, Some(matches)),
        ] {
            t.row(&[
                &format!("{pct}%"),
                &engine,
                &f(ops),
                &muts,
                &eps,
                &is_match.map_or("-".into(), |m| format!("{}", m as u8)),
            ]);
            let mut obj = vec![
                ("churn_pct", Json::Num(pct as f64)),
                ("engine", Json::Str(engine.into())),
                ("ops_per_s", Json::Num(ops)),
                ("mutations", Json::Num(muts as f64)),
                ("topo_epochs", Json::Num(eps as f64)),
            ];
            if let Some(m) = is_match {
                obj.push(("answers_match", Json::Num(m as u8 as f64)));
            }
            rows.push(Json::obj(obj));
        }
    }

    println!("\nexpect: sharded answers equal the single-threaded reference at every");
    println!("churn level, and throughput degrades gracefully as churn grows — the");
    println!("repair epochs never trigger a full re-plan.");
    write_json_artifact(
        "fig_churn",
        &Json::obj(vec![
            ("figure", Json::Str("fig_churn".into())),
            ("scale", Json::Num(scale())),
            ("nodes", Json::Num(n as f64)),
            ("shards", Json::Num(SHARDS as f64)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}
