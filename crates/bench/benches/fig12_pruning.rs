//! Fig 12 — effectiveness of the P1/P2 pruning before the max-flow
//! computation: (a) node counts before/after pruning plus connected
//! components per graph at 1:1 write:read; (b) the same sweep over the
//! write:read ratio on the largest (uk2002-like) graph.
//!
//! Paper shape: pruning removes the overwhelming majority of nodes (the
//! survivors are <14% in all cases) and shatters the remainder into many
//! tiny connected components; pruning is weakest at ratio 1 (conflicts are
//! likeliest when reads and writes balance).

use eagr::agg::CostModel;
use eagr::flow::{decide_maxflow, node_costs, propagate_frequencies, Rates};
use eagr::gen::{zipf_rates, Dataset};
use eagr::graph::{BipartiteGraph, Neighborhood};
use eagr::overlay::{build_vnm, Overlay, VnmConfig};
use eagr_bench::{banner, scale, sum_props, Table};

fn prune_row(t: &Table, label: &str, ov: &Overlay, rates: &Rates) {
    let f = propagate_frequencies(ov, rates);
    let costs = node_costs(ov, &f, &CostModel::unit_sum(), 1);
    let out = decide_maxflow(ov, &costs);
    let p = out.prune;
    t.row(&[
        &label,
        &(p.before.0 + p.before.1),
        &p.before.1,
        &(p.after.0 + p.after.1),
        &p.after.1,
        &p.components,
        &p.largest_component,
    ]);
}

fn main() {
    banner(
        "Figure 12(a)",
        "pruning effectiveness per graph (write:read = 1:1, VNMA overlays)",
    );
    let t = Table::new(&[
        "graph",
        "nodes before",
        "virtual before",
        "nodes after",
        "virtual after",
        "components",
        "largest",
    ]);
    let sc = 0.4 * scale();
    for ds in Dataset::all() {
        let g = ds.build(sc, 0xF1612);
        let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
        let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
        let rates = zipf_rates(g.id_bound(), 1.0, 1.0, 3);
        prune_row(&t, ds.name(), &ov, &rates);
    }

    banner("Figure 12(b)", "pruning vs write:read ratio (uk2002-like)");
    let g = Dataset::Uk2002Like.build(0.4 * scale(), 0xF1612B);
    let ag = BipartiteGraph::build(&g, &Neighborhood::In, |_| true);
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    let t = Table::new(&[
        "w:r ratio",
        "nodes before",
        "virtual before",
        "nodes after",
        "virtual after",
        "components",
        "largest",
    ]);
    for ratio in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let rates = zipf_rates(g.id_bound(), 1.0, ratio, 3);
        prune_row(&t, &format!("{ratio}"), &ov, &rates);
    }
    println!("\nexpect: survivors are a small fraction everywhere, worst (largest) near ratio 1;");
    println!("the surviving graph shatters into many small components.");
}
