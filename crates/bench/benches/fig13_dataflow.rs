//! Fig 13 — the four dataflow-decision experiments:
//!
//! * **(a)** adaptive vs static decisions vs all-push/all-pull on a trace
//!   whose read popularity shifts halfway (time per event batch);
//! * **(b)** overlay-all-push vs overlay-dataflow vs overlay-all-pull
//!   throughput per aggregate at 1:1;
//! * **(c)** read latency (worst / p95 / avg) as the pull:push cost ratio
//!   grows (pushes get favored ⇒ latencies fall);
//! * **(d)** throughput vs number of serving threads (plateau at the core
//!   count).

use eagr::agg::{Aggregate, CostFn, CostModel, Max, Sum, TopK, WindowSpec};
use eagr::exec::{throughput, EngineCore, LatencyRecorder, ParallelConfig, ParallelEngine};
use eagr::flow::{plan, DecisionAlgorithm, Plan, PlannerConfig, Rates};
use eagr::gen::{generate_events, shifting_trace, Dataset, Event, TraceConfig, WorkloadConfig};
use eagr::graph::{BipartiteGraph, DataGraph, Neighborhood};
use eagr::overlay::{build_vnm, Overlay, VnmConfig};
use eagr_bench::{banner, f, scale, sum_props, Table};
use std::sync::Arc;
use std::time::Instant;

fn vnma_overlay(g: &DataGraph) -> Overlay {
    let ag = BipartiteGraph::build(g, &Neighborhood::In, |_| true);
    let (ov, _) = build_vnm(&ag, &VnmConfig::vnma(sum_props()));
    ov
}

fn make_plan(ov: &Overlay, rates: &Rates, cost: &CostModel, alg: DecisionAlgorithm) -> Plan {
    plan(
        ov.clone(),
        rates,
        cost,
        &PlannerConfig {
            algorithm: alg,
            split: alg == DecisionAlgorithm::MaxFlow,
            writer_window: 1,
            push_amplification: 2.0,
        },
    )
}

fn engine<A: Aggregate + Clone>(agg: A, p: &Plan) -> EngineCore<A> {
    EngineCore::new(
        agg,
        Arc::new(p.overlay.clone()),
        &p.decisions,
        WindowSpec::Tuple(1),
    )
}

/// Measured rates from a trace prefix (what a deployed system would have
/// observed before planning).
fn measured_rates(events: &[Event], n: usize) -> Rates {
    let mut rates = Rates {
        read: vec![0.0; n],
        write: vec![0.0; n],
    };
    for e in events {
        match *e {
            Event::Write { node, .. } => rates.write[node.idx()] += 1.0,
            Event::Read { node } => rates.read[node.idx()] += 1.0,
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {}
        }
    }
    rates
}

fn run_events<A: Aggregate>(core: &EngineCore<A>, events: &[Event], ts0: u64) -> f64 {
    let t = Instant::now();
    for (i, e) in events.iter().enumerate() {
        match *e {
            Event::Write { node, value } => {
                core.write(node, value, ts0 + i as u64);
            }
            Event::Read { node } => {
                std::hint::black_box(core.read(node));
            }
            Event::AddEdge { .. }
            | Event::RemoveEdge { .. }
            | Event::AddNode { .. }
            | Event::RemoveNode { .. } => {}
        }
    }
    t.elapsed().as_secs_f64()
}

fn fig13a() {
    banner(
        "Figure 13(a)",
        "workload shift: time per batch for all-pull / all-push / static / adaptive",
    );
    let n = (2000.0 * scale()) as usize;
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF13A);
    let n = n.min(g.id_bound());
    let trace = shifting_trace(
        n,
        &TraceConfig {
            events_per_phase: (60_000.0 * scale()) as usize,
            ..Default::default()
        },
    );
    let ov = vnma_overlay(&g);
    let planned_rates = measured_rates(&trace[..trace.len() / 4], g.id_bound());
    let cost = CostModel::unit_sum();
    let batches = 12;
    let batch = trace.len() / batches;

    let t = Table::new(&["approach", "ms per batch (shift at batch 6)"]);
    for (label, alg, adaptive) in [
        ("all-pull", DecisionAlgorithm::AllPull, false),
        ("all-push", DecisionAlgorithm::AllPush, false),
        ("static", DecisionAlgorithm::MaxFlow, false),
        ("adaptive", DecisionAlgorithm::MaxFlow, true),
    ] {
        let p = make_plan(&ov, &planned_rates, &cost, alg);
        let core = Arc::new(engine(Sum, &p));
        let controller = eagr::exec::AdaptiveEngine::new(Arc::clone(&core), cost, 1, u64::MAX);
        let mut cells = vec![label.to_string()];
        let mut ts = 0u64;
        for chunk in trace.chunks(batch).take(batches) {
            let secs = run_events(&core, chunk, ts);
            ts += chunk.len() as u64;
            if adaptive {
                controller.adapt_now();
            }
            cells.push(format!("{:.0}", secs * 1e3));
        }
        t.print_row(&cells);
    }
    println!("\nexpect: static degrades after the shift; adaptive recovers within a batch or two.");
}

fn fig13b() {
    banner(
        "Figure 13(b)",
        "overlay all-push vs dataflow vs all-pull, per aggregate (1:1)",
    );
    let g = Dataset::LiveJournalLike.build(0.5 * scale(), 0xF13B);
    let n = g.id_bound();
    let ov = vnma_overlay(&g);
    let rates = eagr::gen::zipf_rates(n, 1.0, 1.0, 3);
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: (60_000.0 * scale()) as usize,
            write_to_read: 1.0,
            ..Default::default()
        },
    );
    let t = Table::new(&[
        "aggregate",
        "all-push (ops/s)",
        "dataflow (ops/s)",
        "all-pull (ops/s)",
    ]);
    macro_rules! row {
        ($name:literal, $agg:expr) => {{
            let cost = CostModel::from_aggregate(&$agg);
            let mut cells = vec![$name.to_string()];
            for alg in [
                DecisionAlgorithm::AllPush,
                DecisionAlgorithm::MaxFlow,
                DecisionAlgorithm::AllPull,
            ] {
                let p = make_plan(&ov, &rates, &cost, alg);
                let core = engine($agg, &p);
                let secs = run_events(&core, &events, 0);
                cells.push(format!("{:.0}", events.len() as f64 / secs));
            }
            t.print_row(&cells);
        }};
    }
    row!("SUM", Sum);
    row!("MAX", Max);
    row!("TOP-K", TopK::new(10));
    println!("\nexpect: dataflow > max(all-push, all-pull) for every aggregate.");
}

fn fig13c() {
    banner(
        "Figure 13(c)",
        "read latency (worst / p95 / avg) vs pull-cost multiplier",
    );
    let g = Dataset::LiveJournalLike.build(0.4 * scale(), 0xF13C);
    let n = g.id_bound();
    let ov = vnma_overlay(&g);
    let rates = eagr::gen::zipf_rates(n, 1.0, 1.0, 3);
    let warm = generate_events(
        n,
        &WorkloadConfig {
            events: (30_000.0 * scale()) as usize,
            write_to_read: 1e9,
            ..Default::default()
        },
    );
    let reads = generate_events(
        n,
        &WorkloadConfig {
            events: 4000,
            write_to_read: 0.0,
            seed: 0xBEEF,
            ..Default::default()
        },
    );
    let t = Table::new(&[
        "push:pull cost",
        "worst ms",
        "p95 ms",
        "avg ms",
        "push nodes",
    ]);
    let run = |label: &str, alg: DecisionAlgorithm, pull_scale: f64| {
        let cost = CostModel {
            push: CostFn::Constant(4.0),
            pull: CostFn::Linear(8.0 * pull_scale),
        };
        let p = make_plan(&ov, &rates, &cost, alg);
        let core = engine(TopK::new(10), &p);
        run_events(&core, &warm, 0);
        let rec = LatencyRecorder::new();
        for e in &reads {
            if let Event::Read { node } = *e {
                rec.time(|| std::hint::black_box(core.read(node)));
            }
        }
        let s = rec.summary();
        t.row(&[
            &label,
            &format!("{:.3}", s.worst),
            &format!("{:.3}", s.p95),
            &format!("{:.3}", s.avg),
            &p.decisions.push_count(),
        ]);
    };
    run("all-pull", DecisionAlgorithm::AllPull, 1.0);
    for (label, s) in [
        ("1:1", 1.0),
        ("1:2", 2.0),
        ("1:5", 5.0),
        ("1:10", 10.0),
        ("1:20", 20.0),
        ("1:30", 30.0),
    ] {
        run(label, DecisionAlgorithm::MaxFlow, s);
    }
    run("all-push", DecisionAlgorithm::AllPush, 1.0);
    println!("\nexpect: latencies fall monotonically as pulls get pricier (pushes favored).");
}

fn fig13d() {
    banner(
        "Figure 13(d)",
        "throughput vs serving threads (TOP-K; plateau at core count)",
    );
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(2);
    println!("machine cores: {cores}\n");
    let g = Dataset::LiveJournalLike.build(0.4 * scale(), 0xF13D);
    let n = g.id_bound();
    let ov = vnma_overlay(&g);
    let rates = eagr::gen::zipf_rates(n, 1.0, 1.0, 3);
    let cost = CostModel::from_aggregate(&TopK::new(10));
    let events = generate_events(
        n,
        &WorkloadConfig {
            events: (40_000.0 * scale()) as usize,
            write_to_read: 1.0,
            ..Default::default()
        },
    );
    let threads: Vec<usize> = vec![2, 4, 6, 8];
    let mut header = vec!["approach".to_string()];
    header.extend(threads.iter().map(|t| format!("T={t}")));
    let t = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for (label, alg) in [
        ("all-pull", DecisionAlgorithm::AllPull),
        ("all-push", DecisionAlgorithm::AllPush),
        ("VNMA+dataflow", DecisionAlgorithm::MaxFlow),
    ] {
        let mut cells = vec![label.to_string()];
        for &tt in &threads {
            let p = make_plan(&ov, &rates, &cost, alg);
            let core = Arc::new(engine(TopK::new(10), &p));
            let eng = ParallelEngine::new(
                Arc::clone(&core),
                ParallelConfig {
                    write_threads: (tt / 2).max(1),
                    read_threads: (tt / 2).max(1),
                },
            );
            let t0 = Instant::now();
            for (i, e) in events.iter().enumerate() {
                match *e {
                    Event::Write { node, value } => eng.submit_write(node, value, i as u64),
                    Event::Read { node } => eng.submit_read(node),
                    Event::AddEdge { .. }
                    | Event::RemoveEdge { .. }
                    | Event::AddNode { .. }
                    | Event::RemoveNode { .. } => {}
                }
            }
            eng.drain();
            let tput = throughput(events.len(), t0.elapsed());
            eng.shutdown();
            cells.push(format!("{:.0}", tput));
        }
        t.print_row(&cells);
    }
    println!("\nexpect: throughput grows with threads then plateaus near the core count;");
    println!(
        "the overlay approach dominates at every thread count. ({})",
        f(scale())
    );
}

fn main() {
    fig13a();
    fig13b();
    fig13c();
    fig13d();
}
